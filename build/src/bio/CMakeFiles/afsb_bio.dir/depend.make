# Empty dependencies file for afsb_bio.
# This may be replaced when dependencies are built.
