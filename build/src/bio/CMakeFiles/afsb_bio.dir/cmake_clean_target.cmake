file(REMOVE_RECURSE
  "libafsb_bio.a"
)
