
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sys/memory_model.cc" "src/sys/CMakeFiles/afsb_sys.dir/memory_model.cc.o" "gcc" "src/sys/CMakeFiles/afsb_sys.dir/memory_model.cc.o.d"
  "/root/repo/src/sys/platform.cc" "src/sys/CMakeFiles/afsb_sys.dir/platform.cc.o" "gcc" "src/sys/CMakeFiles/afsb_sys.dir/platform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/io/CMakeFiles/afsb_io.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/afsb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
