file(REMOVE_RECURSE
  "CMakeFiles/afsb_sys.dir/memory_model.cc.o"
  "CMakeFiles/afsb_sys.dir/memory_model.cc.o.d"
  "CMakeFiles/afsb_sys.dir/platform.cc.o"
  "CMakeFiles/afsb_sys.dir/platform.cc.o.d"
  "libafsb_sys.a"
  "libafsb_sys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afsb_sys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
