file(REMOVE_RECURSE
  "libafsb_sys.a"
)
