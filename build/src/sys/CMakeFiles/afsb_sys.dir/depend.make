# Empty dependencies file for afsb_sys.
# This may be replaced when dependencies are built.
