# Empty compiler generated dependencies file for afsb_gpusim.
# This may be replaced when dependencies are built.
