
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpusim/device.cc" "src/gpusim/CMakeFiles/afsb_gpusim.dir/device.cc.o" "gcc" "src/gpusim/CMakeFiles/afsb_gpusim.dir/device.cc.o.d"
  "/root/repo/src/gpusim/inference_sim.cc" "src/gpusim/CMakeFiles/afsb_gpusim.dir/inference_sim.cc.o" "gcc" "src/gpusim/CMakeFiles/afsb_gpusim.dir/inference_sim.cc.o.d"
  "/root/repo/src/gpusim/init_profile.cc" "src/gpusim/CMakeFiles/afsb_gpusim.dir/init_profile.cc.o" "gcc" "src/gpusim/CMakeFiles/afsb_gpusim.dir/init_profile.cc.o.d"
  "/root/repo/src/gpusim/serving.cc" "src/gpusim/CMakeFiles/afsb_gpusim.dir/serving.cc.o" "gcc" "src/gpusim/CMakeFiles/afsb_gpusim.dir/serving.cc.o.d"
  "/root/repo/src/gpusim/timeline.cc" "src/gpusim/CMakeFiles/afsb_gpusim.dir/timeline.cc.o" "gcc" "src/gpusim/CMakeFiles/afsb_gpusim.dir/timeline.cc.o.d"
  "/root/repo/src/gpusim/xla.cc" "src/gpusim/CMakeFiles/afsb_gpusim.dir/xla.cc.o" "gcc" "src/gpusim/CMakeFiles/afsb_gpusim.dir/xla.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/afsb_model.dir/DependInfo.cmake"
  "/root/repo/build/src/sys/CMakeFiles/afsb_sys.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/afsb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/bio/CMakeFiles/afsb_bio.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/afsb_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/afsb_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
