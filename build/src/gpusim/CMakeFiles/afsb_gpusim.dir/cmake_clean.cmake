file(REMOVE_RECURSE
  "CMakeFiles/afsb_gpusim.dir/device.cc.o"
  "CMakeFiles/afsb_gpusim.dir/device.cc.o.d"
  "CMakeFiles/afsb_gpusim.dir/inference_sim.cc.o"
  "CMakeFiles/afsb_gpusim.dir/inference_sim.cc.o.d"
  "CMakeFiles/afsb_gpusim.dir/init_profile.cc.o"
  "CMakeFiles/afsb_gpusim.dir/init_profile.cc.o.d"
  "CMakeFiles/afsb_gpusim.dir/serving.cc.o"
  "CMakeFiles/afsb_gpusim.dir/serving.cc.o.d"
  "CMakeFiles/afsb_gpusim.dir/timeline.cc.o"
  "CMakeFiles/afsb_gpusim.dir/timeline.cc.o.d"
  "CMakeFiles/afsb_gpusim.dir/xla.cc.o"
  "CMakeFiles/afsb_gpusim.dir/xla.cc.o.d"
  "libafsb_gpusim.a"
  "libafsb_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afsb_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
