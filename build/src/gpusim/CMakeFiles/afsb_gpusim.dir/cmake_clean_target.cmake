file(REMOVE_RECURSE
  "libafsb_gpusim.a"
)
