# Empty compiler generated dependencies file for afsb_prof.
# This may be replaced when dependencies are built.
