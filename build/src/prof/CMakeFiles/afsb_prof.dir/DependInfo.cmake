
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prof/perf_report.cc" "src/prof/CMakeFiles/afsb_prof.dir/perf_report.cc.o" "gcc" "src/prof/CMakeFiles/afsb_prof.dir/perf_report.cc.o.d"
  "/root/repo/src/prof/phase_profiler.cc" "src/prof/CMakeFiles/afsb_prof.dir/phase_profiler.cc.o" "gcc" "src/prof/CMakeFiles/afsb_prof.dir/phase_profiler.cc.o.d"
  "/root/repo/src/prof/repetition.cc" "src/prof/CMakeFiles/afsb_prof.dir/repetition.cc.o" "gcc" "src/prof/CMakeFiles/afsb_prof.dir/repetition.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cachesim/CMakeFiles/afsb_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/sys/CMakeFiles/afsb_sys.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/afsb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/afsb_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
