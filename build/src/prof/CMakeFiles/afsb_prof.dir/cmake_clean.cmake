file(REMOVE_RECURSE
  "CMakeFiles/afsb_prof.dir/perf_report.cc.o"
  "CMakeFiles/afsb_prof.dir/perf_report.cc.o.d"
  "CMakeFiles/afsb_prof.dir/phase_profiler.cc.o"
  "CMakeFiles/afsb_prof.dir/phase_profiler.cc.o.d"
  "CMakeFiles/afsb_prof.dir/repetition.cc.o"
  "CMakeFiles/afsb_prof.dir/repetition.cc.o.d"
  "libafsb_prof.a"
  "libafsb_prof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afsb_prof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
