file(REMOVE_RECURSE
  "libafsb_prof.a"
)
