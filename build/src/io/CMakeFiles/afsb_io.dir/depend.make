# Empty dependencies file for afsb_io.
# This may be replaced when dependencies are built.
