
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/buffered_reader.cc" "src/io/CMakeFiles/afsb_io.dir/buffered_reader.cc.o" "gcc" "src/io/CMakeFiles/afsb_io.dir/buffered_reader.cc.o.d"
  "/root/repo/src/io/pagecache.cc" "src/io/CMakeFiles/afsb_io.dir/pagecache.cc.o" "gcc" "src/io/CMakeFiles/afsb_io.dir/pagecache.cc.o.d"
  "/root/repo/src/io/storage.cc" "src/io/CMakeFiles/afsb_io.dir/storage.cc.o" "gcc" "src/io/CMakeFiles/afsb_io.dir/storage.cc.o.d"
  "/root/repo/src/io/vfs.cc" "src/io/CMakeFiles/afsb_io.dir/vfs.cc.o" "gcc" "src/io/CMakeFiles/afsb_io.dir/vfs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/afsb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
