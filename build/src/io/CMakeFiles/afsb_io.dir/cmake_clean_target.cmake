file(REMOVE_RECURSE
  "libafsb_io.a"
)
