file(REMOVE_RECURSE
  "CMakeFiles/afsb_io.dir/buffered_reader.cc.o"
  "CMakeFiles/afsb_io.dir/buffered_reader.cc.o.d"
  "CMakeFiles/afsb_io.dir/pagecache.cc.o"
  "CMakeFiles/afsb_io.dir/pagecache.cc.o.d"
  "CMakeFiles/afsb_io.dir/storage.cc.o"
  "CMakeFiles/afsb_io.dir/storage.cc.o.d"
  "CMakeFiles/afsb_io.dir/vfs.cc.o"
  "CMakeFiles/afsb_io.dir/vfs.cc.o.d"
  "libafsb_io.a"
  "libafsb_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afsb_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
