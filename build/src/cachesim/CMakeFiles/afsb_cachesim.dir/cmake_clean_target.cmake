file(REMOVE_RECURSE
  "libafsb_cachesim.a"
)
