# Empty compiler generated dependencies file for afsb_cachesim.
# This may be replaced when dependencies are built.
