file(REMOVE_RECURSE
  "CMakeFiles/afsb_cachesim.dir/cache.cc.o"
  "CMakeFiles/afsb_cachesim.dir/cache.cc.o.d"
  "CMakeFiles/afsb_cachesim.dir/hierarchy.cc.o"
  "CMakeFiles/afsb_cachesim.dir/hierarchy.cc.o.d"
  "CMakeFiles/afsb_cachesim.dir/timing.cc.o"
  "CMakeFiles/afsb_cachesim.dir/timing.cc.o.d"
  "libafsb_cachesim.a"
  "libafsb_cachesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afsb_cachesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
