file(REMOVE_RECURSE
  "libafsb_core.a"
)
