# Empty dependencies file for afsb_core.
# This may be replaced when dependencies are built.
