file(REMOVE_RECURSE
  "CMakeFiles/afsb_core.dir/adaptive_threads.cc.o"
  "CMakeFiles/afsb_core.dir/adaptive_threads.cc.o.d"
  "CMakeFiles/afsb_core.dir/memory_estimator.cc.o"
  "CMakeFiles/afsb_core.dir/memory_estimator.cc.o.d"
  "CMakeFiles/afsb_core.dir/msa_phase.cc.o"
  "CMakeFiles/afsb_core.dir/msa_phase.cc.o.d"
  "CMakeFiles/afsb_core.dir/pipeline.cc.o"
  "CMakeFiles/afsb_core.dir/pipeline.cc.o.d"
  "CMakeFiles/afsb_core.dir/workspace.cc.o"
  "CMakeFiles/afsb_core.dir/workspace.cc.o.d"
  "libafsb_core.a"
  "libafsb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afsb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
