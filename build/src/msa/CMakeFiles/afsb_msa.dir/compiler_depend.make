# Empty compiler generated dependencies file for afsb_msa.
# This may be replaced when dependencies are built.
