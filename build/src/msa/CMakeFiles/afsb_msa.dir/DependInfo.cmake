
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/msa/database.cc" "src/msa/CMakeFiles/afsb_msa.dir/database.cc.o" "gcc" "src/msa/CMakeFiles/afsb_msa.dir/database.cc.o.d"
  "/root/repo/src/msa/dbgen.cc" "src/msa/CMakeFiles/afsb_msa.dir/dbgen.cc.o" "gcc" "src/msa/CMakeFiles/afsb_msa.dir/dbgen.cc.o.d"
  "/root/repo/src/msa/dp_kernels.cc" "src/msa/CMakeFiles/afsb_msa.dir/dp_kernels.cc.o" "gcc" "src/msa/CMakeFiles/afsb_msa.dir/dp_kernels.cc.o.d"
  "/root/repo/src/msa/evalue.cc" "src/msa/CMakeFiles/afsb_msa.dir/evalue.cc.o" "gcc" "src/msa/CMakeFiles/afsb_msa.dir/evalue.cc.o.d"
  "/root/repo/src/msa/hmm_io.cc" "src/msa/CMakeFiles/afsb_msa.dir/hmm_io.cc.o" "gcc" "src/msa/CMakeFiles/afsb_msa.dir/hmm_io.cc.o.d"
  "/root/repo/src/msa/jackhmmer.cc" "src/msa/CMakeFiles/afsb_msa.dir/jackhmmer.cc.o" "gcc" "src/msa/CMakeFiles/afsb_msa.dir/jackhmmer.cc.o.d"
  "/root/repo/src/msa/memory_model.cc" "src/msa/CMakeFiles/afsb_msa.dir/memory_model.cc.o" "gcc" "src/msa/CMakeFiles/afsb_msa.dir/memory_model.cc.o.d"
  "/root/repo/src/msa/msa_builder.cc" "src/msa/CMakeFiles/afsb_msa.dir/msa_builder.cc.o" "gcc" "src/msa/CMakeFiles/afsb_msa.dir/msa_builder.cc.o.d"
  "/root/repo/src/msa/nhmmer.cc" "src/msa/CMakeFiles/afsb_msa.dir/nhmmer.cc.o" "gcc" "src/msa/CMakeFiles/afsb_msa.dir/nhmmer.cc.o.d"
  "/root/repo/src/msa/profile_hmm.cc" "src/msa/CMakeFiles/afsb_msa.dir/profile_hmm.cc.o" "gcc" "src/msa/CMakeFiles/afsb_msa.dir/profile_hmm.cc.o.d"
  "/root/repo/src/msa/score_matrix.cc" "src/msa/CMakeFiles/afsb_msa.dir/score_matrix.cc.o" "gcc" "src/msa/CMakeFiles/afsb_msa.dir/score_matrix.cc.o.d"
  "/root/repo/src/msa/search.cc" "src/msa/CMakeFiles/afsb_msa.dir/search.cc.o" "gcc" "src/msa/CMakeFiles/afsb_msa.dir/search.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bio/CMakeFiles/afsb_bio.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/afsb_io.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/afsb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
