file(REMOVE_RECURSE
  "CMakeFiles/afsb_msa.dir/database.cc.o"
  "CMakeFiles/afsb_msa.dir/database.cc.o.d"
  "CMakeFiles/afsb_msa.dir/dbgen.cc.o"
  "CMakeFiles/afsb_msa.dir/dbgen.cc.o.d"
  "CMakeFiles/afsb_msa.dir/dp_kernels.cc.o"
  "CMakeFiles/afsb_msa.dir/dp_kernels.cc.o.d"
  "CMakeFiles/afsb_msa.dir/evalue.cc.o"
  "CMakeFiles/afsb_msa.dir/evalue.cc.o.d"
  "CMakeFiles/afsb_msa.dir/hmm_io.cc.o"
  "CMakeFiles/afsb_msa.dir/hmm_io.cc.o.d"
  "CMakeFiles/afsb_msa.dir/jackhmmer.cc.o"
  "CMakeFiles/afsb_msa.dir/jackhmmer.cc.o.d"
  "CMakeFiles/afsb_msa.dir/memory_model.cc.o"
  "CMakeFiles/afsb_msa.dir/memory_model.cc.o.d"
  "CMakeFiles/afsb_msa.dir/msa_builder.cc.o"
  "CMakeFiles/afsb_msa.dir/msa_builder.cc.o.d"
  "CMakeFiles/afsb_msa.dir/nhmmer.cc.o"
  "CMakeFiles/afsb_msa.dir/nhmmer.cc.o.d"
  "CMakeFiles/afsb_msa.dir/profile_hmm.cc.o"
  "CMakeFiles/afsb_msa.dir/profile_hmm.cc.o.d"
  "CMakeFiles/afsb_msa.dir/score_matrix.cc.o"
  "CMakeFiles/afsb_msa.dir/score_matrix.cc.o.d"
  "CMakeFiles/afsb_msa.dir/search.cc.o"
  "CMakeFiles/afsb_msa.dir/search.cc.o.d"
  "libafsb_msa.a"
  "libafsb_msa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afsb_msa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
