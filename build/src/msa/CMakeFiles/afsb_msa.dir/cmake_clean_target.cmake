file(REMOVE_RECURSE
  "libafsb_msa.a"
)
