# Empty compiler generated dependencies file for custom_complex.
# This may be replaced when dependencies are built.
