file(REMOVE_RECURSE
  "CMakeFiles/custom_complex.dir/custom_complex.cpp.o"
  "CMakeFiles/custom_complex.dir/custom_complex.cpp.o.d"
  "custom_complex"
  "custom_complex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_complex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
