
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/custom_complex.cpp" "examples/CMakeFiles/custom_complex.dir/custom_complex.cpp.o" "gcc" "examples/CMakeFiles/custom_complex.dir/custom_complex.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/afsb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/afsb_model.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/afsb_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/afsb_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/msa/CMakeFiles/afsb_msa.dir/DependInfo.cmake"
  "/root/repo/build/src/bio/CMakeFiles/afsb_bio.dir/DependInfo.cmake"
  "/root/repo/build/src/prof/CMakeFiles/afsb_prof.dir/DependInfo.cmake"
  "/root/repo/build/src/cachesim/CMakeFiles/afsb_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/sys/CMakeFiles/afsb_sys.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/afsb_io.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/afsb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
