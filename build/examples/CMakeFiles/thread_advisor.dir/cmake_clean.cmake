file(REMOVE_RECURSE
  "CMakeFiles/thread_advisor.dir/thread_advisor.cpp.o"
  "CMakeFiles/thread_advisor.dir/thread_advisor.cpp.o.d"
  "thread_advisor"
  "thread_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thread_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
