# Empty dependencies file for thread_advisor.
# This may be replaced when dependencies are built.
