file(REMOVE_RECURSE
  "CMakeFiles/platform_compare.dir/platform_compare.cpp.o"
  "CMakeFiles/platform_compare.dir/platform_compare.cpp.o.d"
  "platform_compare"
  "platform_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
