# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_bio[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_msa[1]_include.cmake")
include("/root/repo/build/tests/test_sys[1]_include.cmake")
include("/root/repo/build/tests/test_cachesim[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_gpusim[1]_include.cmake")
include("/root/repo/build/tests/test_prof[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
add_test(cli_list "/root/repo/build/tools/afsysbench" "list")
set_tests_properties(cli_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;97;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_estimate_safe "/root/repo/build/tools/afsysbench" "estimate" "--sample" "2PV7" "--platform" "desktop")
set_tests_properties(cli_estimate_safe PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;98;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_estimate_oom "/root/repo/build/tools/afsysbench" "estimate" "--sample" "6QNR" "--platform" "desktop" "--threads" "8")
set_tests_properties(cli_estimate_oom PROPERTIES  WILL_FAIL "FALSE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;100;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_inference "/root/repo/build/tools/afsysbench" "inference" "--sample" "2PV7" "--platform" "server" "--persistent" "--requests" "2")
set_tests_properties(cli_inference PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;104;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_bad_platform "/root/repo/build/tools/afsysbench" "run" "--platform" "toaster")
set_tests_properties(cli_bad_platform PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;107;add_test;/root/repo/tests/CMakeLists.txt;0;")
