
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bio/test_alphabet.cc" "tests/CMakeFiles/test_bio.dir/bio/test_alphabet.cc.o" "gcc" "tests/CMakeFiles/test_bio.dir/bio/test_alphabet.cc.o.d"
  "/root/repo/tests/bio/test_complexity.cc" "tests/CMakeFiles/test_bio.dir/bio/test_complexity.cc.o" "gcc" "tests/CMakeFiles/test_bio.dir/bio/test_complexity.cc.o.d"
  "/root/repo/tests/bio/test_input_spec.cc" "tests/CMakeFiles/test_bio.dir/bio/test_input_spec.cc.o" "gcc" "tests/CMakeFiles/test_bio.dir/bio/test_input_spec.cc.o.d"
  "/root/repo/tests/bio/test_samples.cc" "tests/CMakeFiles/test_bio.dir/bio/test_samples.cc.o" "gcc" "tests/CMakeFiles/test_bio.dir/bio/test_samples.cc.o.d"
  "/root/repo/tests/bio/test_seqgen.cc" "tests/CMakeFiles/test_bio.dir/bio/test_seqgen.cc.o" "gcc" "tests/CMakeFiles/test_bio.dir/bio/test_seqgen.cc.o.d"
  "/root/repo/tests/bio/test_sequence.cc" "tests/CMakeFiles/test_bio.dir/bio/test_sequence.cc.o" "gcc" "tests/CMakeFiles/test_bio.dir/bio/test_sequence.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bio/CMakeFiles/afsb_bio.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/afsb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
