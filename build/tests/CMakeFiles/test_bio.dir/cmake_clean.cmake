file(REMOVE_RECURSE
  "CMakeFiles/test_bio.dir/bio/test_alphabet.cc.o"
  "CMakeFiles/test_bio.dir/bio/test_alphabet.cc.o.d"
  "CMakeFiles/test_bio.dir/bio/test_complexity.cc.o"
  "CMakeFiles/test_bio.dir/bio/test_complexity.cc.o.d"
  "CMakeFiles/test_bio.dir/bio/test_input_spec.cc.o"
  "CMakeFiles/test_bio.dir/bio/test_input_spec.cc.o.d"
  "CMakeFiles/test_bio.dir/bio/test_samples.cc.o"
  "CMakeFiles/test_bio.dir/bio/test_samples.cc.o.d"
  "CMakeFiles/test_bio.dir/bio/test_seqgen.cc.o"
  "CMakeFiles/test_bio.dir/bio/test_seqgen.cc.o.d"
  "CMakeFiles/test_bio.dir/bio/test_sequence.cc.o"
  "CMakeFiles/test_bio.dir/bio/test_sequence.cc.o.d"
  "test_bio"
  "test_bio.pdb"
  "test_bio[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
