
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/model/test_confidence.cc" "tests/CMakeFiles/test_model.dir/model/test_confidence.cc.o" "gcc" "tests/CMakeFiles/test_model.dir/model/test_confidence.cc.o.d"
  "/root/repo/tests/model/test_flops.cc" "tests/CMakeFiles/test_model.dir/model/test_flops.cc.o" "gcc" "tests/CMakeFiles/test_model.dir/model/test_flops.cc.o.d"
  "/root/repo/tests/model/test_layers.cc" "tests/CMakeFiles/test_model.dir/model/test_layers.cc.o" "gcc" "tests/CMakeFiles/test_model.dir/model/test_layers.cc.o.d"
  "/root/repo/tests/model/test_model.cc" "tests/CMakeFiles/test_model.dir/model/test_model.cc.o" "gcc" "tests/CMakeFiles/test_model.dir/model/test_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/afsb_model.dir/DependInfo.cmake"
  "/root/repo/build/src/bio/CMakeFiles/afsb_bio.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/afsb_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/afsb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
