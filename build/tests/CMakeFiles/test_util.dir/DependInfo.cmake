
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/test_cli.cc" "tests/CMakeFiles/test_util.dir/util/test_cli.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_cli.cc.o.d"
  "/root/repo/tests/util/test_interp.cc" "tests/CMakeFiles/test_util.dir/util/test_interp.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_interp.cc.o.d"
  "/root/repo/tests/util/test_json.cc" "tests/CMakeFiles/test_util.dir/util/test_json.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_json.cc.o.d"
  "/root/repo/tests/util/test_memtrace.cc" "tests/CMakeFiles/test_util.dir/util/test_memtrace.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_memtrace.cc.o.d"
  "/root/repo/tests/util/test_rng.cc" "tests/CMakeFiles/test_util.dir/util/test_rng.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_rng.cc.o.d"
  "/root/repo/tests/util/test_stats.cc" "tests/CMakeFiles/test_util.dir/util/test_stats.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_stats.cc.o.d"
  "/root/repo/tests/util/test_str.cc" "tests/CMakeFiles/test_util.dir/util/test_str.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_str.cc.o.d"
  "/root/repo/tests/util/test_table.cc" "tests/CMakeFiles/test_util.dir/util/test_table.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_table.cc.o.d"
  "/root/repo/tests/util/test_threadpool.cc" "tests/CMakeFiles/test_util.dir/util/test_threadpool.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_threadpool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/afsb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
