file(REMOVE_RECURSE
  "CMakeFiles/test_cachesim.dir/cachesim/test_cache.cc.o"
  "CMakeFiles/test_cachesim.dir/cachesim/test_cache.cc.o.d"
  "CMakeFiles/test_cachesim.dir/cachesim/test_hierarchy.cc.o"
  "CMakeFiles/test_cachesim.dir/cachesim/test_hierarchy.cc.o.d"
  "CMakeFiles/test_cachesim.dir/cachesim/test_properties.cc.o"
  "CMakeFiles/test_cachesim.dir/cachesim/test_properties.cc.o.d"
  "CMakeFiles/test_cachesim.dir/cachesim/test_timing.cc.o"
  "CMakeFiles/test_cachesim.dir/cachesim/test_timing.cc.o.d"
  "test_cachesim"
  "test_cachesim.pdb"
  "test_cachesim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cachesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
