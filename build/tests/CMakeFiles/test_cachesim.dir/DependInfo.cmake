
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cachesim/test_cache.cc" "tests/CMakeFiles/test_cachesim.dir/cachesim/test_cache.cc.o" "gcc" "tests/CMakeFiles/test_cachesim.dir/cachesim/test_cache.cc.o.d"
  "/root/repo/tests/cachesim/test_hierarchy.cc" "tests/CMakeFiles/test_cachesim.dir/cachesim/test_hierarchy.cc.o" "gcc" "tests/CMakeFiles/test_cachesim.dir/cachesim/test_hierarchy.cc.o.d"
  "/root/repo/tests/cachesim/test_properties.cc" "tests/CMakeFiles/test_cachesim.dir/cachesim/test_properties.cc.o" "gcc" "tests/CMakeFiles/test_cachesim.dir/cachesim/test_properties.cc.o.d"
  "/root/repo/tests/cachesim/test_timing.cc" "tests/CMakeFiles/test_cachesim.dir/cachesim/test_timing.cc.o" "gcc" "tests/CMakeFiles/test_cachesim.dir/cachesim/test_timing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cachesim/CMakeFiles/afsb_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/msa/CMakeFiles/afsb_msa.dir/DependInfo.cmake"
  "/root/repo/build/src/sys/CMakeFiles/afsb_sys.dir/DependInfo.cmake"
  "/root/repo/build/src/bio/CMakeFiles/afsb_bio.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/afsb_io.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/afsb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
