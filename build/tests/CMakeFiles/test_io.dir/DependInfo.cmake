
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/io/test_buffered_reader.cc" "tests/CMakeFiles/test_io.dir/io/test_buffered_reader.cc.o" "gcc" "tests/CMakeFiles/test_io.dir/io/test_buffered_reader.cc.o.d"
  "/root/repo/tests/io/test_pagecache.cc" "tests/CMakeFiles/test_io.dir/io/test_pagecache.cc.o" "gcc" "tests/CMakeFiles/test_io.dir/io/test_pagecache.cc.o.d"
  "/root/repo/tests/io/test_storage.cc" "tests/CMakeFiles/test_io.dir/io/test_storage.cc.o" "gcc" "tests/CMakeFiles/test_io.dir/io/test_storage.cc.o.d"
  "/root/repo/tests/io/test_vfs.cc" "tests/CMakeFiles/test_io.dir/io/test_vfs.cc.o" "gcc" "tests/CMakeFiles/test_io.dir/io/test_vfs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/io/CMakeFiles/afsb_io.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/afsb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
