file(REMOVE_RECURSE
  "CMakeFiles/test_io.dir/io/test_buffered_reader.cc.o"
  "CMakeFiles/test_io.dir/io/test_buffered_reader.cc.o.d"
  "CMakeFiles/test_io.dir/io/test_pagecache.cc.o"
  "CMakeFiles/test_io.dir/io/test_pagecache.cc.o.d"
  "CMakeFiles/test_io.dir/io/test_storage.cc.o"
  "CMakeFiles/test_io.dir/io/test_storage.cc.o.d"
  "CMakeFiles/test_io.dir/io/test_vfs.cc.o"
  "CMakeFiles/test_io.dir/io/test_vfs.cc.o.d"
  "test_io"
  "test_io.pdb"
  "test_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
