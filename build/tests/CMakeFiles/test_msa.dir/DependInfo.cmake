
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/msa/test_dp_kernels.cc" "tests/CMakeFiles/test_msa.dir/msa/test_dp_kernels.cc.o" "gcc" "tests/CMakeFiles/test_msa.dir/msa/test_dp_kernels.cc.o.d"
  "/root/repo/tests/msa/test_evalue.cc" "tests/CMakeFiles/test_msa.dir/msa/test_evalue.cc.o" "gcc" "tests/CMakeFiles/test_msa.dir/msa/test_evalue.cc.o.d"
  "/root/repo/tests/msa/test_hmm_io.cc" "tests/CMakeFiles/test_msa.dir/msa/test_hmm_io.cc.o" "gcc" "tests/CMakeFiles/test_msa.dir/msa/test_hmm_io.cc.o.d"
  "/root/repo/tests/msa/test_jackhmmer.cc" "tests/CMakeFiles/test_msa.dir/msa/test_jackhmmer.cc.o" "gcc" "tests/CMakeFiles/test_msa.dir/msa/test_jackhmmer.cc.o.d"
  "/root/repo/tests/msa/test_nhmmer.cc" "tests/CMakeFiles/test_msa.dir/msa/test_nhmmer.cc.o" "gcc" "tests/CMakeFiles/test_msa.dir/msa/test_nhmmer.cc.o.d"
  "/root/repo/tests/msa/test_score_profile.cc" "tests/CMakeFiles/test_msa.dir/msa/test_score_profile.cc.o" "gcc" "tests/CMakeFiles/test_msa.dir/msa/test_score_profile.cc.o.d"
  "/root/repo/tests/msa/test_search.cc" "tests/CMakeFiles/test_msa.dir/msa/test_search.cc.o" "gcc" "tests/CMakeFiles/test_msa.dir/msa/test_search.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/msa/CMakeFiles/afsb_msa.dir/DependInfo.cmake"
  "/root/repo/build/src/bio/CMakeFiles/afsb_bio.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/afsb_io.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/afsb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
