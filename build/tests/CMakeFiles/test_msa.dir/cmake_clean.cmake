file(REMOVE_RECURSE
  "CMakeFiles/test_msa.dir/msa/test_dp_kernels.cc.o"
  "CMakeFiles/test_msa.dir/msa/test_dp_kernels.cc.o.d"
  "CMakeFiles/test_msa.dir/msa/test_evalue.cc.o"
  "CMakeFiles/test_msa.dir/msa/test_evalue.cc.o.d"
  "CMakeFiles/test_msa.dir/msa/test_hmm_io.cc.o"
  "CMakeFiles/test_msa.dir/msa/test_hmm_io.cc.o.d"
  "CMakeFiles/test_msa.dir/msa/test_jackhmmer.cc.o"
  "CMakeFiles/test_msa.dir/msa/test_jackhmmer.cc.o.d"
  "CMakeFiles/test_msa.dir/msa/test_nhmmer.cc.o"
  "CMakeFiles/test_msa.dir/msa/test_nhmmer.cc.o.d"
  "CMakeFiles/test_msa.dir/msa/test_score_profile.cc.o"
  "CMakeFiles/test_msa.dir/msa/test_score_profile.cc.o.d"
  "CMakeFiles/test_msa.dir/msa/test_search.cc.o"
  "CMakeFiles/test_msa.dir/msa/test_search.cc.o.d"
  "test_msa"
  "test_msa.pdb"
  "test_msa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_msa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
