# Empty compiler generated dependencies file for afsysbench.
# This may be replaced when dependencies are built.
