file(REMOVE_RECURSE
  "CMakeFiles/afsysbench.dir/afsysbench.cc.o"
  "CMakeFiles/afsysbench.dir/afsysbench.cc.o.d"
  "afsysbench"
  "afsysbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afsysbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
