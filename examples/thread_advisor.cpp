/**
 * @file
 * Thread advisor: the paper's "adaptive thread allocation"
 * recommendation (Observation 3 / Section VI) as a tool. Evaluates
 * the calibrated platform model across candidate MSA thread counts
 * for a given input and prints the sweet spot — instead of AF3's
 * fixed 8-thread default.
 *
 *   ./thread_advisor promo server
 */

#include <cstdio>
#include <string>

#include "core/adaptive_threads.hh"
#include "util/str.hh"
#include "util/table.hh"

using namespace afsb;

int
main(int argc, char **argv)
{
    const std::string sampleName = argc > 1 ? argv[1] : "2PV7";
    const std::string platName = argc > 2 ? argv[2] : "server";
    const auto platform = platName == "desktop"
                              ? sys::desktopPlatform()
                              : sys::serverPlatform();

    const auto sample = bio::makeSample(sampleName);
    std::printf("Advising MSA thread count for %s on %s...\n\n",
                sampleName.c_str(), platform.name.c_str());

    const auto advice = core::recommendThreads(
        sample.complex, platform, core::Workspace::shared(),
        {1, 2, 4, 6, 8});

    TextTable t("Candidate evaluation");
    t.setHeader({"Threads", "Predicted MSA (s)", "vs best"});
    for (const auto &c : advice.candidates) {
        t.addRow({strformat("%u", c.threads),
                  strformat("%.1f", c.predictedSeconds),
                  strformat("%.2fx", c.predictedSeconds /
                                         advice.predictedSeconds)});
    }
    t.print();

    std::printf("Recommended: %u threads (predicted %.1f s)\n",
                advice.recommendedThreads, advice.predictedSeconds);
    std::printf("AF3 default (8 threads) would take %.1f s -> "
                "adaptive allocation saves %.1f%%\n",
                advice.defaultSeconds,
                100.0 * (1.0 - advice.predictedSeconds /
                                   advice.defaultSeconds));
    return 0;
}
