/**
 * @file
 * AFSysBench-C++ quickstart: run the full AF3 pipeline for one
 * input on one platform and print its phase breakdown.
 *
 *   ./quickstart [sample] [platform] [threads]
 *
 * e.g. ./quickstart 2PV7 desktop 4
 */

#include <cstdio>
#include <string>

#include "core/pipeline.hh"
#include "util/units.hh"

using namespace afsb;

int
main(int argc, char **argv)
{
    const std::string sampleName = argc > 1 ? argv[1] : "2PV7";
    const std::string platformName = argc > 2 ? argv[2] : "desktop";
    const uint32_t threads =
        argc > 3 ? static_cast<uint32_t>(std::atoi(argv[3])) : 4;

    // 1. Pick an input: one of the five Table II samples.
    const auto sample = bio::makeSample(sampleName);
    std::printf("Input %s: %s, %zu residues across %zu chains\n",
                sample.info.name.c_str(),
                sample.info.structure.c_str(),
                sample.complex.totalResidues(),
                sample.complex.chainCount());

    // 2. Pick a platform: the paper's Server or Desktop.
    const auto platform = platformName == "server"
                              ? sys::serverPlatform()
                              : sys::desktopPlatform();
    std::printf("Platform: %s (%s + %s)\n\n", platform.name.c_str(),
                platform.cpu.name.c_str(), platform.gpu.name.c_str());

    // 3. Build (or reuse) the shared workspace with the synthetic
    //    reference databases.
    const auto &workspace = core::Workspace::shared();

    // 4. Run MSA + inference.
    core::PipelineOptions options;
    options.msaThreads = threads;
    const auto result = core::runPipeline(sample.complex, platform,
                                          workspace, options);
    if (result.oom) {
        std::printf("Run failed: out of memory (peak %s vs %s)\n",
                    formatBytes(result.msa.peakMemoryBytes).c_str(),
                    formatBytes(platform.totalMemoryBytes()).c_str());
        return 1;
    }

    // 5. Report.
    std::printf("Phase breakdown (simulated on %s):\n%s\n",
                platform.name.c_str(),
                result.phases.render().c_str());
    std::printf("MSA share of end-to-end time: %.1f%%\n",
                100.0 * result.msaShare());
    std::printf("MSA scan: %llu targets, %llu prefilter passes, "
                "%llu hits\n",
                static_cast<unsigned long long>(
                    result.msa.scanStats.targetsScanned),
                static_cast<unsigned long long>(
                    result.msa.scanStats.msvPassed),
                static_cast<unsigned long long>(
                    result.msa.scanStats.hits));
    std::printf("Peak host memory (modeled): %s\n",
                formatBytes(result.msa.peakMemoryBytes).c_str());
    return 0;
}
