/**
 * @file
 * Build a custom biomolecular assembly programmatically, emit its
 * AF3 JSON, run the executable mini model end-to-end (real tensor
 * math producing 3-D coordinates), and print the layer profile —
 * the library as a downstream user would script it.
 */

#include <cstdio>

#include "bio/input_spec.hh"
#include "bio/seqgen.hh"
#include "model/af3_model.hh"
#include "msa/dbgen.hh"
#include "msa/jackhmmer.hh"
#include "util/units.hh"

using namespace afsb;

int
main()
{
    // --- 1. Assemble a custom protein-DNA complex ------------------------
    bio::SequenceGenerator gen(2026);
    bio::Complex assembly("my_complex");
    assembly.addChain(
        gen.random("A", bio::MoleculeType::Protein, 96));
    assembly.addChain(
        gen.random("B", bio::MoleculeType::Protein, 64));
    assembly.addChain(gen.random("D", bio::MoleculeType::Dna, 24));

    std::printf("AF3 input JSON:\n%s\n\n",
                bio::toInputJson(assembly, {7}).dumpPretty().c_str());

    // --- 2. Run a real (scaled) MSA search for chain A -------------------
    io::Vfs vfs;
    io::StorageDevice device;
    io::PageCache cache(1 * GiB, &device);
    msa::DbGenConfig dbCfg;
    dbCfg.decoyCount = 300;
    const std::vector<const bio::Sequence *> queries = {
        &assembly.chains()[0], &assembly.chains()[1]};
    generateDatabase(vfs, "db.fasta", queries,
                     bio::MoleculeType::Protein, dbCfg);
    const auto db = msa::SequenceDatabase::load(
        vfs, cache, "db.fasta", bio::MoleculeType::Protein, 0.0);

    msa::JackhmmerConfig jcfg;
    model::MsaFeatures msaFeatures;
    for (size_t c = 0; c < assembly.chainCount(); ++c) {
        const auto &chain = assembly.chains()[c];
        if (chain.type() != bio::MoleculeType::Protein) {
            msaFeatures.depthPerChain.push_back(0);
            continue;
        }
        const auto jr =
            msa::runJackhmmer(chain, db, cache, nullptr, jcfg);
        msaFeatures.depthPerChain.push_back(jr.msa.depth());
        std::printf("chain %s: MSA depth %zu (identity %.0f%%), "
                    "%llu targets scanned\n",
                    chain.id().c_str(), jr.msa.depth(),
                    100.0 * jr.msa.meanIdentity(),
                    static_cast<unsigned long long>(
                        jr.stats.targetsScanned));
    }

    // --- 3. Inference with the executable mini model ---------------------
    model::Af3Model model(model::miniConfig(), /*seed=*/2026);
    const auto result = model.infer(assembly, msaFeatures, 7);

    std::printf("\nPredicted structure: %zu atoms\n",
                result.structure.coords.dim(0));
    for (size_t i = 0; i < 5; ++i)
        std::printf("  token %zu: (%8.3f, %8.3f, %8.3f)\n", i,
                    result.structure.coords.at(i, 0),
                    result.structure.coords.at(i, 1),
                    result.structure.coords.at(i, 2));

    std::printf("\nLayer wall-clock profile (JAX-profiler style):\n");
    for (const auto &[layer, seconds] : result.profile)
        std::printf("  %-30s %8.2f ms\n", layer.c_str(),
                    seconds * 1e3);
    std::printf("Pairformer total %.2f ms, Diffusion total %.2f "
                "ms\n",
                result.pairformerSeconds() * 1e3,
                result.diffusionSeconds() * 1e3);
    return 0;
}
