/**
 * @file
 * Platform shopping guide: should you buy the HPC server or the
 * gaming desktop for your AF3 workload? Runs a user-supplied (or
 * built-in) input on both Table I platforms and reports end-to-end
 * time, bottleneck phase, and memory verdicts — the paper's
 * Observation 1 ("consumer-grade systems can efficiently support
 * AF3") as an interactive decision tool.
 *
 *   ./platform_compare promo
 *   ./platform_compare my_input.json
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include "bio/input_spec.hh"
#include "core/memory_estimator.hh"
#include "core/pipeline.hh"
#include "util/logging.hh"
#include "util/str.hh"
#include "util/table.hh"

using namespace afsb;

namespace {

bio::Complex
loadInput(const std::string &arg)
{
    for (const auto &name : bio::sampleNames())
        if (arg == name)
            return bio::makeSample(arg).complex;
    std::ifstream file(arg);
    if (!file)
        fatal("cannot open input '" + arg + "'");
    std::stringstream buf;
    buf << file.rdbuf();
    return bio::parseInputJson(buf.str()).complex;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string input = argc > 1 ? argv[1] : "1YY9";
    const auto complexInput = loadInput(input);
    const auto &ws = core::Workspace::shared();

    std::printf("Comparing platforms for %s (%zu residues)...\n\n",
                complexInput.name().c_str(),
                complexInput.totalResidues());

    TextTable t("Server vs Desktop");
    t.setHeader({"Platform", "Memory verdict", "MSA (s)",
                 "Inference (s)", "Total (s)", "Bottleneck"});
    double totals[2] = {0, 0};
    int idx = 0;
    for (const auto &platform :
         {sys::serverPlatform(), sys::desktopPlatform()}) {
        const auto estimate =
            core::estimateMemory(complexInput, platform, 6);
        if (estimate.willOom()) {
            t.addRow({platform.name, "WILL-OOM", "-", "-", "-",
                      "memory"});
            totals[idx++] = 1e30;
            continue;
        }
        core::PipelineOptions opt;
        opt.msaThreads = 6;
        opt.msa.traceStride = 16;
        const auto r =
            core::runPipeline(complexInput, platform, ws, opt);
        const char *bottleneck =
            r.msaShare() > 0.5 ? "MSA (CPU)" : "inference (GPU)";
        std::string verdict = "fits";
        for (const auto &line : estimate.lines)
            if (line.verdict != core::MemVerdict::Safe)
                verdict = core::memVerdictName(line.verdict);
        t.addRow({platform.name, verdict,
                  strformat("%.1f", r.msa.seconds),
                  strformat("%.1f", r.inference.totalSeconds()),
                  strformat("%.1f", r.totalSeconds()), bottleneck});
        totals[idx++] = r.totalSeconds();
    }
    t.print();

    if (totals[1] <= totals[0] * 1.1) {
        std::printf(
            "Verdict: the Desktop is competitive (%.2fx the Server "
            "time) — a strong CPU matters more than a top-tier GPU "
            "for this workload (paper Observation 1).\n",
            totals[1] / totals[0]);
    } else {
        std::printf(
            "Verdict: this input benefits from server-class "
            "resources (%.2fx faster than Desktop).\n",
            totals[1] / totals[0]);
    }
    return 0;
}
