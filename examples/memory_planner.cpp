/**
 * @file
 * Memory planner: the paper's Section VI "static memory estimator"
 * as a user-facing tool. Give it an AF3-style JSON input (or a
 * built-in sample name) and a platform; it predicts host and GPU
 * peaks and tells you whether the run is safe *before* you burn
 * hours on it.
 *
 *   ./memory_planner 6QNR desktop
 *   ./memory_planner input.json server-cxl
 *   ./memory_planner --rna-sweep server-cxl
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "bio/input_spec.hh"
#include "bio/samples.hh"
#include "core/memory_estimator.hh"
#include "util/logging.hh"
#include "util/units.hh"

using namespace afsb;

namespace {

sys::PlatformSpec
platformByName(const std::string &name)
{
    if (name == "server")
        return sys::serverPlatform();
    if (name == "server-cxl")
        return sys::serverPlatformWithCxl();
    if (name == "desktop-128")
        return sys::desktopPlatformUpgraded();
    return sys::desktopPlatform();
}

bio::Complex
loadInput(const std::string &arg)
{
    // A known sample name, or a path to an AF3 JSON file.
    for (const auto &name : bio::sampleNames())
        if (arg == name || (arg == "promo" && name == "promo"))
            return bio::makeSample(arg).complex;

    std::ifstream file(arg);
    if (!file)
        fatal("cannot open input '" + arg +
              "' (not a sample name or readable file)");
    std::stringstream buf;
    buf << file.rdbuf();
    return bio::parseInputJson(buf.str()).complex;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string input = argc > 1 ? argv[1] : "6QNR";
    const std::string platName = argc > 2 ? argv[2] : "desktop";
    const auto platform = platformByName(platName);

    if (input == "--rna-sweep") {
        // Where does this platform's RNA wall sit?
        std::printf("RNA length limit sweep on %s (%s total "
                    "memory):\n",
                    platform.name.c_str(),
                    formatBytes(platform.totalMemoryBytes()).c_str());
        size_t lastSafe = 0;
        for (size_t len = 100; len <= 1400; len += 25) {
            bio::Complex c("probe");
            c.addChain(bio::makeRibosomalRna(len));
            const auto est = core::estimateMemory(c, platform, 8);
            if (est.runnable())
                lastSafe = len;
        }
        std::printf("Longest safe RNA chain: %zu nt\n", lastSafe);
        return 0;
    }

    const auto complexInput = loadInput(input);
    std::printf("Input: %s (%zu residues, %zu chains)\n",
                complexInput.name().c_str(),
                complexInput.totalResidues(),
                complexInput.chainCount());
    std::printf("Platform: %s\n\n", platform.name.c_str());

    const auto estimate =
        core::estimateMemory(complexInput, platform, 8);
    std::printf("%s\n", estimate.render().c_str());
    if (estimate.willOom()) {
        std::printf("VERDICT: do not run — projected to exceed "
                    "memory. (AF3 itself performs no such check "
                    "and would die mid-run.)\n");
        return 1;
    }
    std::printf("VERDICT: safe to run on this platform.\n");
    return 0;
}
