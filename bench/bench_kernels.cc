/**
 * @file
 * google-benchmark microbenchmarks of the real compute kernels:
 * MSA dynamic programming (MSV / banded Viterbi / banded Forward),
 * Pairformer layers, and diffusion attention — actual wall-clock of
 * the executable implementations, complementing the simulated
 * paper-scale numbers.
 *
 * Each DP kernel is benchmarked twice: the native striped path
 * (default, what production untraced runs execute) and the scalar
 * reference loop (KernelConfig::forceScalar, the traced-path
 * arithmetic without a sink). The tensor primitives likewise pair
 * the blocked branch-free kernels against local copies of the
 * original naive loops, plus pool-parallel variants.
 *
 * Usage: bench_kernels [--json <path>] [google-benchmark flags]
 *
 * --json writes a machine-readable summary: one record per benchmark
 * with ns/op, iteration count, and every user counter (GFLOP/s,
 * cells/s) finalized the same way the console output is.
 */

#include <benchmark/benchmark.h>

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bio/seqgen.hh"
#include "model/diffusion.hh"
#include "model/layers.hh"
#include "model/pairformer.hh"
#include "msa/dbgen.hh"
#include "msa/dp_kernels.hh"
#include "msa/search.hh"
#include "tensor/ops.hh"
#include "util/json.hh"
#include "util/threadpool.hh"
#include "util/units.hh"

using namespace afsb;

namespace {

/** Worker count for the pool-parallel benchmark variants. */
constexpr size_t kBenchPoolThreads = 4;

// --- MSA kernels ---------------------------------------------------------

msa::ProfileHmm
benchProfile(size_t m, uint64_t seed)
{
    bio::SequenceGenerator gen(seed);
    const auto q = gen.random("q", bio::MoleculeType::Protein, m);
    return msa::ProfileHmm::fromSequence(q,
                                         msa::ScoreMatrix::blosum62());
}

void
runMsvFilter(benchmark::State &state, bool scalar)
{
    const auto m = static_cast<size_t>(state.range(0));
    bio::SequenceGenerator gen(1);
    const auto t = gen.random("t", bio::MoleculeType::Protein, 400);
    const auto prof = benchProfile(m, 1);
    msa::KernelConfig cfg;
    cfg.forceScalar = scalar;
    uint64_t cells = 0;
    for (auto _ : state) {
        const auto r = msa::msvFilter(prof, t, cfg);
        benchmark::DoNotOptimize(r.score);
        cells += r.cells;
    }
    state.counters["cells/s"] = benchmark::Counter(
        static_cast<double>(cells), benchmark::Counter::kIsRate);
}

void
BM_MsvFilter(benchmark::State &state)
{
    runMsvFilter(state, false);
}
BENCHMARK(BM_MsvFilter)->Arg(128)->Arg(256)->Arg(512);

void
BM_MsvFilterScalar(benchmark::State &state)
{
    runMsvFilter(state, true);
}
BENCHMARK(BM_MsvFilterScalar)->Arg(128)->Arg(256)->Arg(512);

void
runCalcBand9(benchmark::State &state, bool scalar)
{
    const auto m = static_cast<size_t>(state.range(0));
    bio::SequenceGenerator gen(2);
    const auto t = gen.random("t", bio::MoleculeType::Protein, 400);
    const auto prof = benchProfile(m, 2);
    msa::KernelConfig cfg;
    cfg.band = static_cast<size_t>(state.range(1));
    cfg.forceScalar = scalar;
    uint64_t cells = 0;
    for (auto _ : state) {
        const auto r = msa::calcBand9(prof, t, cfg);
        benchmark::DoNotOptimize(r.score);
        cells += r.cells;
    }
    state.counters["cells/s"] = benchmark::Counter(
        static_cast<double>(cells), benchmark::Counter::kIsRate);
}

void
BM_CalcBand9(benchmark::State &state)
{
    runCalcBand9(state, false);
}
BENCHMARK(BM_CalcBand9)
    ->Args({128, 96})
    ->Args({256, 96})
    ->Args({512, 96})
    ->Args({256, 16});

void
BM_CalcBand9Scalar(benchmark::State &state)
{
    runCalcBand9(state, true);
}
BENCHMARK(BM_CalcBand9Scalar)
    ->Args({128, 96})
    ->Args({256, 96})
    ->Args({512, 96})
    ->Args({256, 16});

void
runCalcBand10(benchmark::State &state, bool scalar)
{
    const auto m = static_cast<size_t>(state.range(0));
    bio::SequenceGenerator gen(3);
    const auto t = gen.random("t", bio::MoleculeType::Protein, 400);
    const auto prof = benchProfile(m, 3);
    msa::KernelConfig cfg;
    cfg.band = static_cast<size_t>(state.range(1));
    cfg.forceScalar = scalar;
    uint64_t cells = 0;
    for (auto _ : state) {
        const auto r = msa::calcBand10(prof, t, cfg);
        benchmark::DoNotOptimize(r.logOdds);
        cells += r.cells;
    }
    state.counters["cells/s"] = benchmark::Counter(
        static_cast<double>(cells), benchmark::Counter::kIsRate);
}

void
BM_CalcBand10(benchmark::State &state)
{
    runCalcBand10(state, false);
}
BENCHMARK(BM_CalcBand10)
    ->Args({128, 96})
    ->Args({256, 96})
    ->Args({512, 96})
    ->Args({256, 16});

void
BM_CalcBand10Scalar(benchmark::State &state)
{
    runCalcBand10(state, true);
}
BENCHMARK(BM_CalcBand10Scalar)
    ->Args({128, 96})
    ->Args({256, 96})
    ->Args({512, 96})
    ->Args({256, 16});

// --- Pairformer layers -----------------------------------------------------

model::ModelConfig
benchConfig()
{
    auto cfg = model::miniConfig();
    cfg.pairDim = 16;
    cfg.heads = 2;
    cfg.headDim = 8;
    return cfg;
}

/** Acceptance shape for the GEMM-shaped cores: the ISSUE targets are
 *  measured at c = 64 channels, 4 heads x 16 head dims. */
constexpr size_t kCoreChannels = 64;
constexpr size_t kCoreHeads = 4;
constexpr size_t kCoreHeadDim = 16;

void
BM_TriangleAttentionLayer(benchmark::State &state)
{
    const auto n = static_cast<size_t>(state.range(0));
    const auto cfg = benchConfig();
    Rng rng(4);
    auto pair = tensor::Tensor::randomNormal({n, n, cfg.pairDim},
                                             rng);
    const auto w = model::TriangleAttnWeights::init(cfg, rng);
    for (auto _ : state) {
        model::triangleAttention(pair, w, cfg, true);
        benchmark::DoNotOptimize(pair.data());
    }
    // O(N^3) work per iteration.
    state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_TriangleAttentionLayer)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Complexity(benchmark::oNCubed);

void
runTriangleMultUpdate(benchmark::State &state, ThreadPool *pool)
{
    const auto n = static_cast<size_t>(state.range(0));
    auto cfg = benchConfig();
    cfg.pool = pool;
    Rng rng(5);
    auto pair = tensor::Tensor::randomNormal({n, n, cfg.pairDim},
                                             rng);
    const auto w = model::TriangleMultWeights::init(cfg, rng);
    for (auto _ : state) {
        model::triangleMultiplicativeUpdate(pair, w, cfg, true);
        benchmark::DoNotOptimize(pair.data());
    }
}

void
BM_TriangleMultUpdateLayer(benchmark::State &state)
{
    runTriangleMultUpdate(state, nullptr);
}
BENCHMARK(BM_TriangleMultUpdateLayer)->Arg(16)->Arg(32)->Arg(64);

void
BM_TriangleMultUpdateLayerPool(benchmark::State &state)
{
    ThreadPool pool(kBenchPoolThreads);
    runTriangleMultUpdate(state, &pool);
}
BENCHMARK(BM_TriangleMultUpdateLayerPool)->Arg(32)->Arg(64);

// --- GEMM-shaped kernel cores ----------------------------------------------
//
// The naive/fast speedup targets are defined on the cores (projected
// q/k/v in, context out): the surrounding projections are identical
// in both paths and would only dilute the ratio.

void
runTriangleAttentionCore(benchmark::State &state, bool naive,
                         bool useArena, ThreadPool *pool)
{
    const auto n = static_cast<size_t>(state.range(0));
    const size_t hd = kCoreHeads * kCoreHeadDim;
    Rng rng(12);
    const auto q = tensor::Tensor::randomNormal({n, n, hd}, rng);
    const auto k = tensor::Tensor::randomNormal({n, n, hd}, rng);
    const auto v = tensor::Tensor::randomNormal({n, n, hd}, rng);
    const auto bias =
        tensor::Tensor::randomNormal({n, n, kCoreHeads}, rng);
    tensor::Arena arena;
    tensor::Arena *ap = useArena ? &arena : nullptr;
    for (auto _ : state) {
        tensor::Arena::Scope scope(ap);
        const auto ctx = model::triangleAttentionCore(
            q, k, v, bias, kCoreHeads, kCoreHeadDim, true, naive,
            pool, ap);
        benchmark::DoNotOptimize(ctx.data());
    }
    // 2*dh flops per logit plus 2*dh per context MAC, for every
    // (line, head, row, column).
    state.counters["GFLOP/s"] = benchmark::Counter(
        4.0 * static_cast<double>(n) * n * n * kCoreHeadDim *
            kCoreHeads * 1e-9 *
            static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}

void
BM_TriangleAttentionCore(benchmark::State &state)
{
    runTriangleAttentionCore(state, false, false, nullptr);
}
BENCHMARK(BM_TriangleAttentionCore)->Arg(64)->Arg(128);

void
BM_TriangleAttentionCoreNaive(benchmark::State &state)
{
    runTriangleAttentionCore(state, true, false, nullptr);
}
BENCHMARK(BM_TriangleAttentionCoreNaive)->Arg(64)->Arg(128);

void
BM_TriangleAttentionCoreArena(benchmark::State &state)
{
    runTriangleAttentionCore(state, false, true, nullptr);
}
BENCHMARK(BM_TriangleAttentionCoreArena)->Arg(64)->Arg(128);

void
BM_TriangleAttentionCorePool(benchmark::State &state)
{
    ThreadPool pool(kBenchPoolThreads);
    runTriangleAttentionCore(state, false, false, &pool);
}
BENCHMARK(BM_TriangleAttentionCorePool)->Arg(64)->Arg(128);

void
runTriangleMultCore(benchmark::State &state, bool naive,
                    bool useArena, ThreadPool *pool)
{
    const auto n = static_cast<size_t>(state.range(0));
    Rng rng(13);
    const auto a =
        tensor::Tensor::randomNormal({n, n, kCoreChannels}, rng);
    const auto b =
        tensor::Tensor::randomNormal({n, n, kCoreChannels}, rng);
    tensor::Arena arena;
    tensor::Arena *ap = useArena ? &arena : nullptr;
    for (auto _ : state) {
        tensor::Arena::Scope scope(ap);
        const auto out = model::triangleMultEinsum(a, b, true,
                                                   naive, pool, ap);
        benchmark::DoNotOptimize(out.data());
    }
    state.counters["GFLOP/s"] = benchmark::Counter(
        2.0 * static_cast<double>(n) * n * n * kCoreChannels *
            1e-9 * static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}

void
BM_TriangleMultCore(benchmark::State &state)
{
    runTriangleMultCore(state, false, false, nullptr);
}
BENCHMARK(BM_TriangleMultCore)->Arg(64)->Arg(128);

void
BM_TriangleMultCoreNaive(benchmark::State &state)
{
    runTriangleMultCore(state, true, false, nullptr);
}
BENCHMARK(BM_TriangleMultCoreNaive)->Arg(64)->Arg(128);

void
BM_TriangleMultCoreArena(benchmark::State &state)
{
    runTriangleMultCore(state, false, true, nullptr);
}
BENCHMARK(BM_TriangleMultCoreArena)->Arg(64)->Arg(128);

void
BM_TriangleMultCorePool(benchmark::State &state)
{
    ThreadPool pool(kBenchPoolThreads);
    runTriangleMultCore(state, false, false, &pool);
}
BENCHMARK(BM_TriangleMultCorePool)->Arg(64)->Arg(128);

void
runSingleAttentionCore(benchmark::State &state, bool naive,
                       bool useArena, ThreadPool *pool)
{
    const auto n = static_cast<size_t>(state.range(0));
    const size_t hd = kCoreHeads * kCoreHeadDim;
    Rng rng(14);
    const auto q = tensor::Tensor::randomNormal({n, hd}, rng);
    const auto k = tensor::Tensor::randomNormal({n, hd}, rng);
    const auto v = tensor::Tensor::randomNormal({n, hd}, rng);
    const auto bias =
        tensor::Tensor::randomNormal({n, n, kCoreHeads}, rng);
    tensor::Arena arena;
    tensor::Arena *ap = useArena ? &arena : nullptr;
    for (auto _ : state) {
        tensor::Arena::Scope scope(ap);
        const auto ctx = model::singleAttentionCore(
            q, k, v, bias, kCoreHeads, kCoreHeadDim, naive, pool,
            ap);
        benchmark::DoNotOptimize(ctx.data());
    }
    state.counters["GFLOP/s"] = benchmark::Counter(
        4.0 * static_cast<double>(n) * n * kCoreHeadDim *
            kCoreHeads * 1e-9 *
            static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}

void
BM_SingleAttentionCore(benchmark::State &state)
{
    runSingleAttentionCore(state, false, false, nullptr);
}
BENCHMARK(BM_SingleAttentionCore)->Arg(128)->Arg(256);

void
BM_SingleAttentionCoreNaive(benchmark::State &state)
{
    runSingleAttentionCore(state, true, false, nullptr);
}
BENCHMARK(BM_SingleAttentionCoreNaive)->Arg(128)->Arg(256);

void
BM_SingleAttentionCoreArena(benchmark::State &state)
{
    runSingleAttentionCore(state, false, true, nullptr);
}
BENCHMARK(BM_SingleAttentionCoreArena)->Arg(128)->Arg(256);

void
BM_SingleAttentionCorePool(benchmark::State &state)
{
    ThreadPool pool(kBenchPoolThreads);
    runSingleAttentionCore(state, false, false, &pool);
}
BENCHMARK(BM_SingleAttentionCorePool)->Arg(128)->Arg(256);

void
BM_DiffusionStep(benchmark::State &state)
{
    const auto n = static_cast<size_t>(state.range(0));
    const auto cfg = benchConfig();
    Rng rng(6);
    model::DiffusionModule diffusion(cfg, rng);
    model::PairState s;
    s.pair = tensor::Tensor::randomNormal({n, n, cfg.pairDim}, rng);
    s.single =
        tensor::Tensor::randomNormal({n, cfg.singleDim}, rng);
    for (auto _ : state) {
        Rng noise(7);
        const auto out = diffusion.sample(s, noise);
        benchmark::DoNotOptimize(out.coords.data());
    }
}
BENCHMARK(BM_DiffusionStep)->Arg(32)->Arg(64);

void
BM_DiffusionStepArena(benchmark::State &state)
{
    const auto n = static_cast<size_t>(state.range(0));
    auto cfg = benchConfig();
    tensor::Arena arena;
    cfg.arena = &arena;
    Rng rng(6);
    model::DiffusionModule diffusion(cfg, rng);
    model::PairState s;
    s.pair = tensor::Tensor::randomNormal({n, n, cfg.pairDim}, rng);
    s.single =
        tensor::Tensor::randomNormal({n, cfg.singleDim}, rng);
    for (auto _ : state) {
        Rng noise(7);
        const auto out = diffusion.sample(s, noise);
        benchmark::DoNotOptimize(out.coords.data());
    }
}
BENCHMARK(BM_DiffusionStepArena)->Arg(32)->Arg(64);

// --- Task-graph schedulers --------------------------------------------------
//
// Fork-join vs task-graph pairs for the acceptance comparison: the
// same pool, shape, and compiled unit bodies; only the scheduler
// differs (barriered parallelFor sweeps vs one TaskGroup dependency
// graph per block), so the ratio isolates barrier drain time.

void
runPairformerBlockBench(benchmark::State &state, bool taskGraph)
{
    const auto n = static_cast<size_t>(state.range(0));
    auto cfg = benchConfig();
    cfg.pairformerBlocks = 1;
    ThreadPool pool(kBenchPoolThreads);
    tensor::Arena arena;
    cfg.pool = &pool;
    cfg.arena = &arena;
    cfg.taskGraph = taskGraph;
    Rng rng(14);
    const model::Pairformer block(cfg, rng);
    model::PairState s;
    s.pair = tensor::Tensor::randomNormal({n, n, cfg.pairDim}, rng);
    s.single =
        tensor::Tensor::randomNormal({n, cfg.singleDim}, rng);
    for (auto _ : state) {
        block.forward(s);
        benchmark::DoNotOptimize(s.pair.data());
    }
}

void
BM_PairformerBlockForkJoin(benchmark::State &state)
{
    runPairformerBlockBench(state, false);
}
BENCHMARK(BM_PairformerBlockForkJoin)->Arg(32)->Arg(64);

void
BM_PairformerBlockTaskGraph(benchmark::State &state)
{
    runPairformerBlockBench(state, true);
}
BENCHMARK(BM_PairformerBlockTaskGraph)->Arg(32)->Arg(64);

/**
 * Overlapped staged database scan, queue engine vs TaskGroup engine
 * (SearchConfig::taskScan). A homopolymer-skewed query inflates the
 * survivor stage — the skew the dynamic stages exist to balance —
 * and the page cache stays warm after the first iteration, so the
 * steady state measures scheduling, not disk.
 */
void
runStagedScanBench(benchmark::State &state, bool taskScan)
{
    const auto decoys = static_cast<size_t>(state.range(0));
    bio::SequenceGenerator gen(4242);
    const auto query = gen.withHomopolymer("q", 200, 48, 'Q');
    io::Vfs vfs;
    io::StorageDevice dev;
    io::PageCache cache(1 * GiB, &dev);
    msa::DbGenConfig dcfg;
    dcfg.decoyCount = decoys;
    dcfg.homologsPerQuery = 8;
    dcfg.fragmentsPerQuery = 6;
    dcfg.lowComplexityFraction = 0.1;
    const std::vector<const bio::Sequence *> queries = {&query};
    msa::generateDatabase(vfs, "bench.fasta", queries,
                          bio::MoleculeType::Protein, dcfg);
    const auto db = msa::SequenceDatabase::load(
        vfs, cache, "bench.fasta", bio::MoleculeType::Protein, 0.0);
    const auto prof = msa::ProfileHmm::fromSequence(
        query, msa::ScoreMatrix::blosum62());

    ThreadPool pool(kBenchPoolThreads);
    msa::SearchConfig cfg;
    cfg.threads = kBenchPoolThreads;
    cfg.overlap = true;
    cfg.taskScan = taskScan;

    for (auto _ : state) {
        const auto r =
            msa::searchDatabase(prof, db, cache, &pool, cfg);
        benchmark::DoNotOptimize(r.stats.hits);
    }
}

void
BM_StagedScanQueue(benchmark::State &state)
{
    runStagedScanBench(state, false);
}
BENCHMARK(BM_StagedScanQueue)->Arg(300);

void
BM_StagedScanTaskGraph(benchmark::State &state)
{
    runStagedScanBench(state, true);
}
BENCHMARK(BM_StagedScanTaskGraph)->Arg(300);

// --- Tensor primitives ------------------------------------------------------

/** The seed's matmul loop (zero-skip branch, no blocking), kept as
 *  the speedup baseline for the blocked branch-free kernel. */
tensor::Tensor
naiveMatmul(const tensor::Tensor &a, const tensor::Tensor &b)
{
    const size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
    tensor::Tensor c({m, n});
    for (size_t i = 0; i < m; ++i) {
        const float *arow = a.data() + i * k;
        float *crow = c.data() + i * n;
        for (size_t kk = 0; kk < k; ++kk) {
            const float av = arow[kk];
            if (av == 0.0f)
                continue;
            const float *brow = b.data() + kk * n;
            for (size_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
    return c;
}

/** The seed's linear loop (zero-skip branch), speedup baseline. */
tensor::Tensor
naiveLinear(const tensor::Tensor &x, const tensor::Tensor &w,
            const tensor::Tensor &b)
{
    const size_t in = w.dim(0), out = w.dim(1);
    std::vector<size_t> outShape = x.shape();
    outShape.back() = out;
    tensor::Tensor y(std::move(outShape));
    const size_t rows = x.size() / in;
    for (size_t r = 0; r < rows; ++r) {
        const float *xi = x.data() + r * in;
        float *yo = y.data() + r * out;
        for (size_t o = 0; o < out; ++o)
            yo[o] = b[o];
        for (size_t i = 0; i < in; ++i) {
            const float xv = xi[i];
            if (xv == 0.0f)
                continue;
            const float *wrow = w.data() + i * out;
            for (size_t o = 0; o < out; ++o)
                yo[o] += xv * wrow[o];
        }
    }
    return y;
}

void
matmulFlops(benchmark::State &state, size_t n)
{
    state.counters["GFLOP/s"] = benchmark::Counter(
        2.0 * static_cast<double>(n) * n * n * 1e-9 *
            static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}

void
BM_Matmul(benchmark::State &state)
{
    const auto n = static_cast<size_t>(state.range(0));
    Rng rng(8);
    const auto a = tensor::Tensor::randomNormal({n, n}, rng);
    const auto b = tensor::Tensor::randomNormal({n, n}, rng);
    for (auto _ : state) {
        const auto c = tensor::matmul(a, b);
        benchmark::DoNotOptimize(c.data());
    }
    matmulFlops(state, n);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

void
BM_MatmulNaive(benchmark::State &state)
{
    const auto n = static_cast<size_t>(state.range(0));
    Rng rng(8);
    const auto a = tensor::Tensor::randomNormal({n, n}, rng);
    const auto b = tensor::Tensor::randomNormal({n, n}, rng);
    for (auto _ : state) {
        const auto c = naiveMatmul(a, b);
        benchmark::DoNotOptimize(c.data());
    }
    matmulFlops(state, n);
}
BENCHMARK(BM_MatmulNaive)->Arg(64)->Arg(128)->Arg(256);

void
BM_MatmulPool(benchmark::State &state)
{
    const auto n = static_cast<size_t>(state.range(0));
    ThreadPool pool(kBenchPoolThreads);
    Rng rng(8);
    const auto a = tensor::Tensor::randomNormal({n, n}, rng);
    const auto b = tensor::Tensor::randomNormal({n, n}, rng);
    for (auto _ : state) {
        const auto c = tensor::matmul(a, b, &pool);
        benchmark::DoNotOptimize(c.data());
    }
    matmulFlops(state, n);
}
BENCHMARK(BM_MatmulPool)->Arg(128)->Arg(256);

void
BM_Linear(benchmark::State &state)
{
    const auto n = static_cast<size_t>(state.range(0));
    Rng rng(10);
    const auto x = tensor::Tensor::randomNormal({n, n}, rng);
    const auto w = tensor::Tensor::randomNormal({n, n}, rng);
    const tensor::Tensor b({n});
    for (auto _ : state) {
        const auto y = tensor::linear(x, w, b);
        benchmark::DoNotOptimize(y.data());
    }
    matmulFlops(state, n);
}
BENCHMARK(BM_Linear)->Arg(64)->Arg(128)->Arg(256);

void
BM_LinearNaive(benchmark::State &state)
{
    const auto n = static_cast<size_t>(state.range(0));
    Rng rng(10);
    const auto x = tensor::Tensor::randomNormal({n, n}, rng);
    const auto w = tensor::Tensor::randomNormal({n, n}, rng);
    const tensor::Tensor b({n});
    for (auto _ : state) {
        const auto y = naiveLinear(x, w, b);
        benchmark::DoNotOptimize(y.data());
    }
    matmulFlops(state, n);
}
BENCHMARK(BM_LinearNaive)->Arg(64)->Arg(128)->Arg(256);

void
BM_LinearPool(benchmark::State &state)
{
    const auto n = static_cast<size_t>(state.range(0));
    ThreadPool pool(kBenchPoolThreads);
    Rng rng(10);
    const auto x = tensor::Tensor::randomNormal({n, n}, rng);
    const auto w = tensor::Tensor::randomNormal({n, n}, rng);
    const tensor::Tensor b({n});
    for (auto _ : state) {
        const auto y = tensor::linear(x, w, b, &pool);
        benchmark::DoNotOptimize(y.data());
    }
    matmulFlops(state, n);
}
BENCHMARK(BM_LinearPool)->Arg(128)->Arg(256);

void
BM_Softmax(benchmark::State &state)
{
    Rng rng(9);
    const auto x = tensor::Tensor::randomNormal({256, 256}, rng);
    for (auto _ : state) {
        const auto y = tensor::softmax(x);
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_Softmax);

void
BM_LayerNorm(benchmark::State &state)
{
    Rng rng(11);
    const auto x = tensor::Tensor::randomNormal({256, 256}, rng);
    for (auto _ : state) {
        const auto y = tensor::layerNorm(x);
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_LayerNorm);

// --- --json reporting -------------------------------------------------------

/**
 * Console reporter that additionally captures every per-iteration
 * run so a JSON summary can be written after the fact. Counters are
 * finalized (rates divided by elapsed seconds) the same way the
 * console printer does it.
 */
class JsonCaptureReporter : public benchmark::ConsoleReporter
{
  public:
    void ReportRuns(const std::vector<Run> &reports) override
    {
        for (const Run &run : reports) {
            if (run.run_type != Run::RT_Iteration ||
                run.error_occurred)
                continue;
            JsonValue rec = JsonValue::makeObject();
            rec["name"] = run.benchmark_name();
            rec["iterations"] =
                static_cast<int64_t>(run.iterations);
            rec["ns_per_op"] = adjustedNs(run);
            JsonValue counters = JsonValue::makeObject();
            // Counters reaching the reporter are already finalized
            // (rates divided by elapsed time by the runner).
            for (const auto &[name, c] : run.counters)
                counters[name] = c.value;
            rec["counters"] = counters;
            records_.push(std::move(rec));
        }
        benchmark::ConsoleReporter::ReportRuns(reports);
    }

    /** Write `{"benchmarks": [...]}` to @p path. */
    bool write(const std::string &path) const
    {
        JsonValue doc = JsonValue::makeObject();
        doc["benchmarks"] = records_;
        std::ofstream out(path);
        if (!out)
            return false;
        out << doc.dumpPretty() << "\n";
        return out.good();
    }

  private:
    /** Real time per iteration in nanoseconds, regardless of the
     *  benchmark's display time unit. */
    static double adjustedNs(const Run &run)
    {
        if (run.iterations == 0)
            return run.real_accumulated_time * 1e9;
        return run.real_accumulated_time * 1e9 /
               static_cast<double>(run.iterations);
    }

    JsonValue records_ = JsonValue::makeArray();
};

} // namespace

int
main(int argc, char **argv)
{
    // Strip our own --json flag before google-benchmark sees argv.
    std::string jsonPath;
    std::vector<char *> args;
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            jsonPath = argv[++i];
            continue;
        }
        args.push_back(argv[i]);
    }
    int n = static_cast<int>(args.size());
    benchmark::Initialize(&n, args.data());
    if (benchmark::ReportUnrecognizedArguments(n, args.data()))
        return 1;

    JsonCaptureReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    if (!jsonPath.empty() && !reporter.write(jsonPath)) {
        std::fprintf(stderr, "bench_kernels: cannot write %s\n",
                     jsonPath.c_str());
        return 1;
    }
    return 0;
}
