/**
 * @file
 * google-benchmark microbenchmarks of the real compute kernels:
 * MSA dynamic programming (MSV / banded Viterbi / banded Forward),
 * Pairformer layers, and diffusion attention — actual wall-clock of
 * the executable implementations, complementing the simulated
 * paper-scale numbers.
 */

#include <benchmark/benchmark.h>

#include "bio/seqgen.hh"
#include "model/layers.hh"
#include "model/diffusion.hh"
#include "msa/dp_kernels.hh"
#include "tensor/ops.hh"

using namespace afsb;

namespace {

// --- MSA kernels ---------------------------------------------------------

void
BM_MsvFilter(benchmark::State &state)
{
    const auto m = static_cast<size_t>(state.range(0));
    bio::SequenceGenerator gen(1);
    const auto q = gen.random("q", bio::MoleculeType::Protein, m);
    const auto t = gen.random("t", bio::MoleculeType::Protein, 400);
    const auto prof =
        msa::ProfileHmm::fromSequence(q, msa::ScoreMatrix::blosum62());
    uint64_t cells = 0;
    for (auto _ : state) {
        const auto r = msa::msvFilter(prof, t);
        benchmark::DoNotOptimize(r.score);
        cells += r.cells;
    }
    state.counters["cells/s"] = benchmark::Counter(
        static_cast<double>(cells), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MsvFilter)->Arg(128)->Arg(256)->Arg(512);

void
BM_CalcBand9(benchmark::State &state)
{
    const auto m = static_cast<size_t>(state.range(0));
    bio::SequenceGenerator gen(2);
    const auto q = gen.random("q", bio::MoleculeType::Protein, m);
    const auto t = gen.random("t", bio::MoleculeType::Protein, 400);
    const auto prof =
        msa::ProfileHmm::fromSequence(q, msa::ScoreMatrix::blosum62());
    uint64_t cells = 0;
    for (auto _ : state) {
        const auto r = msa::calcBand9(prof, t);
        benchmark::DoNotOptimize(r.score);
        cells += r.cells;
    }
    state.counters["cells/s"] = benchmark::Counter(
        static_cast<double>(cells), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CalcBand9)->Arg(128)->Arg(256)->Arg(512);

void
BM_CalcBand10(benchmark::State &state)
{
    const auto m = static_cast<size_t>(state.range(0));
    bio::SequenceGenerator gen(3);
    const auto q = gen.random("q", bio::MoleculeType::Protein, m);
    const auto t = gen.random("t", bio::MoleculeType::Protein, 400);
    const auto prof =
        msa::ProfileHmm::fromSequence(q, msa::ScoreMatrix::blosum62());
    for (auto _ : state) {
        const auto r = msa::calcBand10(prof, t);
        benchmark::DoNotOptimize(r.logOdds);
    }
}
BENCHMARK(BM_CalcBand10)->Arg(128)->Arg(256)->Arg(512);

// --- Pairformer layers -----------------------------------------------------

model::ModelConfig
benchConfig()
{
    auto cfg = model::miniConfig();
    cfg.pairDim = 16;
    cfg.heads = 2;
    cfg.headDim = 8;
    return cfg;
}

void
BM_TriangleAttention(benchmark::State &state)
{
    const auto n = static_cast<size_t>(state.range(0));
    const auto cfg = benchConfig();
    Rng rng(4);
    auto pair = tensor::Tensor::randomNormal({n, n, cfg.pairDim},
                                             rng);
    const auto w = model::TriangleAttnWeights::init(cfg, rng);
    for (auto _ : state) {
        model::triangleAttention(pair, w, cfg, true);
        benchmark::DoNotOptimize(pair.data());
    }
    // O(N^3) work per iteration.
    state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_TriangleAttention)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Complexity(benchmark::oNCubed);

void
BM_TriangleMultUpdate(benchmark::State &state)
{
    const auto n = static_cast<size_t>(state.range(0));
    const auto cfg = benchConfig();
    Rng rng(5);
    auto pair = tensor::Tensor::randomNormal({n, n, cfg.pairDim},
                                             rng);
    const auto w = model::TriangleMultWeights::init(cfg, rng);
    for (auto _ : state) {
        model::triangleMultiplicativeUpdate(pair, w, true);
        benchmark::DoNotOptimize(pair.data());
    }
}
BENCHMARK(BM_TriangleMultUpdate)->Arg(16)->Arg(32)->Arg(64);

void
BM_DiffusionStep(benchmark::State &state)
{
    const auto n = static_cast<size_t>(state.range(0));
    const auto cfg = benchConfig();
    Rng rng(6);
    model::DiffusionModule diffusion(cfg, rng);
    model::PairState s;
    s.pair = tensor::Tensor::randomNormal({n, n, cfg.pairDim}, rng);
    s.single =
        tensor::Tensor::randomNormal({n, cfg.singleDim}, rng);
    for (auto _ : state) {
        Rng noise(7);
        const auto out = diffusion.sample(s, noise);
        benchmark::DoNotOptimize(out.coords.data());
    }
}
BENCHMARK(BM_DiffusionStep)->Arg(32)->Arg(64);

// --- Tensor primitives ------------------------------------------------------

void
BM_Matmul(benchmark::State &state)
{
    const auto n = static_cast<size_t>(state.range(0));
    Rng rng(8);
    const auto a = tensor::Tensor::randomNormal({n, n}, rng);
    const auto b = tensor::Tensor::randomNormal({n, n}, rng);
    for (auto _ : state) {
        const auto c = tensor::matmul(a, b);
        benchmark::DoNotOptimize(c.data());
    }
    state.counters["GFLOP/s"] = benchmark::Counter(
        2.0 * static_cast<double>(n) * n * n * 1e-9 *
            static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

void
BM_Softmax(benchmark::State &state)
{
    Rng rng(9);
    const auto x = tensor::Tensor::randomNormal({256, 256}, rng);
    for (auto _ : state) {
        const auto y = tensor::softmax(x);
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_Softmax);

} // namespace

BENCHMARK_MAIN();
