/**
 * @file
 * Shared helpers for the experiment-regeneration benches.
 *
 * Every binary in bench/ regenerates one table or figure from the
 * paper; these helpers keep their output style uniform.
 */

#ifndef AFSB_BENCH_BENCH_COMMON_HH
#define AFSB_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <string>

#include "util/str.hh"
#include "util/table.hh"
#include "util/units.hh"

namespace afsb::bench {

/** Print the standard bench banner. */
inline void
banner(const std::string &experiment, const std::string &paper_ref,
       const std::string &expectation)
{
    std::printf("==========================================================="
                "=====================\n");
    std::printf("AFSysBench-C++  |  %s\n", experiment.c_str());
    std::printf("Reproduces: %s\n", paper_ref.c_str());
    std::printf("Paper shape: %s\n", expectation.c_str());
    std::printf("==========================================================="
                "=====================\n\n");
}

/** Format seconds with 1 decimal. */
inline std::string
secs(double s)
{
    return strformat("%.1f", s);
}

/** Format a percentage with 1 decimal. */
inline std::string
pct(double fraction)
{
    return strformat("%.1f%%", 100.0 * fraction);
}

/** Format a raw percent value. */
inline std::string
pctv(double percent)
{
    return strformat("%.2f", percent);
}

} // namespace afsb::bench

#endif // AFSB_BENCH_BENCH_COMMON_HH
