/**
 * @file
 * Regenerates paper Fig 7: relative MSA-vs-inference time
 * distribution under optimal thread settings per system.
 */

#include "bench_common.hh"
#include "core/pipeline.hh"

using namespace afsb;

int
main()
{
    bench::banner(
        "Fig 7 — MSA vs inference share at optimal threads",
        "Kim et al., IISWC 2025, Fig 7 / Section V-B1",
        "MSA dominates: ~75-80% for simpler inputs up to >94% on "
        "Server for the most complex; inference shares slightly "
        "higher on Desktop");

    const auto &ws = core::Workspace::shared();

    TextTable t("Fig 7: phase shares (optimal thread settings)");
    t.setHeader({"Platform", "Sample", "MSA (s)", "Inference (s)",
                 "MSA share", "Inference share"});
    for (const auto &platform :
         {sys::serverPlatform(), sys::desktopPlatform()}) {
        for (const char *name : {"2PV7", "7RCE", "1YY9", "promo"}) {
            const auto sample = bio::makeSample(name);
            // "Optimal" per Fig 4: 4 threads for the small inputs,
            // 6 for the larger ones.
            const bool large = sample.complex.totalResidues() > 600;
            core::PipelineOptions opt;
            opt.msaThreads = large ? 6 : 4;
            opt.msa.traceStride = 16;
            const auto r = core::runPipeline(sample.complex,
                                             platform, ws, opt);
            t.addRow({platform.name, name,
                      bench::secs(r.msa.seconds),
                      bench::secs(r.inference.totalSeconds()),
                      bench::pct(r.msaShare()),
                      bench::pct(1.0 - r.msaShare())});
        }
        t.addSeparator();
    }
    t.print();
    return 0;
}
