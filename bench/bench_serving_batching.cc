/**
 * @file
 * Continuous-batching study: batch-size x bucket-granularity x
 * arrival-rate sweeps over the GPU serving path. The batch former
 * coalesces bucket-compatible queued requests at dispatch time, so
 * every member shares one (layer, bucket) executable, one finalize
 * base, and the kernel-launch ramp — the Section VI serving lever
 * this bench quantifies against goodput and tail latency.
 *
 * The headline comparison holds arrival rate fixed and pits the
 * solo-dispatch baseline (batch-max 1, the pre-batching simulator
 * bit-for-bit) against batched configs; at saturation the batched
 * cells must complete more requests per hour at a lower p99.
 *
 * --json <path> writes every sweep cell as a bench-JSON record with
 * per-cell compile-amortization and padding-waste counters. The
 * simulation runs on a virtual clock, so the values are
 * seed-deterministic; the repo-root BENCH_serving.json trend file
 * carries these records and tools/bench_check --trend --absolute
 * gates them in CI.
 */

#include "bench_common.hh"
#include "io/textfile.hh"
#include "serve/cluster.hh"
#include "serve/report.hh"
#include "util/cli.hh"
#include "util/json.hh"
#include "util/stats.hh"

using namespace afsb;

namespace {

serve::WorkloadSpec
workload(double rps)
{
    serve::WorkloadSpec spec;
    spec.requestsPerSecond = rps;
    spec.durationSeconds = 3600.0;
    spec.seed = 0xba7c4;
    spec.mix = serve::parseMix("2PV7=2,7RCE=1");
    // Repeat-heavy query population: the MSA cache runs hot, so the
    // GPU pool is the bottleneck the batch former works on.
    spec.variantsPerSample = 1;
    return spec;
}

/** One sweep cell as a bench-JSON record (virtual clock, so every
 *  value is seed-deterministic and --absolute gateable). */
JsonValue
record(const std::string &name, const serve::ClusterResult &r)
{
    const auto p = percentilesOf(r.completedLatencies());
    JsonValue rec = JsonValue::makeObject();
    rec["name"] = name;
    rec["iterations"] = static_cast<int64_t>(1);
    rec["ns_per_op"] = p.p99 * 1e9; // the SLO the former targets
    JsonValue counters = JsonValue::makeObject();
    counters["completed"] = r.completed;
    counters["shed"] = r.shed;
    counters["p50_s"] = p.p50;
    counters["p99_s"] = p.p99;
    counters["goodput_per_h"] = r.goodputPerHour();
    counters["req_per_h"] = r.throughputPerHour();
    counters["gpu_util"] = r.gpuUtilization();
    counters["batches"] = r.batchesFormed;
    counters["occupancy_mean"] = r.meanBatchOccupancy();
    counters["padding_waste"] = r.paddingWasteFraction();
    counters["compile_amortization"] =
        r.compileAmortizationFactor();
    counters["vram_splits"] = r.vramBatchSplits;
    rec["counters"] = counters;
    return rec;
}

struct Cell
{
    serve::ClusterResult result;
    double p99 = 0.0;
    double goodput = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    bench::banner(
        "Continuous batching — shape-bucketed compile sharing",
        "Kim et al., IISWC 2025, Section VI (deployment "
        "optimizations)",
        "Open-loop traffic on a cache-hot cluster; the batch former "
        "coalesces bucket-compatible requests at GPU dispatch");

    const auto platform = sys::serverPlatform();
    serve::MsaServiceOracle oracle; // characterize samples once

    // Single GPU worker, ample MSA pool, no admission shedding:
    // once the MSA cache warms, the GPU queue floods and every
    // offered request completes, so solo-vs-batched p99 compares
    // identical completion sets (shedding would let the solo
    // baseline drop its worst requests and fake a better tail).
    const auto runCell = [&](double rps, uint32_t batchMax,
                             uint32_t bucketTokens,
                             uint32_t gpusPerNode) {
        serve::ClusterConfig cfg;
        cfg.msaOracle = &oracle;
        cfg.msaWorkers = 8;
        cfg.gpuWorkers = 1;
        cfg.admissionCapacity = 100000;
        cfg.batchMax = batchMax;
        cfg.bucketTokens = bucketTokens;
        cfg.gpusPerNode = gpusPerNode;
        Cell cell;
        cell.result = serve::simulateCluster(
            platform, core::Workspace::shared(),
            serve::generateRequests(workload(rps)), cfg);
        cell.p99 =
            percentilesOf(cell.result.completedLatencies()).p99;
        cell.goodput = cell.result.goodputPerHour();
        return cell;
    };

    JsonValue records = JsonValue::makeArray();
    bool headline = false;

    // --- Sweep 1: batch size x arrival rate (bucket 64) ----------
    {
        TextTable t("Batch-size sweep on Server (8 MSA x 1 GPU, "
                    "bucket 64)");
        t.setHeader({"rps", "batch-max", "done", "shed", "p50 (s)",
                     "p99 (s)", "goodput/h", "occ mean",
                     "pad waste", "amort"});
        for (double rps : {0.05, 0.2}) {
            double soloP99 = 0.0, soloGoodput = 0.0;
            for (uint32_t bm : {1u, 2u, 4u, 8u}) {
                const auto cell = runCell(rps, bm, 64, 1);
                const auto &r = cell.result;
                if (bm == 1) {
                    soloP99 = cell.p99;
                    soloGoodput = cell.goodput;
                } else if (cell.p99 < soloP99 &&
                           cell.goodput > soloGoodput) {
                    headline = true;
                }
                records.push(record(
                    strformat("ServeBatching/rps:%.2f/batch:%u",
                              rps, bm),
                    r));
                t.addRow(
                    {strformat("%.2f", rps), strformat("%u", bm),
                     strformat("%llu",
                               static_cast<unsigned long long>(
                                   r.completed)),
                     strformat("%llu",
                               static_cast<unsigned long long>(
                                   r.shed)),
                     bench::secs(percentilesOf(
                                     r.completedLatencies())
                                     .p50),
                     bench::secs(cell.p99),
                     strformat("%.1f", cell.goodput),
                     strformat("%.2f", r.meanBatchOccupancy()),
                     bench::pct(r.paddingWasteFraction()),
                     strformat("%.2fx",
                               r.compileAmortizationFactor())});
            }
        }
        t.print();
    }

    // --- Sweep 2: bucket granularity (batch-max 4, 0.2 rps) ------
    // Coarse buckets batch more (one compile covers more lengths)
    // but pad more; fine buckets waste nothing and share nothing.
    {
        TextTable t("Bucket-granularity sweep on Server "
                    "(batch-max 4, 0.2 rps)");
        t.setHeader({"bucket", "done", "p99 (s)", "goodput/h",
                     "batches", "occ mean", "pad waste", "amort"});
        for (uint32_t bucket : {16u, 64u, 256u}) {
            const auto cell = runCell(0.2, 4, bucket, 1);
            const auto &r = cell.result;
            records.push(record(
                strformat("ServeBatching/bucket:%u/batch:4",
                          bucket),
                r));
            t.addRow(
                {strformat("%u", bucket),
                 strformat("%llu", static_cast<unsigned long long>(
                                       r.completed)),
                 bench::secs(cell.p99),
                 strformat("%.1f", cell.goodput),
                 strformat("%llu", static_cast<unsigned long long>(
                                       r.batchesFormed)),
                 strformat("%.2f", r.meanBatchOccupancy()),
                 bench::pct(r.paddingWasteFraction()),
                 strformat("%.2fx", r.compileAmortizationFactor())});
        }
        t.print();
    }

    // --- Sweep 3: data-parallel fan-out (batch-max 4, 0.2 rps) ---
    {
        TextTable t("GPUs-per-node sweep on Server (batch-max 4, "
                    "bucket 64, 0.2 rps)");
        t.setHeader({"gpus/node", "done", "p99 (s)", "goodput/h",
                     "gpu util"});
        for (uint32_t gpus : {1u, 2u, 4u}) {
            const auto cell = runCell(0.2, 4, 64, gpus);
            const auto &r = cell.result;
            records.push(record(
                strformat("ServeBatching/gpus:%u/batch:4", gpus),
                r));
            t.addRow(
                {strformat("%u", gpus),
                 strformat("%llu", static_cast<unsigned long long>(
                                       r.completed)),
                 bench::secs(cell.p99),
                 strformat("%.1f", cell.goodput),
                 bench::pct(r.gpuUtilization())});
        }
        t.print();
    }

    std::printf("Headline (batched beats solo on both p99 and "
                "goodput at equal arrival rate): %s\n\n",
                headline ? "yes" : "NO");

    const std::string jsonPath = args.get("json");
    if (!jsonPath.empty()) {
        JsonValue doc = JsonValue::makeObject();
        doc["benchmarks"] = records;
        io::writeTextFile(jsonPath, doc.dumpPretty() + "\n");
        std::printf("Wrote %zu deterministic sweep records to %s\n",
                    records.size(), jsonPath.c_str());
    }
    return headline ? 0 : 1;
}
