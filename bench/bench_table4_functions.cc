/**
 * @file
 * Regenerates paper Table IV: function-level performance on the
 * Server — CPU-cycle shares and cache-miss shares of the hot MSA
 * symbols at 1 vs 4 threads.
 */

#include "bench_common.hh"
#include "core/msa_phase.hh"
#include "prof/perf_report.hh"

using namespace afsb;

int
main()
{
    bench::banner(
        "Table IV — Function-level profile on the Server",
        "Kim et al., IISWC 2025, Table IV",
        "calc_band_9/10 dominate cycles (~55% combined), addbuf+"
        "seebuf ~23%; copy_to_iter dominates cache misses at 1T "
        "(~46%) but its share halves at 4T while calc_band_9's "
        "roughly doubles (compute-bound -> memory-bound shift)");

    const auto &ws = core::Workspace::shared();
    const auto platform = sys::serverPlatform();

    for (const char *name : {"2PV7", "promo"}) {
        const auto sample = bio::makeSample(name);
        TextTable t(strformat("Table IV (%s, Server)", name));
        t.setHeader({"Metric", "Function", "1T", "4T"});

        std::vector<prof::FunctionShare> reports[2];
        int idx = 0;
        for (uint32_t th : {1u, 4u}) {
            core::MsaPhaseOptions opt;
            opt.threads = th;
            opt.traceStride = 8;
            const auto r = core::runMsaPhase(sample.complex,
                                             platform, ws, opt);
            reports[idx++] = prof::buildFunctionReport(
                r.perFunction, platform.cpu);
        }

        auto cycles = [&](int i, const char *fn) {
            const auto *row = prof::findFunction(reports[i], fn);
            return row ? strformat("%.2f", row->cyclesPct)
                       : std::string("-");
        };
        auto misses = [&](int i, const char *fn) {
            const auto *row = prof::findFunction(reports[i], fn);
            return row ? strformat("%.2f", row->llcMissPct)
                       : std::string("-");
        };

        for (const char *fn :
             {"calc_band_9", "calc_band_10", "addbuf", "seebuf"}) {
            t.addRow({"CPU Cycles (%)", fn, cycles(0, fn),
                      cycles(1, fn)});
        }
        t.addSeparator();
        for (const char *fn :
             {"copy_to_iter", "calc_band_9", "addbuf"}) {
            t.addRow({"Cache Misses (%)", fn, misses(0, fn),
                      misses(1, fn)});
        }
        t.print();
    }
    return 0;
}
