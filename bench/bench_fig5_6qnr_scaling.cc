/**
 * @file
 * Regenerates paper Fig 5: thread-level performance and speedup
 * scaling of the MSA phase on 6QNR, the most compute-intensive
 * sample.
 */

#include "bench_common.hh"
#include "core/msa_phase.hh"
#include "util/stats.hh"

using namespace afsb;

int
main()
{
    bench::banner(
        "Fig 5 — 6QNR MSA thread scaling and speedup",
        "Kim et al., IISWC 2025, Fig 5",
        "steep speedup 1->2T, diminishing beyond 4T, and execution "
        "time INCREASES again at 6-8T — AF3's fixed default of 8 "
        "threads is not optimal for this input");

    const auto &ws = core::Workspace::shared();
    const auto sample = bio::makeSample("6QNR");
    const std::vector<uint32_t> threads = {1, 2, 4, 6, 8};

    for (const auto &platform : {sys::serverPlatform(),
                                 sys::desktopPlatformUpgraded()}) {
        TextTable t(strformat("Fig 5 (%s): 6QNR MSA scaling",
                              platform.name.c_str()));
        t.setHeader({"Threads", "MSA (s)", "Speedup", "Efficiency",
                     "Ideal speedup"});
        std::vector<double> times;
        for (uint32_t th : threads) {
            core::MsaPhaseOptions opt;
            opt.threads = th;
            opt.traceStride = 16;
            const auto r = core::runMsaPhase(sample.complex,
                                             platform, ws, opt);
            times.push_back(r.seconds);
        }
        const auto speedups = speedupSeries(times);
        for (size_t i = 0; i < threads.size(); ++i) {
            t.addRow({strformat("%u", threads[i]),
                      bench::secs(times[i]),
                      strformat("%.2fx", speedups[i]),
                      strformat("%.0f%%", 100.0 * speedups[i] /
                                              threads[i]),
                      strformat("%ux", threads[i])});
        }
        t.print();
        std::printf(
            "Departure from linear at 8T: %.2fx achieved vs 8x "
            "ideal\n\n",
            speedups.back());
    }
    return 0;
}
