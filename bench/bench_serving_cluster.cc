/**
 * @file
 * Serving-cluster study: worker-pool sizing and MSA-result-cache
 * sweeps over an open-loop request mix — the cluster-level sequel to
 * bench_serving_cold_start. The ParaFold-style split (CPU MSA pool,
 * GPU inference pool) plus the AF_Cache-style content-addressed MSA
 * cache are the paper's two Section VI deployment levers; this bench
 * quantifies both against tail latency and shed rate.
 *
 * --json <path> writes every sweep point as a bench-JSON record
 * (same shape as bench_kernels --json). The simulation runs on a
 * virtual clock, so the values are seed-deterministic; the repo-root
 * BENCH_serving.json trend file is seeded from this output and gated
 * by tools/bench_check --trend --absolute.
 */

#include "bench_common.hh"
#include "io/textfile.hh"
#include "serve/cluster.hh"
#include "serve/report.hh"
#include "util/cli.hh"
#include "util/json.hh"
#include "util/stats.hh"
#include "util/units.hh"

using namespace afsb;

namespace {

serve::WorkloadSpec
workload()
{
    serve::WorkloadSpec spec;
    spec.requestsPerSecond = 0.02;
    spec.durationSeconds = 3600.0;
    spec.seed = 0xbe7c;
    spec.mix = serve::parseMix("2PV7=2,7RCE=1");
    spec.variantsPerSample = 2; // repeat-heavy query population
    return spec;
}

double
meanOfLatencies(const serve::ClusterResult &r)
{
    const auto xs = r.completedLatencies();
    return xs.empty() ? 0.0 : meanOf(xs);
}

/**
 * One sweep point as a bench-JSON record. The simulation runs on a
 * virtual clock, so ns_per_op (mean completed-request latency) and
 * every counter are seed-deterministic — bench_check --absolute can
 * gate them with zero tolerance for machine speed.
 */
JsonValue
record(const std::string &name, const serve::ClusterResult &r)
{
    const auto p = percentilesOf(r.completedLatencies());
    JsonValue rec = JsonValue::makeObject();
    rec["name"] = name;
    rec["iterations"] = static_cast<int64_t>(1);
    rec["ns_per_op"] = meanOfLatencies(r) * 1e9;
    JsonValue counters = JsonValue::makeObject();
    counters["completed"] = r.completed;
    counters["degraded"] = r.degraded;
    counters["failed"] = r.failed;
    counters["shed"] = r.shed;
    counters["p50_s"] = p.p50;
    counters["p95_s"] = p.p95;
    counters["p99_s"] = p.p99;
    counters["cache_hit_rate"] = r.cacheStats.hitRate();
    counters["msa_util"] = r.msaUtilization();
    counters["gpu_util"] = r.gpuUtilization();
    counters["req_per_h"] = r.throughputPerHour();
    rec["counters"] = counters;
    return rec;
}

} // namespace

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    bench::banner(
        "Serving cluster — worker pools, admission, MSA cache",
        "Kim et al., IISWC 2025, Section VI (deployment "
        "optimizations)",
        "Open-loop Poisson traffic on decoupled MSA/GPU pools; "
        "repeated queries exercise the content-addressed MSA "
        "result cache");

    const auto platform = sys::serverPlatform();
    const auto requests = serve::generateRequests(workload());
    std::printf("Workload: %zu requests over %.0f s "
                "(2PV7=2,7RCE=1; 2 variants/sample; seed 0x%llx)\n\n",
                requests.size(), workload().durationSeconds,
                static_cast<unsigned long long>(workload().seed));

    JsonValue records = JsonValue::makeArray();

    // --- Sweep 1: worker-pool sizing at a fixed 512 MiB cache ----
    {
        TextTable t("Worker-pool sweep on Server (cache 512 MiB, "
                    "fifo)");
        t.setHeader({"MSA x GPU", "done", "shed", "p50 (s)",
                     "p95 (s)", "msa util", "gpu util", "req/h"});
        const std::pair<uint32_t, uint32_t> pools[] = {
            {1, 1}, {2, 1}, {4, 2}, {8, 2}};
        for (const auto &[msaW, gpuW] : pools) {
            serve::ClusterConfig cfg;
            cfg.msaWorkers = msaW;
            cfg.gpuWorkers = gpuW;
            const auto r = serve::simulateCluster(
                platform, core::Workspace::shared(), requests,
                cfg);
            const auto p = percentilesOf(r.completedLatencies());
            records.push(record(
                strformat("ServeCluster/pools:%ux%u", msaW, gpuW),
                r));
            t.addRow({strformat("%ux%u", msaW, gpuW),
                      strformat("%llu",
                                static_cast<unsigned long long>(
                                    r.completed)),
                      strformat("%llu",
                                static_cast<unsigned long long>(
                                    r.shed)),
                      bench::secs(p.p50), bench::secs(p.p95),
                      bench::pct(r.msaUtilization()),
                      bench::pct(r.gpuUtilization()),
                      strformat("%.1f", r.throughputPerHour())});
        }
        t.print();
    }

    // --- Sweep 2: MSA-cache budget at fixed 4x2 pools ------------
    double meanWithCache = 0.0, meanNoCache = 0.0;
    {
        TextTable t("MSA-cache sweep on Server (4 MSA x 2 GPU, "
                    "fifo)");
        t.setHeader({"Budget", "hit rate", "done", "mean lat (s)",
                     "p95 (s)", "req/h"});
        for (uint64_t mb : {0ull, 1ull, 64ull, 512ull}) {
            serve::ClusterConfig cfg;
            cfg.msaCacheBudgetBytes = mb << 20;
            const auto r = serve::simulateCluster(
                platform, core::Workspace::shared(), requests,
                cfg);
            const auto p = percentilesOf(r.completedLatencies());
            records.push(record(
                strformat("ServeCluster/cacheMiB:%llu",
                          static_cast<unsigned long long>(mb)),
                r));
            const double mean = meanOfLatencies(r);
            if (mb == 0)
                meanNoCache = mean;
            if (mb == 512)
                meanWithCache = mean;
            t.addRow({mb ? formatBytes(mb << 20) : "disabled",
                      bench::pct(r.cacheStats.hitRate()),
                      strformat("%llu",
                                static_cast<unsigned long long>(
                                    r.completed)),
                      bench::secs(mean), bench::secs(p.p95),
                      strformat("%.1f", r.throughputPerHour())});
        }
        t.print();
    }

    std::printf("Mean completed-request latency: %.1f s without "
                "the MSA cache vs %.1f s with 512 MiB (%.1fx)\n\n",
                meanNoCache, meanWithCache,
                meanWithCache > 0.0 ? meanNoCache / meanWithCache
                                    : 0.0);

    // --- Sweep 3: fault rate at fixed 4x2 pools ------------------
    // Crashes on both pools plus storage errors/spikes and cache
    // corruption, all scaled off one knob; shows goodput falling
    // away from throughput as degraded answers take over the tail.
    {
        serve::MsaServiceOracle oracle; // characterize samples once
        TextTable t("Fault sweep on Server (4 MSA x 2 GPU, "
                    "retry+degrade enabled)");
        t.setHeader({"fault prob", "done", "degr", "fail",
                     "faults", "retries", "respawns", "goodput/h",
                     "req/h", "p99 clean", "p99 all"});
        for (double prob : {0.0, 0.02, 0.05, 0.10}) {
            serve::ClusterConfig cfg;
            cfg.msaOracle = &oracle;
            auto &plan = cfg.faultPlan;
            plan.seed = static_cast<uint64_t>(
                args.getInt("fault-seed", 0xfa017));
            plan.msaCrashProb = prob;
            plan.gpuCrashProb = prob;
            plan.storageErrorProb = prob / 2.0;
            plan.storageSpikeProb = prob;
            plan.cacheCorruptProb = prob;
            plan.permanentProb =
                args.getDouble("fault-permanent", 0.1);
            cfg.recovery.maxAttemptsPerStage = static_cast<uint32_t>(
                args.getInt("retry-max", 3));
            const auto r = serve::simulateCluster(
                platform, core::Workspace::shared(), requests,
                cfg);
            const auto rep = serve::buildSloReport(r);
            records.push(
                record(strformat("ServeCluster/fault:%.2f", prob),
                       r));
            t.addRow(
                {strformat("%.2f", prob),
                 strformat("%llu", static_cast<unsigned long long>(
                                       r.completed)),
                 strformat("%llu", static_cast<unsigned long long>(
                                       r.degraded)),
                 strformat("%llu", static_cast<unsigned long long>(
                                       r.failed)),
                 strformat("%llu", static_cast<unsigned long long>(
                                       r.faultsInjected)),
                 strformat("%llu", static_cast<unsigned long long>(
                                       r.retries)),
                 strformat("%llu", static_cast<unsigned long long>(
                                       r.msaRespawns +
                                       r.gpuRespawns)),
                 strformat("%.1f", r.goodputPerHour()),
                 strformat("%.1f", r.throughputPerHour()),
                 bench::secs(rep.fault.p99CleanSeconds),
                 bench::secs(rep.fault.p99AllSeconds)});
        }
        t.print();
    }

    const std::string jsonPath = args.get("json");
    if (!jsonPath.empty()) {
        JsonValue doc = JsonValue::makeObject();
        doc["benchmarks"] = records;
        io::writeTextFile(jsonPath, doc.dumpPretty() + "\n");
        std::printf("Wrote %zu deterministic sweep records to %s\n",
                    records.size(), jsonPath.c_str());
    }
    return 0;
}
