/**
 * @file
 * Regenerates paper Table III: CPU performance metrics (IPC, cache
 * misses, L1/LLC/dTLB/branch miss rates) across samples and thread
 * counts on both CPU architectures, from the trace-driven
 * hierarchy simulation of the real MSA kernels.
 */

#include "bench_common.hh"
#include "core/msa_phase.hh"

using namespace afsb;

int
main()
{
    bench::banner(
        "Table III — CPU performance metrics",
        "Kim et al., IISWC 2025, Table III",
        "Intel: higher IPC, ~0.01% dTLB misses, high flat LLC miss "
        "rate. AMD: lower IPC, heavy dTLB misses (20-37%), LLC miss "
        "rate ~1% at 1T exploding past 4T (capacity slicing). "
        "promo shows higher IPC than 2PV7 on both.");

    const auto &ws = core::Workspace::shared();
    const uint32_t threadGrid[] = {1, 4, 6};

    for (const char *name : {"2PV7", "promo"}) {
        const auto sample = bio::makeSample(name);
        TextTable t(strformat("Table III (%s)", name));
        t.setHeader({"Metric", "Intel 1T", "Intel 4T", "Intel 6T",
                     "AMD 1T", "AMD 4T", "AMD 6T"});

        struct Cell
        {
            cachesim::FuncCounters c;
            double ipc = 0.0;
        };
        std::vector<Cell> cells;
        for (const auto &platform :
             {sys::serverPlatform(), sys::desktopPlatform()}) {
            for (uint32_t th : threadGrid) {
                core::MsaPhaseOptions opt;
                opt.threads = th;
                opt.traceStride = 8;
                const auto r = core::runMsaPhase(sample.complex,
                                                 platform, ws, opt);
                cells.push_back({r.totals, r.timing.effectiveIpc});
            }
        }

        auto row = [&](const std::string &metric,
                       auto &&extract) {
            std::vector<std::string> cols = {metric};
            for (const auto &cell : cells)
                cols.push_back(extract(cell));
            t.addRow(cols);
        };
        row("IPC", [](const Cell &c) {
            return strformat("%.2f", c.ipc);
        });
        row("Cache Miss (MPKI)", [](const Cell &c) {
            return strformat(
                "%.1f", 1000.0 * static_cast<double>(c.c.l1Misses) /
                            static_cast<double>(c.c.instructions));
        });
        row("L1 Miss (%)", [](const Cell &c) {
            return bench::pctv(100.0 * c.c.l1MissRate());
        });
        row("LLC Miss (%)", [](const Cell &c) {
            return bench::pctv(100.0 * c.c.llcMissRate());
        });
        row("dTLB Miss (%)", [](const Cell &c) {
            return bench::pctv(100.0 * c.c.tlbMissRate());
        });
        row("Branch Miss (%)", [](const Cell &c) {
            return bench::pctv(100.0 * c.c.branchMissRate());
        });
        t.print();
    }
    std::printf(
        "Note: LLC miss %% is local (misses / LLC lookups), like "
        "perf's LLC-load-misses ratio. dTLB %% is misses per data "
        "access; the paper's AMD counter reports misses per L2-dTLB "
        "lookup, so its absolute values run higher — the "
        "Intel-vs-AMD contrast (three orders of magnitude) is the "
        "reproduced shape.\n");
    return 0;
}
