/**
 * @file
 * Regenerates paper Fig 3: total AF3 execution time (stacked MSA +
 * inference) across the five samples, both platforms, and thread
 * counts — the headline end-to-end comparison.
 */

#include "bench_common.hh"
#include "core/pipeline.hh"

using namespace afsb;

int
main()
{
    bench::banner(
        "Fig 3 — End-to-end execution time (MSA + inference)",
        "Kim et al., IISWC 2025, Fig 3",
        "MSA dominates everywhere (70-94%); near-2x speedup to 2 "
        "threads then saturation; Desktop competitive with or ahead "
        "of Server; promo far slower than similar-length 1YY9");

    const auto &ws = core::Workspace::shared();
    const uint32_t threadGrid[] = {1, 2, 4, 8};

    for (const auto &platform :
         {sys::serverPlatform(), sys::desktopPlatform()}) {
        TextTable t(strformat("Fig 3 (%s): stacked seconds",
                              platform.name.c_str()));
        t.setHeader({"Sample", "Threads", "MSA (s)", "Inference (s)",
                     "Total (s)", "MSA share"});
        for (const auto &sample : bio::makeAllSamples()) {
            // 6QNR on stock Desktop OOMs (the paper upgraded the
            // DRAM); use the upgraded variant the paper used.
            const auto plat =
                sample.info.name == "6QNR" &&
                        platform.name == "Desktop"
                    ? sys::desktopPlatformUpgraded()
                    : platform;
            for (uint32_t threads : threadGrid) {
                core::PipelineOptions opt;
                opt.msaThreads = threads;
                opt.msa.traceStride = 16;
                const auto r = core::runPipeline(sample.complex,
                                                 plat, ws, opt);
                if (r.oom) {
                    t.addRow({sample.info.name,
                              strformat("%u", threads), "OOM", "-",
                              "-", "-"});
                    continue;
                }
                t.addRow({sample.info.name,
                          strformat("%u", threads),
                          bench::secs(r.msa.seconds),
                          bench::secs(r.inference.totalSeconds()),
                          bench::secs(r.totalSeconds()),
                          bench::pct(r.msaShare())});
            }
            t.addSeparator();
        }
        t.print();
    }
    return 0;
}
