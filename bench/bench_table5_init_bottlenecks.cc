/**
 * @file
 * Regenerates paper Table V: inference-initialization bottlenecks
 * on the Server (page faults in _M_fill_insert, dTLB misses in
 * ShapeUtil::ByteSizeOf, LLC misses in copy_to_iter).
 */

#include "bench_common.hh"
#include "bio/samples.hh"
#include "gpusim/init_profile.hh"

using namespace afsb;

int
main()
{
    bench::banner(
        "Table V — Inference initialization bottlenecks (Server)",
        "Kim et al., IISWC 2025, Table V",
        "_M_fill_insert page faults 12.99% (2PV7) / 16.83% (promo); "
        "ByteSizeOf dTLB 5.99% / 3.89%; copy_to_iter LLC 6.90% "
        "(2PV7) / 5.80% (6QNR)");

    const auto platform = sys::serverPlatform();

    TextTable t("TABLE V: init-phase event shares");
    t.setHeader({"Event Type", "Function/Symbol", "Sample",
                 "Overhead"});
    struct Row
    {
        const char *sample;
        size_t eventIndex;
    };
    const Row rows[] = {
        {"2PV7", 0},  {"promo", 0},  // page faults
        {"2PV7", 1},  {"promo", 1},  // dTLB
        {"2PV7", 2},  {"6QNR", 2},   // LLC
    };
    for (const auto &row : rows) {
        const auto sample = bio::makeSample(row.sample);
        const auto profile = gpusim::profileInitPhase(
            platform, sample.complex.totalResidues());
        const auto &line = profile[row.eventIndex];
        t.addRow({line.eventType, line.function, row.sample,
                  strformat("%.2f%%", line.overheadPct)});
    }
    t.print();
    return 0;
}
