/**
 * @file
 * Regenerates paper Table II: the input-sample suite, verified
 * against the synthesized complexes.
 */

#include "bench_common.hh"
#include "bio/complexity.hh"
#include "bio/input_spec.hh"
#include "bio/samples.hh"

using namespace afsb;

int
main()
{
    bench::banner(
        "Table II — Input Samples",
        "Kim et al., IISWC 2025, Table II",
        "five samples from 2PV7 (484 res, low) to 6QNR (1395 res, "
        "high chain count + RNA); promo carries a poly-Q repeat");

    TextTable t("TABLE II: Summary of Input Samples");
    t.setHeader({"Sample", "Structure", "Complexity", "Seq. Length",
                 "Low-cplx frac", "Benchmark Target"});
    for (const auto &sample : bio::makeAllSamples()) {
        const auto &c = sample.complex;
        t.addRow({sample.info.name, sample.info.structure,
                  sample.info.complexity,
                  strformat("%zu", c.totalResidues()),
                  strformat("%.3f",
                            bio::complexLowComplexityFraction(c)),
                  sample.info.target});
    }
    t.print();

    // Emit the AF3-format JSON for one sample as a format check.
    const auto promo = bio::makeSample("promo");
    std::printf("\nAF3 input JSON for promo (truncated):\n%.400s...\n",
                bio::toInputJson(promo.complex)
                    .dumpPretty()
                    .c_str());
    return 0;
}
