/**
 * @file
 * Regenerates paper Fig 6: inference-phase execution time across
 * thread configurations — the flat-scaling result.
 */

#include "bench_common.hh"
#include "bio/samples.hh"
#include "gpusim/inference_sim.hh"

using namespace afsb;

int
main()
{
    bench::banner(
        "Fig 6 — Inference thread scaling (1-6 threads)",
        "Kim et al., IISWC 2025, Fig 6",
        "minimal gains or slowdowns with threads on both platforms "
        "(kernel dispatch is a single host thread)");

    const uint32_t threads[] = {1, 2, 4, 6};
    const char *samples[] = {"2PV7", "7RCE", "1YY9", "promo"};

    for (const auto &platform :
         {sys::serverPlatform(), sys::desktopPlatform()}) {
        TextTable t(strformat(
            "Fig 6 (%s): inference seconds by host threads",
            platform.name.c_str()));
        std::vector<std::string> header = {"Sample"};
        for (uint32_t th : threads)
            header.push_back(strformat("%uT", th));
        header.push_back("6T/1T");
        t.setHeader(header);

        for (const char *name : samples) {
            const auto sample = bio::makeSample(name);
            std::vector<std::string> row = {name};
            double t1 = 0.0, t6 = 0.0;
            for (uint32_t th : threads) {
                gpusim::XlaCache cache;  // cold per request
                gpusim::InferenceSimOptions opt;
                opt.threads = th;
                const auto r = gpusim::simulateInference(
                    platform, sample.complex.totalResidues(), cache,
                    opt);
                row.push_back(bench::secs(r.totalSeconds()));
                if (th == 1)
                    t1 = r.totalSeconds();
                if (th == 6)
                    t6 = r.totalSeconds();
            }
            row.push_back(strformat("%.2fx", t1 / t6));
            t.addRow(row);
        }
        t.print();
    }
    return 0;
}
