/**
 * @file
 * Similarity-cache study: mutation-rate x Jaccard-threshold x
 * cache-budget sweeps over the serving MSA path. The workload
 * generator emits near-duplicate queries (per-residue point
 * mutations of a base population), which the exact content-addressed
 * cache always misses; the LSH-banded sketch index recovers them as
 * approximate hits and serves each as a delta re-search over the
 * cached survivor set.
 *
 * The headline comparison holds the near-duplicate workload fixed
 * (mutation <= 2%) and pits the exact-cache-only baseline
 * (sim-cache off, the pre-similarity simulator bit-for-bit) against
 * the approximate tier; the tier must strictly beat the baseline on
 * both MSA-phase p99 and goodput.
 *
 * --json <path> writes every sweep cell as a bench-JSON record
 * (virtual clock, seed-deterministic); the repo-root
 * BENCH_serving.json trend file carries these records and
 * tools/bench_check --trend --absolute gates them in CI.
 */

#include <algorithm>

#include "bench_common.hh"
#include "io/textfile.hh"
#include "serve/cluster.hh"
#include "serve/report.hh"
#include "util/cli.hh"
#include "util/json.hh"
#include "util/stats.hh"

using namespace afsb;

namespace {

serve::WorkloadSpec
workload(double mutation_rate)
{
    serve::WorkloadSpec spec;
    spec.requestsPerSecond = 0.05;
    spec.durationSeconds = 3600.0;
    spec.seed = 0x51a7c4;
    spec.mix = serve::parseMix("2PV7=2,7RCE=1");
    // Small base population, so near-duplicates recur often enough
    // for the sketch index to have something to match against.
    spec.variantsPerSample = 1;
    spec.mutationRate = mutation_rate;
    spec.sketchQueries = true;
    return spec;
}

/** p99 of the MSA phase (arrival -> MSA result) over completed
 *  requests — the latency slice the similarity tier works on. */
double
msaPhaseP99(const serve::ClusterResult &r)
{
    std::vector<double> v;
    for (const auto &rec : r.records)
        if (rec.outcome == serve::Outcome::Completed)
            v.push_back(rec.msaEndSeconds -
                        rec.request.arrivalSeconds);
    return percentilesOf(v).p99;
}

JsonValue
record(const std::string &name, const serve::ClusterResult &r)
{
    const auto p = percentilesOf(r.completedLatencies());
    JsonValue rec = JsonValue::makeObject();
    rec["name"] = name;
    rec["iterations"] = static_cast<int64_t>(1);
    rec["ns_per_op"] = p.p99 * 1e9;
    JsonValue counters = JsonValue::makeObject();
    counters["completed"] = r.completed;
    counters["shed"] = r.shed;
    counters["p50_s"] = p.p50;
    counters["p99_s"] = p.p99;
    counters["msa_p99_s"] = msaPhaseP99(r);
    counters["goodput_per_h"] = r.goodputPerHour();
    counters["cache_hit_rate"] = r.cacheStats.hitRate();
    counters["approx_hits"] = r.approxHits;
    counters["delta_fallbacks"] = r.deltaFallbacks;
    counters["delta_saved_s"] = r.deltaSecondsSaved;
    rec["counters"] = counters;
    return rec;
}

struct Cell
{
    serve::ClusterResult result;
    double p99 = 0.0;
    double msaP99 = 0.0;
    double goodput = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    bench::banner(
        "Similarity-keyed approximate MSA reuse",
        "Kim et al., IISWC 2025, Section VI (deployment "
        "optimizations)",
        "Near-duplicate traffic misses the exact cache; the MinHash/"
        "LSH tier recovers it as delta re-searches over cached "
        "survivor sets");

    const auto platform = sys::serverPlatform();
    serve::MsaServiceOracle oracle; // characterize samples once

    // MSA-bound cluster, no admission shedding: every offered
    // request completes, so exact-vs-approximate compares identical
    // completion sets (shedding would let the slower baseline drop
    // its worst requests and fake a better tail).
    const auto runCell = [&](double mutation, double threshold,
                             uint64_t cacheBudget) {
        serve::ClusterConfig cfg;
        cfg.msaOracle = &oracle;
        cfg.msaWorkers = 2;
        cfg.gpuWorkers = 2;
        cfg.admissionCapacity = 100000;
        cfg.msaCacheBudgetBytes = cacheBudget;
        cfg.simCacheThreshold = threshold;
        Cell cell;
        cell.result = serve::simulateCluster(
            platform, core::Workspace::shared(),
            serve::generateRequests(workload(mutation)), cfg);
        cell.p99 =
            percentilesOf(cell.result.completedLatencies()).p99;
        cell.msaP99 = msaPhaseP99(cell.result);
        cell.goodput = cell.result.goodputPerHour();
        return cell;
    };

    JsonValue records = JsonValue::makeArray();
    bool headline = false;
    constexpr uint64_t kAmpleCache = 512ull << 20;

    // --- Sweep 1: mutation rate, exact baseline vs sim tier -------
    {
        TextTable t("Mutation-rate sweep on Server (2 MSA x 2 GPU, "
                    "threshold 0.6)");
        t.setHeader({"mutation", "tier", "done", "exact hits",
                     "approx", "fallback", "msa p99 (s)", "p99 (s)",
                     "goodput/h", "saved (s)"});
        for (double mut : {0.005, 0.01, 0.02}) {
            Cell exact; // threshold 0 = similarity tier off
            for (double thr : {0.0, 0.6}) {
                const auto cell = runCell(mut, thr, kAmpleCache);
                const auto &r = cell.result;
                if (thr == 0.0) {
                    exact = cell;
                } else if (cell.msaP99 < exact.msaP99 &&
                           cell.goodput > exact.goodput) {
                    headline = true;
                }
                records.push(record(
                    strformat("ServeSimCache/mut:%.3f/thr:%.1f",
                              mut, thr),
                    r));
                t.addRow(
                    {bench::pct(mut),
                     thr == 0.0 ? "exact" : "approx",
                     strformat("%llu",
                               static_cast<unsigned long long>(
                                   r.completed)),
                     strformat("%llu",
                               static_cast<unsigned long long>(
                                   r.cacheStats.hits)),
                     strformat("%llu",
                               static_cast<unsigned long long>(
                                   r.approxHits)),
                     strformat("%llu",
                               static_cast<unsigned long long>(
                                   r.deltaFallbacks)),
                     bench::secs(cell.msaP99),
                     bench::secs(cell.p99),
                     strformat("%.1f", cell.goodput),
                     strformat("%.0f", r.deltaSecondsSaved)});
            }
        }
        t.print();
    }

    // --- Sweep 2: acceptance threshold at 2% mutation -------------
    // Permissive thresholds accept distant candidates whose deltas
    // flunk the retention check (paid fallbacks); strict thresholds
    // forfeit recoverable hits back to full scans.
    {
        TextTable t("Threshold sweep on Server (2% mutation)");
        t.setHeader({"threshold", "approx", "fallback", "probe acc",
                     "msa p99 (s)", "goodput/h", "saved (s)"});
        for (double thr : {0.3, 0.6, 0.9}) {
            const auto cell = runCell(0.02, thr, kAmpleCache);
            const auto &r = cell.result;
            records.push(record(
                strformat("ServeSimCache/thr:%.1f/mut:0.020", thr),
                r));
            t.addRow(
                {strformat("%.1f", thr),
                 strformat("%llu", static_cast<unsigned long long>(
                                       r.approxHits)),
                 strformat("%llu", static_cast<unsigned long long>(
                                       r.deltaFallbacks)),
                 bench::pct(r.cacheStats.approxHitRate()),
                 bench::secs(cell.msaP99),
                 strformat("%.1f", cell.goodput),
                 strformat("%.0f", r.deltaSecondsSaved)});
        }
        t.print();
    }

    // --- Sweep 3: cache byte budget at 1% mutation ----------------
    // Evicted entries drop their sketches with them, so a starved
    // budget shrinks the LSH index and the approximate hit rate.
    {
        TextTable t("Cache-budget sweep on Server (1% mutation, "
                    "threshold 0.6)");
        t.setHeader({"budget", "inserted", "evictions", "approx",
                     "msa p99 (s)", "goodput/h"});
        for (uint64_t budget :
             {24ull << 10, 64ull << 10, 512ull << 20}) {
            const auto cell = runCell(0.01, 0.6, budget);
            const auto &r = cell.result;
            records.push(record(
                strformat("ServeSimCache/budget_kb:%llu",
                          static_cast<unsigned long long>(budget >>
                                                          10)),
                r));
            t.addRow(
                {formatBytes(budget),
                 strformat("%llu", static_cast<unsigned long long>(
                                       r.cacheStats.insertions)),
                 strformat("%llu", static_cast<unsigned long long>(
                                       r.cacheStats.evictions)),
                 strformat("%llu", static_cast<unsigned long long>(
                                       r.approxHits)),
                 bench::secs(cell.msaP99),
                 strformat("%.1f", cell.goodput)});
        }
        t.print();
    }

    std::printf("Headline (approximate tier beats exact-only on "
                "both MSA-phase p99 and goodput under <= 2%% "
                "mutation): %s\n\n",
                headline ? "yes" : "NO");

    const std::string jsonPath = args.get("json");
    if (!jsonPath.empty()) {
        JsonValue doc = JsonValue::makeObject();
        doc["benchmarks"] = records;
        io::writeTextFile(jsonPath, doc.dumpPretty() + "\n");
        std::printf("Wrote %zu deterministic sweep records to %s\n",
                    records.size(), jsonPath.c_str());
    }
    return headline ? 0 : 1;
}
