/**
 * @file
 * Multi-node serving study: node-count scaling, interconnect
 * sensitivity, and whole-node-failure resilience over the modeled
 * fabric (src/net). The single-host paper setup is the nodes=1
 * column; every other column pays routed-request, cache-shard, and
 * response traffic through the interconnect, so communication share
 * becomes a first-class measurable next to MSA/GPU utilization.
 *
 * Everything here runs on the virtual clock, so every number is
 * seed-deterministic and diffable across machines.
 *
 * Usage:
 *   bench_multinode_scaling [--json <path>] [--comm-trace <path>]
 *
 *   --json        bench-JSON records (tools/bench_check --absolute)
 *   --comm-trace  write the 4-node datacenter run's communication
 *                 trace (CI uploads this as an artifact)
 */

#include "bench_common.hh"
#include "io/textfile.hh"
#include "net/topology.hh"
#include "serve/cluster.hh"
#include "serve/report.hh"
#include "util/cli.hh"
#include "util/json.hh"
#include "util/stats.hh"
#include "util/units.hh"

using namespace afsb;

namespace {

serve::WorkloadSpec
workload()
{
    serve::WorkloadSpec spec;
    spec.requestsPerSecond = 0.08; // enough offered load for 8 nodes
    spec.durationSeconds = 3600.0;
    spec.seed = 0xd15c0;
    spec.mix = serve::parseMix("2PV7=2,7RCE=1");
    spec.variantsPerSample = 2; // repeats exercise the cache shards
    return spec;
}

double
meanLatency(const serve::ClusterResult &r)
{
    const auto xs = r.completedLatencies();
    return xs.empty() ? 0.0 : meanOf(xs);
}

JsonValue
record(const std::string &name, const serve::ClusterResult &r)
{
    const auto p = percentilesOf(r.completedLatencies());
    JsonValue rec = JsonValue::makeObject();
    rec["name"] = name;
    rec["iterations"] = static_cast<int64_t>(1);
    rec["ns_per_op"] = meanLatency(r) * 1e9;
    JsonValue counters = JsonValue::makeObject();
    counters["completed"] = r.completed;
    counters["shed"] = r.shed;
    counters["p99_s"] = p.p99;
    counters["comm_messages"] = r.comm.messages;
    counters["comm_bytes"] = r.comm.bytes;
    counters["comm_seconds"] = r.comm.commSeconds();
    counters["rerouted"] = r.rerouted;
    counters["remote_cache_hits"] = r.remoteCacheHits;
    counters["req_per_h"] = r.throughputPerHour();
    rec["counters"] = counters;
    return rec;
}

/** comm / (comm + compute busy): the CCL-Bench-style overhead view. */
double
commShare(const serve::ClusterResult &r)
{
    const double comm = r.comm.commSeconds();
    const double busy = r.msaBusySeconds + r.gpuBusySeconds;
    return comm + busy > 0.0 ? comm / (comm + busy) : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    bench::banner(
        "Multi-node serving — topology scaling over the modeled "
        "fabric",
        "Kim et al., IISWC 2025, Section VI — extended to a "
        "sharded multi-node deployment",
        "Router + per-node MSA/GPU pools; MSA-cache shards owned "
        "by contentHash %% nodes; every cross-node byte pays "
        "modeled serialization, latency, and bandwidth");

    const auto platform = sys::serverPlatform();
    const auto requests = serve::generateRequests(workload());
    serve::MsaServiceOracle oracle; // characterize samples once
    std::printf("Workload: %zu requests over %.0f s "
                "(2PV7=2,7RCE=1; 2 variants/sample; seed 0x%llx)\n\n",
                requests.size(), workload().durationSeconds,
                static_cast<unsigned long long>(workload().seed));

    JsonValue records = JsonValue::makeArray();
    std::string commTraceOut;

    // --- Sweep 1: node count on datacenter links -----------------
    {
        TextTable t("Node-count sweep (2 MSA x 1 GPU per node, "
                    "100 Gb/s / 5 us links)");
        t.setHeader({"nodes", "done", "shed", "p50 (s)", "p99 (s)",
                     "req/h", "comm", "comm %", "remote hits"});
        for (uint32_t nodes : {1u, 2u, 4u, 8u}) {
            serve::ClusterConfig cfg;
            cfg.msaOracle = &oracle;
            cfg.msaWorkers = 2;
            cfg.gpuWorkers = 1;
            cfg.topology = net::datacenterTopology(nodes);
            const auto r = serve::simulateCluster(
                platform, core::Workspace::shared(), requests,
                cfg);
            if (nodes == 4)
                commTraceOut = r.commTrace;
            const auto p = percentilesOf(r.completedLatencies());
            records.push(record(
                strformat("MultiNode/nodes:%u", nodes), r));
            t.addRow({strformat("%u", nodes),
                      strformat("%llu",
                                static_cast<unsigned long long>(
                                    r.completed)),
                      strformat("%llu",
                                static_cast<unsigned long long>(
                                    r.shed)),
                      bench::secs(p.p50), bench::secs(p.p99),
                      strformat("%.1f", r.throughputPerHour()),
                      formatBytes(r.comm.bytes),
                      strformat("%.4f%%", 100.0 * commShare(r)),
                      strformat("%llu",
                                static_cast<unsigned long long>(
                                    r.remoteCacheHits))});
        }
        t.print();
    }

    // --- Sweep 2: link sensitivity at 4 nodes --------------------
    {
        TextTable t("Interconnect sweep at 4 nodes (2 MSA x 1 GPU "
                    "per node)");
        t.setHeader({"fabric", "p50 (s)", "p99 (s)", "comm",
                     "comm s", "comm %", "req/h"});
        struct Fabric
        {
            const char *label;
            net::TopologyConfig topo;
        };
        net::TopologyConfig slow = net::commodityTopology(4);
        slow.name = "congested";
        slow.link.bandwidthBytesPerSec = 0.125e9; // 1 Gb/s
        slow.link.latencySeconds = 200e-6;
        slow.link.serializeBytesPerSec = 2e9;
        const Fabric fabrics[] = {
            {"zero-cost", net::zeroCostTopology(4)},
            {"datacenter", net::datacenterTopology(4)},
            {"commodity", net::commodityTopology(4)},
            {"congested", slow},
        };
        for (const auto &f : fabrics) {
            serve::ClusterConfig cfg;
            cfg.msaOracle = &oracle;
            cfg.msaWorkers = 2;
            cfg.gpuWorkers = 1;
            cfg.topology = f.topo;
            const auto r = serve::simulateCluster(
                platform, core::Workspace::shared(), requests,
                cfg);
            const auto p = percentilesOf(r.completedLatencies());
            records.push(record(
                strformat("MultiNode/link:%s", f.label), r));
            t.addRow({f.label, bench::secs(p.p50),
                      bench::secs(p.p99),
                      formatBytes(r.comm.bytes),
                      strformat("%.3f", r.comm.commSeconds()),
                      strformat("%.4f%%", 100.0 * commShare(r)),
                      strformat("%.1f", r.throughputPerHour())});
        }
        t.print();
    }

    // --- Sweep 3: whole-node failure at 4 nodes ------------------
    // Kill node 1 a quarter into the run; with and without rebuild.
    // Conservation (admitted == completed + degraded + failed) must
    // hold through the kill — the router refuses to lose requests.
    {
        TextTable t("Node-failure resilience at 4 nodes "
                    "(kill node 1 at t=900 s)");
        t.setHeader({"rebuild", "done", "degr", "fail", "rerouted",
                     "kills", "respawned", "p99 (s)", "conserved"});
        for (double rebuild : {-1.0, 300.0}) {
            serve::ClusterConfig cfg;
            cfg.msaOracle = &oracle;
            cfg.msaWorkers = 2;
            cfg.gpuWorkers = 1;
            cfg.topology = net::datacenterTopology(4);
            fault::NodeKill kill;
            kill.atSeconds = 900.0;
            kill.node = 1;
            kill.rebuildSeconds = rebuild;
            cfg.faultPlan.seed = 0xfa11;
            cfg.faultPlan.nodeKills.push_back(kill);
            const auto r = serve::simulateCluster(
                platform, core::Workspace::shared(), requests,
                cfg);
            const auto p = percentilesOf(r.completedLatencies());
            const bool conserved =
                r.offered ==
                r.completed + r.degraded + r.failed + r.shed;
            records.push(record(
                strformat("MultiNode/kill-rebuild:%s",
                          rebuild < 0.0 ? "never" : "300s"),
                r));
            t.addRow({rebuild < 0.0 ? "never" : "300 s",
                      strformat("%llu",
                                static_cast<unsigned long long>(
                                    r.completed)),
                      strformat("%llu",
                                static_cast<unsigned long long>(
                                    r.degraded)),
                      strformat("%llu",
                                static_cast<unsigned long long>(
                                    r.failed)),
                      strformat("%llu",
                                static_cast<unsigned long long>(
                                    r.rerouted)),
                      strformat("%llu",
                                static_cast<unsigned long long>(
                                    r.nodeKills)),
                      strformat("%llu",
                                static_cast<unsigned long long>(
                                    r.nodeRebuilds)),
                      bench::secs(p.p99),
                      conserved ? "yes" : "NO"});
            if (!conserved) {
                std::fprintf(stderr,
                             "bench_multinode_scaling: request "
                             "conservation violated after node "
                             "kill\n");
                return 1;
            }
        }
        t.print();
    }

    const std::string tracePath = args.get("comm-trace");
    if (!tracePath.empty()) {
        io::writeTextFile(tracePath, commTraceOut);
        std::printf("Wrote 4-node comm trace to %s\n",
                    tracePath.c_str());
    }
    const std::string jsonPath = args.get("json");
    if (!jsonPath.empty()) {
        JsonValue doc = JsonValue::makeObject();
        doc["benchmarks"] = records;
        io::writeTextFile(jsonPath, doc.dumpPretty() + "\n");
        std::printf("Wrote %zu deterministic sweep records to %s\n",
                    records.size(), jsonPath.c_str());
    }
    return 0;
}
