/**
 * @file
 * Regenerates paper Table I: system hardware configurations.
 */

#include "bench_common.hh"
#include "sys/platform.hh"

using namespace afsb;

int
main()
{
    bench::banner("Table I — System Hardware Configurations",
                  "Kim et al., IISWC 2025, Table I",
                  "Server = Xeon 5416S + H100 80GB + 512 GiB; "
                  "Desktop = Ryzen 7900X + RTX 4080 16GB + 64 GiB");

    const auto server = sys::serverPlatform();
    const auto desktop = sys::desktopPlatform();

    TextTable t("TABLE I: System Hardware Configurations");
    t.setHeader({"Configuration", "Server", "Desktop"});
    auto row = [&](const std::string &name, const std::string &s,
                   const std::string &d) {
        t.addRow({name, s, d});
    };
    row("CPU", server.cpu.name, desktop.cpu.name);
    row("Core/Thread",
        strformat("%u/%u", server.cpu.cores, server.cpu.threads),
        strformat("%u/%u", desktop.cpu.cores, desktop.cpu.threads));
    row("Base Clock", strformat("%.1fGHz", server.cpu.baseClockGhz),
        strformat("%.1fGHz", desktop.cpu.baseClockGhz));
    row("Max Clock", strformat("%.1fGHz", server.cpu.maxClockGhz),
        strformat("%.1fGHz", desktop.cpu.maxClockGhz));
    row("L1/L2 Cache",
        strformat("%s/%s per core",
                  formatBytes(server.cpu.l1d.size).c_str(),
                  formatBytes(server.cpu.l2.size).c_str()),
        strformat("%s/%s per core",
                  formatBytes(desktop.cpu.l1d.size).c_str(),
                  formatBytes(desktop.cpu.l2.size).c_str()));
    row("Last Level Cache",
        formatBytes(server.cpu.llc.size) + " shared",
        formatBytes(desktop.cpu.llc.size) + " shared");
    row("Memory Size", formatBytes(server.memory.dramBytes),
        formatBytes(desktop.memory.dramBytes));
    row("Mem. Expander",
        formatBytes(sys::serverPlatformWithCxl().memory.cxlBytes) +
            " CXL (optional)",
        "-");
    row("GPU", server.gpu.name, desktop.gpu.name);
    row("Storage", server.storage.name, desktop.storage.name);
    t.print();
    return 0;
}
