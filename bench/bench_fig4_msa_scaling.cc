/**
 * @file
 * Regenerates paper Fig 4: MSA execution time across 1-8 threads
 * for four samples on both platforms — and measures the native
 * wall-clock scan the modeled numbers are extrapolated from, with
 * the overlapped staged pipeline on and off, so the thread sweep
 * can attribute where scaling saturates (prefilter starvation,
 * survivor-queue backpressure, or the I/O stage).
 *
 * Flags:
 *   --json <path>   write the native scan sweep as JSON (same shape
 *                   as bench_kernels --json, for tools/bench_check)
 *   --scan-only     skip the modeled Fig 4 tables (CI perf-smoke)
 */

#include <chrono>
#include <cstring>
#include <fstream>
#include <functional>

#include "bench_common.hh"
#include "bio/seqgen.hh"
#include "core/msa_phase.hh"
#include "msa/dbgen.hh"
#include "msa/search.hh"
#include "util/json.hh"
#include "util/stats.hh"

using namespace afsb;

namespace {

/** One measured configuration of the native scan sweep. */
struct ScanPoint
{
    size_t threads = 1;
    bool overlap = false;
    double medianSeconds = 0.0;
    msa::SearchResult result;  ///< from the last repetition
};

double
wallSeconds(const std::function<void()> &fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    return dt.count();
}

/** Exact hit-set equality (scores included). */
bool
sameHits(const msa::SearchResult &a, const msa::SearchResult &b)
{
    if (a.hits.size() != b.hits.size())
        return false;
    for (size_t i = 0; i < a.hits.size(); ++i)
        if (a.hits[i].targetIndex != b.hits[i].targetIndex ||
            a.hits[i].viterbiScore != b.hits[i].viterbiScore ||
            a.hits[i].forwardLogOdds != b.hits[i].forwardLogOdds)
            return false;
    return a.msvSurvivors == b.msvSurvivors;
}

/**
 * Native wall-clock sweep: a low-complexity query (the paper's
 * Observation 2 skew) against a generated protein DB, overlap
 * on/off at each thread count, cold page cache every run.
 */
int
runNativeScanSweep(const std::string &json_path)
{
    bio::SequenceGenerator gen(20250807);
    const auto query = gen.withHomopolymer("polyQ", 240, 64, 'Q');

    io::Vfs vfs;
    io::StorageDevice dev;
    io::PageCache cache(4 * GiB, &dev);
    msa::DbGenConfig dcfg;
    dcfg.decoyCount = 6000;
    dcfg.homologsPerQuery = 24;
    dcfg.fragmentsPerQuery = 16;
    dcfg.lowComplexityFraction = 0.25;
    const std::vector<const bio::Sequence *> queries = {&query};
    msa::generateDatabase(vfs, "sweep.fasta", queries,
                          bio::MoleculeType::Protein, dcfg);
    const auto db = msa::SequenceDatabase::load(
        vfs, cache, "sweep.fasta", bio::MoleculeType::Protein, 0.0);
    const auto prof = msa::ProfileHmm::fromSequence(
        query, msa::ScoreMatrix::blosum62());

    constexpr int kReps = 5;
    const std::vector<size_t> threadCounts = {1, 2, 4, 8};
    std::vector<ScanPoint> points;
    for (size_t th : threadCounts) {
        ThreadPool pool(th);
        for (bool overlap : {false, true}) {
            ScanPoint pt;
            pt.threads = th;
            pt.overlap = overlap;
            std::vector<double> reps;
            for (int r = 0; r < kReps; ++r) {
                cache.dropAll();  // cold page cache each run
                msa::SearchConfig cfg;
                cfg.threads = th;
                cfg.overlap = overlap;
                reps.push_back(wallSeconds([&] {
                    pt.result = msa::searchDatabase(prof, db, cache,
                                                    &pool, cfg);
                }));
            }
            pt.medianSeconds = medianOf(reps);
            points.push_back(std::move(pt));
        }
    }

    // Every configuration must produce the same hit set.
    bool identical = true;
    for (size_t i = 1; i < points.size(); ++i)
        identical &= sameHits(points[0].result, points[i].result);

    TextTable t("Native scan wall clock (cold cache, median of 5)");
    t.setHeader({"Threads", "static ms", "overlap ms", "overlap x",
                 "occupancy", "surv inline", "queue peak"});
    JsonValue records = JsonValue::makeArray();
    for (size_t i = 0; i + 1 < points.size(); i += 2) {
        const ScanPoint &off = points[i];
        const ScanPoint &on = points[i + 1];
        const auto &st = on.result.stats.stages;
        t.addRow({strformat("%zu", off.threads),
                  strformat("%.2f", off.medianSeconds * 1e3),
                  strformat("%.2f", on.medianSeconds * 1e3),
                  strformat("%.2fx",
                            off.medianSeconds /
                                std::max(1e-12, on.medianSeconds)),
                  strformat("%.2f", st.occupancy()),
                  strformat("%llu", static_cast<unsigned long long>(
                                        st.survivorsInline)),
                  strformat("%llu", static_cast<unsigned long long>(
                                        st.survivorQueuePeak))});
        for (const ScanPoint *p : {&off, &on}) {
            JsonValue rec = JsonValue::makeObject();
            rec["name"] = strformat("MsaScan/threads:%zu/overlap:%s",
                                    p->threads,
                                    p->overlap ? "on" : "off");
            rec["iterations"] = static_cast<int64_t>(kReps);
            rec["ns_per_op"] = p->medianSeconds * 1e9;
            JsonValue counters = JsonValue::makeObject();
            counters["hits"] =
                static_cast<double>(p->result.stats.hits);
            counters["msv_passed"] =
                static_cast<double>(p->result.stats.msvPassed);
            counters["bytes_streamed"] =
                static_cast<double>(p->result.stats.bytesStreamed);
            const auto &ps = p->result.stats.stages;
            counters["occupancy"] = ps.occupancy();
            counters["chunks"] = static_cast<double>(ps.chunks);
            counters["survivors_inline"] =
                static_cast<double>(ps.survivorsInline);
            counters["survivor_queue_peak"] =
                static_cast<double>(ps.survivorQueuePeak);
            counters["producer_waits"] =
                static_cast<double>(ps.producerWaits);
            counters["chunk_waits"] =
                static_cast<double>(ps.chunkWaits);
            rec["counters"] = counters;
            records.push(std::move(rec));
        }
    }
    t.print();
    std::printf("Hit sets across all configurations: %s\n\n",
                identical ? "IDENTICAL" : "DIVERGED");

    if (!json_path.empty()) {
        JsonValue doc = JsonValue::makeObject();
        doc["benchmarks"] = records;
        std::ofstream out(json_path);
        if (!out) {
            std::fprintf(stderr, "bench_fig4: cannot write %s\n",
                         json_path.c_str());
            return 1;
        }
        out << doc.dumpPretty() << "\n";
    }
    return identical ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string jsonPath;
    bool scanOnly = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            jsonPath = argv[++i];
        else if (std::strcmp(argv[i], "--scan-only") == 0)
            scanOnly = true;
        else {
            std::fprintf(stderr,
                         "usage: %s [--json <path>] [--scan-only]\n",
                         argv[0]);
            return 1;
        }
    }

    bench::banner(
        "Fig 4 — MSA thread scaling (1-8 threads)",
        "Kim et al., IISWC 2025, Fig 4",
        "near-ideal 2x from 1->2T; gains diminish beyond 4T; small "
        "samples (2PV7, 7RCE) degrade past 4-6T while larger ones "
        "(1YY9, promo) still benefit at 6-8T");

    if (!scanOnly) {
        const auto &ws = core::Workspace::shared();
        const std::vector<uint32_t> threads = {1, 2, 4, 6, 8};
        const char *samples[] = {"2PV7", "7RCE", "1YY9", "promo"};

        for (const auto &platform :
             {sys::serverPlatform(), sys::desktopPlatform()}) {
            TextTable t(strformat(
                "Fig 4 (%s): MSA seconds by threads",
                platform.name.c_str()));
            std::vector<std::string> header = {"Sample"};
            for (uint32_t th : threads)
                header.push_back(strformat("%uT", th));
            header.push_back("best T");
            t.setHeader(header);

            for (const char *name : samples) {
                const auto sample = bio::makeSample(name);
                std::vector<std::string> row = {name};
                std::vector<double> times;
                for (uint32_t th : threads) {
                    core::MsaPhaseOptions opt;
                    opt.threads = th;
                    opt.traceStride = 16;
                    const auto r = core::runMsaPhase(
                        sample.complex, platform, ws, opt);
                    times.push_back(r.seconds);
                    row.push_back(bench::secs(r.seconds));
                }
                size_t best = 0;
                for (size_t i = 1; i < times.size(); ++i)
                    if (times[i] < times[best])
                        best = i;
                row.push_back(strformat("%u", threads[best]));
                t.addRow(row);
            }
            t.print();
        }
    }

    return runNativeScanSweep(jsonPath);
}
