/**
 * @file
 * Regenerates paper Fig 4: MSA execution time across 1-8 threads
 * for four samples on both platforms.
 */

#include "bench_common.hh"
#include "core/msa_phase.hh"
#include "util/stats.hh"

using namespace afsb;

int
main()
{
    bench::banner(
        "Fig 4 — MSA thread scaling (1-8 threads)",
        "Kim et al., IISWC 2025, Fig 4",
        "near-ideal 2x from 1->2T; gains diminish beyond 4T; small "
        "samples (2PV7, 7RCE) degrade past 4-6T while larger ones "
        "(1YY9, promo) still benefit at 6-8T");

    const auto &ws = core::Workspace::shared();
    const std::vector<uint32_t> threads = {1, 2, 4, 6, 8};
    const char *samples[] = {"2PV7", "7RCE", "1YY9", "promo"};

    for (const auto &platform :
         {sys::serverPlatform(), sys::desktopPlatform()}) {
        TextTable t(strformat("Fig 4 (%s): MSA seconds by threads",
                              platform.name.c_str()));
        std::vector<std::string> header = {"Sample"};
        for (uint32_t th : threads)
            header.push_back(strformat("%uT", th));
        header.push_back("best T");
        t.setHeader(header);

        for (const char *name : samples) {
            const auto sample = bio::makeSample(name);
            std::vector<std::string> row = {name};
            std::vector<double> times;
            for (uint32_t th : threads) {
                core::MsaPhaseOptions opt;
                opt.threads = th;
                opt.traceStride = 16;
                const auto r = core::runMsaPhase(
                    sample.complex, platform, ws, opt);
                times.push_back(r.seconds);
                row.push_back(bench::secs(r.seconds));
            }
            size_t best = 0;
            for (size_t i = 1; i < times.size(); ++i)
                if (times[i] < times[best])
                    best = i;
            row.push_back(strformat("%u", threads[best]));
            t.addRow(row);
        }
        t.print();
    }
    return 0;
}
