/**
 * @file
 * Platform matrix: every platform the suite knows — the paper's two
 * (Server, Desktop) plus the three shipped config files (RISC-V
 * vector server, CXL-tiered host, small-VRAM GPU) — against the
 * Fig 4 sample set (MSA + inference) and the Fig 2 RNA length sweep
 * (inference + nhmmer memory placement). One run answers "how does
 * the characterization generalize beyond Table I": where the
 * MSA/inference balance flips, which platforms spill VRAM and at
 * what batch size, and how the operator graph's roofline moves.
 *
 * Everything here runs on the virtual clock / analytic models, so
 * the JSON is machine-independent and CI gates it with
 * `bench_check --trend --absolute` against BENCH_platforms.json.
 *
 * Flags:
 *   --json <path>   write rows as JSON (same shape as
 *                   bench_kernels --json, for tools/bench_check)
 */

#include <cstring>
#include <fstream>
#include <vector>

#include "bench_common.hh"
#include "bio/samples.hh"
#include "bio/seqgen.hh"
#include "core/msa_phase.hh"
#include "gpusim/inference_sim.hh"
#include "msa/memory_model.hh"
#include "opgraph/build.hh"
#include "sys/platform_config.hh"
#include "util/json.hh"

#ifndef AFSB_REPO_ROOT
#error "AFSB_REPO_ROOT must point at the repository checkout"
#endif

using namespace afsb;

namespace {

/** The five platforms of the matrix, config files resolved against
 *  the checkout so the bench runs from any directory. */
std::vector<sys::PlatformSpec>
matrixPlatforms()
{
    const std::string root = AFSB_REPO_ROOT;
    return {
        sys::serverPlatform(),
        sys::desktopPlatform(),
        sys::resolvePlatform(root +
                             "/configs/platforms/riscv-cpu.json"),
        sys::resolvePlatform(root +
                             "/configs/platforms/cxl-tiered.json"),
        sys::resolvePlatform(root +
                             "/configs/platforms/small-vram.json"),
    };
}

/** One inference characterization row (virtual clock). */
JsonValue
inferenceRecord(const std::string &name,
                const sys::PlatformSpec &platform, size_t tokens)
{
    gpusim::InferenceSimOptions opt;
    opt.unifiedMemory = true;  // characterize spill, not OOM
    gpusim::XlaCache cache;
    const auto r =
        gpusim::simulateInference(platform, tokens, cache, opt);
    const auto graph =
        opgraph::buildInferenceGraph(tokens, opt.config);

    JsonValue rec = JsonValue::makeObject();
    rec["name"] = name;
    rec["iterations"] = static_cast<int64_t>(1);
    rec["ns_per_op"] = r.totalSeconds() * 1e9;
    JsonValue counters = JsonValue::makeObject();
    counters["tokens"] = static_cast<double>(tokens);
    counters["flops"] = graph.totalFlops();
    counters["traffic_bytes"] = graph.totalTrafficBytes();
    counters["kernels"] = static_cast<double>(graph.totalKernels());
    counters["init_s"] = r.initSeconds;
    counters["compile_s"] = r.compileSeconds;
    counters["gpu_compute_s"] = r.gpuComputeSeconds;
    counters["finalize_s"] = r.finalizeSeconds;
    counters["unified_memory"] = r.usedUnifiedMemory ? 1.0 : 0.0;
    counters["max_batch_vram"] = static_cast<double>(
        gpusim::maxBatchForVram(platform, tokens, opt.config));
    rec["counters"] = counters;
    return rec;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string jsonPath;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            jsonPath = argv[++i];
        else {
            std::fprintf(stderr, "usage: %s [--json <path>]\n",
                         argv[0]);
            return 1;
        }
    }

    bench::banner(
        "Platform matrix — five platforms x Fig 2/Fig 4 workloads",
        "Kim et al., IISWC 2025, Tables I/II generalized",
        "Server amortizes MSA, Desktop is GPU-compute-bound, "
        "RISC-V is compute-starved on inference, CXL-tiered "
        "absorbs the Fig 2 RNA footprints, small-VRAM spills to "
        "unified memory and splits batches");

    const auto &ws = core::Workspace::shared();
    const char *samples[] = {"2PV7", "7RCE", "1YY9", "promo"};
    const size_t rnaLengths[] = {621, 935, 1335};
    JsonValue records = JsonValue::makeArray();

    for (const auto &platform : matrixPlatforms()) {
        TextTable t(strformat("%s: Fig 4 samples",
                              platform.name.c_str()));
        t.setHeader({"Sample", "MSA (s)", "Inference (s)",
                     "MSA share", "spill", "max batch"});

        for (const char *name : samples) {
            const auto sample = bio::makeSample(name);
            core::MsaPhaseOptions mopt;
            mopt.threads = 8;
            mopt.traceStride = 16;
            const auto msa = core::runMsaPhase(sample.complex,
                                               platform, ws, mopt);

            const size_t tokens = sample.complex.totalResidues();
            auto rec = inferenceRecord(
                strformat("PlatformMatrix/%s/%s/inference",
                          platform.name.c_str(), name),
                platform, tokens);
            const double infSeconds =
                rec.at("ns_per_op").asNumber() / 1e9;
            const auto &c = rec.at("counters");

            t.addRow({name, bench::secs(msa.seconds),
                      bench::secs(infSeconds),
                      bench::pct(msa.seconds /
                                 (msa.seconds + infSeconds)),
                      c.at("unified_memory").asNumber() > 0.0
                          ? "yes"
                          : "no",
                      strformat("%.0f",
                                c.at("max_batch_vram")
                                    .asNumber())});

            JsonValue msaRec = JsonValue::makeObject();
            msaRec["name"] =
                strformat("PlatformMatrix/%s/%s/msa",
                          platform.name.c_str(), name);
            msaRec["iterations"] = static_cast<int64_t>(1);
            msaRec["ns_per_op"] = msa.seconds * 1e9;
            JsonValue mc = JsonValue::makeObject();
            mc["peak_mem_bytes"] =
                static_cast<double>(msa.peakMemoryBytes);
            msaRec["counters"] = mc;
            records.push(std::move(msaRec));
            records.push(std::move(rec));
        }
        t.print();

        TextTable r(strformat("%s: Fig 2 RNA lengths",
                              platform.name.c_str()));
        r.setHeader({"RNA length", "Inference (s)", "nhmmer peak",
                     "spill", "max batch"});
        for (size_t len : rnaLengths) {
            (void)bio::makeRibosomalRna(len);
            auto rec = inferenceRecord(
                strformat("PlatformMatrix/%s/rna%zu/inference",
                          platform.name.c_str(), len),
                platform, len);
            const uint64_t peak = msa::nhmmerPeakMemoryBytes(len);
            rec["counters"]["nhmmer_peak_bytes"] =
                static_cast<double>(peak);
            const auto &c = rec.at("counters");
            r.addRow({strformat("%zu", len),
                      bench::secs(rec.at("ns_per_op").asNumber() /
                                  1e9),
                      formatBytes(peak),
                      c.at("unified_memory").asNumber() > 0.0
                          ? "yes"
                          : "no",
                      strformat("%.0f",
                                c.at("max_batch_vram")
                                    .asNumber())});
            records.push(std::move(rec));
        }
        r.print();
    }

    if (!jsonPath.empty()) {
        JsonValue doc = JsonValue::makeObject();
        doc["benchmarks"] = records;
        std::ofstream out(jsonPath);
        if (!out) {
            std::fprintf(stderr,
                         "bench_platform_matrix: cannot write %s\n",
                         jsonPath.c_str());
            return 1;
        }
        out << doc.dumpPretty() << "\n";
    }
    return 0;
}
