/**
 * @file
 * Regenerates paper Fig 8: Nsight-style breakdown of inference time
 * into GPU initialization, XLA compilation, GPU compute, and
 * finalization.
 */

#include "bench_common.hh"
#include "bio/samples.hh"
#include "gpusim/inference_sim.hh"

using namespace afsb;

int
main()
{
    bench::banner(
        "Fig 8 — Inference time breakdown (Nsight-style)",
        "Kim et al., IISWC 2025, Fig 8 + Section V-B3a",
        "Server: init+XLA dominate short inputs (>75% for 2PV7); "
        "Desktop: GPU compute dominates (2PV7 ~71 s compute, ~10 s "
        "XLA, ~19 s init/finalize; up to 83% compute for "
        "1YY9/promo); 6QNR spills to unified memory on the 4080");

    TextTable t("Fig 8: inference phase breakdown (seconds)");
    t.setHeader({"Platform", "Sample", "init", "xla", "gpu",
                 "final", "total", "overhead", "unified-mem"});
    for (const auto &platform :
         {sys::serverPlatform(), sys::desktopPlatform()}) {
        for (const char *name : {"2PV7", "1YY9", "promo", "6QNR"}) {
            const auto sample = bio::makeSample(name);
            gpusim::XlaCache cache;
            const auto r = gpusim::simulateInference(
                platform, sample.complex.totalResidues(), cache);
            t.addRow({platform.name, name,
                      bench::secs(r.initSeconds),
                      bench::secs(r.compileSeconds),
                      bench::secs(r.gpuComputeSeconds),
                      bench::secs(r.finalizeSeconds),
                      bench::secs(r.totalSeconds()),
                      bench::pct(r.overheadFraction()),
                      r.usedUnifiedMemory ? "yes" : "no"});
        }
        t.addSeparator();
    }
    t.print();

    // Nsight-like timeline for the Server 2PV7 case.
    gpusim::XlaCache cache;
    const auto r = gpusim::simulateInference(
        sys::serverPlatform(),
        bio::makeSample("2PV7").complex.totalResidues(), cache);
    std::printf("Timeline (Server, 2PV7) — first 12 spans:\n");
    std::string render = r.timeline.render();
    size_t lines = 0, pos = 0;
    while (lines < 12 && pos < render.size()) {
        const size_t nl = render.find('\n', pos);
        std::printf("%.*s\n", static_cast<int>(nl - pos),
                    render.c_str() + pos);
        pos = nl + 1;
        ++lines;
    }
    return 0;
}
