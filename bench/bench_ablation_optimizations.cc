/**
 * @file
 * Ablation bench for the paper's Section VI optimization proposals,
 * implemented as AFSysBench features:
 *
 *  1. Static memory estimation before execution (avoids OOM waste).
 *  2. Persistent model state (warm XLA compilation cache).
 *  3. Database preloading into the page cache.
 *  4. Adaptive thread allocation vs AF3's fixed 8-thread default.
 */

#include "bench_common.hh"
#include "core/adaptive_threads.hh"
#include "core/memory_estimator.hh"
#include "core/pipeline.hh"

using namespace afsb;

int
main()
{
    bench::banner(
        "Ablation — Section VI optimization proposals",
        "Kim et al., IISWC 2025, Section VI (Discussions)",
        "each proposed optimization, implemented and measured "
        "against the default configuration");

    const auto &ws = core::Workspace::shared();

    // --- 1. Static memory estimator --------------------------------------
    std::printf("--- 1. Memory estimation based on input features\n");
    {
        bio::Complex rna("rna_1335");
        rna.addChain(bio::makeRibosomalRna(1335));
        const auto est = core::estimateMemory(
            rna, sys::serverPlatformWithCxl(), 8);
        std::printf("Pre-check for a 1335-nt RNA input on "
                    "Server+CXL:\n%s",
                    est.render().c_str());
        std::printf("-> run rejected up front; the paper observed "
                    "this input aborting after consuming the whole "
                    "768 GiB.\n\n");
    }

    // --- 2. Persistent model state ---------------------------------------
    std::printf("--- 2. Reducing GPU initialization overhead "
                "(persistent model state)\n");
    {
        TextTable t("Repeated 2PV7 inference requests (Server)");
        t.setHeader({"Request", "cold cache (s)", "warm cache (s)",
                     "speedup"});
        gpusim::XlaCache persistent;
        const size_t tokens =
            bio::makeSample("2PV7").complex.totalResidues();
        for (int req = 1; req <= 3; ++req) {
            gpusim::XlaCache cold;
            const auto rc = gpusim::simulateInference(
                sys::serverPlatform(), tokens, cold);
            const auto rw = gpusim::simulateInference(
                sys::serverPlatform(), tokens, persistent);
            t.addRow({strformat("%d", req),
                      bench::secs(rc.totalSeconds()),
                      bench::secs(rw.totalSeconds()),
                      strformat("%.2fx", rc.totalSeconds() /
                                             rw.totalSeconds())});
        }
        t.print();
    }

    // --- 3. Database preloading ------------------------------------------
    std::printf("--- 3. Preloading databases into DRAM (Server)\n");
    {
        const auto sample = bio::makeSample("promo");
        TextTable t("promo MSA phase, 4 threads");
        t.setHeader({"Config", "MSA (s)", "I/O wait in window (s)",
                     "disk during phase"});
        for (bool preload : {false, true}) {
            core::MsaPhaseOptions opt;
            opt.threads = 4;
            opt.traceStride = 16;
            opt.preloadDatabases = preload;
            const auto r = core::runMsaPhase(
                sample.complex, sys::serverPlatform(), ws, opt);
            t.addRow({preload ? "preloaded" : "demand-paged",
                      bench::secs(r.seconds),
                      bench::secs(r.ioSeconds),
                      formatBytes(r.diskBytesRead)});
        }
        t.print();
        std::printf("(Cold reads move out of the measured window; "
                    "on this compute-bound server phase the "
                    "end-to-end win is small, exactly as the "
                    "paper's 'particularly effective on "
                    "server-grade systems' framing implies for "
                    "interactive latency rather than batch "
                    "throughput.)\n\n");
    }

    // --- 4. Adaptive thread allocation -------------------------------------
    std::printf("--- 4. Adaptive thread allocation vs fixed "
                "default\n");
    {
        TextTable t("Recommended MSA threads per input (Desktop)");
        t.setHeader({"Sample", "recommended T", "predicted (s)",
                     "default 8T (s)", "speedup vs default"});
        for (const char *name : {"2PV7", "7RCE", "1YY9", "6QNR"}) {
            const auto sample = bio::makeSample(name);
            const auto advice = core::recommendThreads(
                sample.complex,
                name == std::string("6QNR")
                    ? sys::desktopPlatformUpgraded()
                    : sys::desktopPlatform(),
                ws, {2, 4, 6, 8});
            t.addRow({name,
                      strformat("%u", advice.recommendedThreads),
                      bench::secs(advice.predictedSeconds),
                      bench::secs(advice.defaultSeconds),
                      strformat("%.2fx",
                                advice.speedupOverDefault())});
        }
        t.print();
    }
    return 0;
}
