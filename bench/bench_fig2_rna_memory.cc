/**
 * @file
 * Regenerates paper Fig 2: peak memory vs RNA sequence length, with
 * the DRAM (512 GiB) and DRAM+CXL (768 GiB) capacity lines, plus
 * the Section III-C protein-probe measurements.
 */

#include "bench_common.hh"
#include "bio/samples.hh"
#include "msa/memory_model.hh"
#include "sys/memory_model.hh"

using namespace afsb;

namespace {

const char *
placement(sys::MemFit fit)
{
    switch (fit) {
      case sys::MemFit::FitsDram: return "DRAM";
      case sys::MemFit::NeedsCxl: return "DRAM+CXL";
      case sys::MemFit::Oom: return "OOM (fails)";
    }
    return "?";
}

} // namespace

int
main()
{
    bench::banner(
        "Fig 2 — Peak memory vs RNA sequence length",
        "Kim et al., IISWC 2025, Fig 2 + Section III-C",
        "621 nt -> 79.3 GiB, 935 -> 506 GiB (DRAM), 1135 -> 644 GiB "
        "(needs CXL), 1335 -> exceeds 768 GiB (OOM); protein probes "
        "stay under 2 GiB");

    const sys::MemoryModel server(sys::serverPlatform().memory);
    const sys::MemoryModel cxl(
        sys::serverPlatformWithCxl().memory);

    TextTable t("Fig 2: nhmmer peak memory (7K00-derived RNA)");
    t.setHeader({"RNA length (nt)", "Peak memory", "vs 512 GiB DRAM",
                 "vs 768 GiB DRAM+CXL"});
    for (size_t len : {200, 400, 621, 800, 935, 1000, 1135, 1200,
                       1335}) {
        // Verify the chain is synthesizable at this length.
        (void)bio::makeRibosomalRna(len);
        const uint64_t peak = msa::nhmmerPeakMemoryBytes(len);
        t.addRow({strformat("%zu", len), formatBytes(peak),
                  placement(server.classify(peak)),
                  placement(cxl.classify(peak))});
    }
    t.addSeparator();
    t.print();

    TextTable p("Section III-C: protein-probe peak memory "
                "(jackhmmer)");
    p.setHeader({"Protein residues", "Threads", "Peak memory"});
    for (auto [len, threads] :
         {std::pair<size_t, size_t>{1000, 1},
          {1000, 8},
          {2000, 8}}) {
        (void)bio::makeProteinProbe(len);
        p.addRow({strformat("%zu", len), strformat("%zu", threads),
                  formatBytes(
                      msa::jackhmmerPeakMemoryBytes(len, threads))});
    }
    p.print();

    std::printf("Capacity lines: main memory %s, with CXL %s\n",
                formatBytes(sys::serverPlatform().memory.dramBytes)
                    .c_str(),
                formatBytes(sys::serverPlatformWithCxl()
                                .totalMemoryBytes())
                    .c_str());
    return 0;
}
