/**
 * @file
 * Regenerates paper Fig 2: peak memory vs RNA sequence length, with
 * the DRAM (512 GiB) and DRAM+CXL (768 GiB) capacity lines, plus
 * the Section III-C protein-probe measurements.
 */

#include "bench_common.hh"
#include "bio/samples.hh"
#include "core/workspace.hh"
#include "io/storage.hh"
#include "msa/memory_model.hh"
#include "msa/search.hh"
#include "sys/memory_model.hh"
#include "util/units.hh"

using namespace afsb;

namespace {

const char *
placement(sys::MemFit fit)
{
    switch (fit) {
      case sys::MemFit::FitsDram: return "DRAM";
      case sys::MemFit::NeedsCxl: return "DRAM+CXL";
      case sys::MemFit::Oom: return "OOM (fails)";
    }
    return "?";
}

} // namespace

int
main()
{
    bench::banner(
        "Fig 2 — Peak memory vs RNA sequence length",
        "Kim et al., IISWC 2025, Fig 2 + Section III-C",
        "621 nt -> 79.3 GiB, 935 -> 506 GiB (DRAM), 1135 -> 644 GiB "
        "(needs CXL), 1335 -> exceeds 768 GiB (OOM); protein probes "
        "stay under 2 GiB");

    const sys::MemoryModel server(sys::serverPlatform().memory);
    const sys::MemoryModel cxl(
        sys::serverPlatformWithCxl().memory);

    TextTable t("Fig 2: nhmmer peak memory (7K00-derived RNA)");
    t.setHeader({"RNA length (nt)", "Peak memory", "vs 512 GiB DRAM",
                 "vs 768 GiB DRAM+CXL"});
    for (size_t len : {200, 400, 621, 800, 935, 1000, 1135, 1200,
                       1335}) {
        // Verify the chain is synthesizable at this length.
        (void)bio::makeRibosomalRna(len);
        const uint64_t peak = msa::nhmmerPeakMemoryBytes(len);
        t.addRow({strformat("%zu", len), formatBytes(peak),
                  placement(server.classify(peak)),
                  placement(cxl.classify(peak))});
    }
    t.addSeparator();
    t.print();

    TextTable p("Section III-C: protein-probe peak memory "
                "(jackhmmer)");
    p.setHeader({"Protein residues", "Threads", "Peak memory"});
    for (auto [len, threads] :
         {std::pair<size_t, size_t>{1000, 1},
          {1000, 8},
          {2000, 8}}) {
        (void)bio::makeProteinProbe(len);
        p.addRow({strformat("%zu", len), strformat("%zu", threads),
                  formatBytes(
                      msa::jackhmmerPeakMemoryBytes(len, threads))});
    }
    p.print();

    std::printf("Capacity lines: main memory %s, with CXL %s\n\n",
                formatBytes(sys::serverPlatform().memory.dramBytes)
                    .c_str(),
                formatBytes(sys::serverPlatformWithCxl()
                                .totalMemoryBytes())
                    .c_str());

    // Streaming compressed database: run the RNA collection through
    // the real I/O plumbing (AFBC container -> BufferedReader ->
    // page cache -> storage model) with a bounded decode budget, so
    // the 89 GiB paper footprint is scanned without ever holding it
    // in RAM — the complement to the Fig 2 DP-matrix blow-up above.
    {
        const uint64_t budget = 2 * MiB;
        io::Vfs vfs = core::Workspace::shared().vfs();
        io::StorageDevice dev;
        io::PageCache cache(256 * MiB, &dev);

        const auto comp = msa::compressDatabase(
            vfs, "rfam_scaled.fasta", "rfam_scaled.afbc");
        auto sdb = msa::StreamingSequenceDatabase::open(
            vfs, cache, "rfam_scaled.afbc", bio::MoleculeType::Rna,
            0.0, budget);
        sdb.setPaperScaleBytes(msa::paperdb::kRnaDbBytes);

        const auto query = sdb.materialize(0, 0.0);
        const auto prof = msa::ProfileHmm::fromSequence(
            query, msa::ScoreMatrix::nucleotide());
        const auto scan = msa::searchDatabaseStreaming(prof, sdb, {});

        // At paper scale only the compressed bytes grow; the decode
        // LRU + reader window + target index stay bounded, so the
        // extrapolated residency is (index scaled up) + budget-bound
        // decode state — versus materializing 89 GiB of FASTA.
        const double scale = sdb.info().scaleFactor();
        const uint64_t paperResident = static_cast<uint64_t>(
            static_cast<double>(sdb.peakResidentBytes() -
                                sdb.blockStats().peakResidentBytes) *
                scale +
            static_cast<double>(sdb.blockStats().peakResidentBytes));

        TextTable s("Streaming compressed RNA database "
                    "(real I/O plumbing)");
        s.setHeader({"Metric", "Scaled run", "Paper scale (89 GiB)"});
        s.addRow({"collection bytes (FASTA)",
                  formatBytes(comp.rawBytes),
                  formatBytes(sdb.info().paperScaleBytes)});
        s.addRow({"container bytes (AFBC)",
                  formatBytes(comp.compressedBytes),
                  formatBytes(static_cast<uint64_t>(
                      static_cast<double>(
                          sdb.info().paperScaleBytes) /
                      comp.ratio()))});
        s.addRow({"compression ratio",
                  strformat("%.2fx", comp.ratio()),
                  strformat("%.2fx", comp.ratio())});
        s.addRow({"targets scanned",
                  strformat("%llu",
                            static_cast<unsigned long long>(
                                scan.stats.targetsScanned)),
                  "all (streamed)"});
        s.addRow({"decode budget", formatBytes(budget),
                  formatBytes(budget)});
        s.addRow({"peak resident", formatBytes(sdb.peakResidentBytes()),
                  formatBytes(paperResident)});
        s.print();

        const uint64_t cap = budget +
                             io::BufferedReader::kBufferSize +
                             sdb.peakResidentBytes() -
                             sdb.blockStats().peakResidentBytes;
        if (sdb.blockStats().peakResidentBytes >
            budget + io::BufferedReader::kBufferSize + 64 * KiB) {
            std::printf("FAIL: decode residency exceeded budget\n");
            return 1;
        }
        std::printf("Streaming scan stayed within its RAM budget "
                    "(%s cap); an in-RAM scan of the paper-scale "
                    "collection needs %s.\n",
                    formatBytes(cap).c_str(),
                    formatBytes(sdb.info().paperScaleBytes).c_str());
    }
    return 0;
}
