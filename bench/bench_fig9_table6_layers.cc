/**
 * @file
 * Regenerates paper Fig 9 and Table VI: layer-wise execution-time
 * breakdown of the Pairformer and Diffusion modules, at paper scale
 * (GPU simulation on the H100) and on the executable mini model.
 */

#include "bench_common.hh"
#include "bio/samples.hh"
#include "bio/seqgen.hh"
#include "gpusim/inference_sim.hh"
#include "model/af3_model.hh"

using namespace afsb;

namespace {

double
layerOr0(const std::map<std::string, double> &m,
         const std::string &k)
{
    auto it = m.find(k);
    return it == m.end() ? 0.0 : it->second;
}

} // namespace

int
main()
{
    bench::banner(
        "Fig 9 + Table VI — Pairformer/Diffusion layer breakdown",
        "Kim et al., IISWC 2025, Fig 9 + Table VI",
        "triangle attention dominates Pairformer (44.6% for 2PV7); "
        "global attention dominates Diffusion (24.4% -> 37.5% share "
        "as N grows); promo/2PV7 ratios: Pairformer ~3.35x, "
        "triangle attn ~3.8x, Diffusion ~1.84x, global attn ~1.93x");

    std::map<std::string, std::map<std::string, double>> results;
    for (const char *name : {"2PV7", "promo"}) {
        const auto sample = bio::makeSample(name);
        gpusim::XlaCache cache;
        const auto r = gpusim::simulateInference(
            sys::serverPlatform(), sample.complex.totalResidues(),
            cache);
        auto &m = results[name];
        m = r.layerSeconds;
        m["__pairformer"] = r.pairformerSeconds();
        m["__diffusion"] = r.diffusionSeconds();
    }

    // --- Table VI (per-module totals, milliseconds per block/step) ----
    const auto &a = results["2PV7"];
    const auto &b = results["promo"];
    auto ms = [](double s) { return strformat("%.2f", s * 1000.0); };

    TextTable t6("TABLE VI: layer-wise execution time (ms, whole "
                 "inference on simulated H100)");
    t6.setHeader({"Layer", "2PV7 (ms)", "promo (ms)",
                  "promo/2PV7"});
    auto addLayer = [&](const std::string &label,
                        const std::string &key) {
        const double va =
            key[0] == '_' ? a.at(key)
                          : layerOr0(a, key);
        const double vb =
            key[0] == '_' ? b.at(key)
                          : layerOr0(b, key);
        t6.addRow({label, ms(va), ms(vb),
                   strformat("%.2fx", vb / va)});
    };
    addLayer("Pairformer", "__pairformer");
    {
        const double va = layerOr0(a, "triangle_mult_outgoing") +
                          layerOr0(a, "triangle_mult_incoming");
        const double vb = layerOr0(b, "triangle_mult_outgoing") +
                          layerOr0(b, "triangle_mult_incoming");
        t6.addRow({"  triangle mult. update (out+in)", ms(va),
                   ms(vb), strformat("%.2fx", vb / va)});
    }
    addLayer("  triangle attention (start)",
             "triangle_attention_starting");
    addLayer("  triangle attention (end)",
             "triangle_attention_ending");
    addLayer("  pair transition", "pair_transition");
    addLayer("Diffusion", "__diffusion");
    addLayer("  local attn (encoder)", "local_attention_encoder");
    addLayer("  local attn (decoder)", "local_attention_decoder");
    addLayer("  global attention", "global_attention");
    t6.print();

    // --- Fig 9 (share pies, rendered as percentages) -------------------
    for (const char *name : {"2PV7", "promo"}) {
        const auto &m = results[name];
        const double pair = m.at("__pairformer");
        const double diff = m.at("__diffusion");
        TextTable pie(strformat("Fig 9 (%s): module-internal shares",
                                name));
        pie.setHeader({"Module", "Layer", "Share"});
        auto share = [&](const char *mod, const char *layer,
                         double v, double total) {
            pie.addRow({mod, layer,
                        strformat("%.1f%%", 100.0 * v / total)});
        };
        share("Pairformer", "triangle mult (out+in)",
              layerOr0(m, "triangle_mult_outgoing") +
                  layerOr0(m, "triangle_mult_incoming"),
              pair);
        share("Pairformer", "triangle attention (both)",
              layerOr0(m, "triangle_attention_starting") +
                  layerOr0(m, "triangle_attention_ending"),
              pair);
        share("Pairformer", "transitions + single",
              layerOr0(m, "pair_transition") +
                  layerOr0(m, "single_attention") +
                  layerOr0(m, "single_transition"),
              pair);
        share("Diffusion", "local attention (enc)",
              layerOr0(m, "local_attention_encoder"), diff);
        share("Diffusion", "global attention",
              layerOr0(m, "global_attention"), diff);
        share("Diffusion", "local attention (dec)",
              layerOr0(m, "local_attention_decoder"), diff);
        share("Diffusion", "conditioning + coords",
              layerOr0(m, "diffusion_conditioning") +
                  layerOr0(m, "coordinate_update"),
              diff);
        pie.print();
    }

    // --- Executable mini-model cross-check ------------------------------
    std::printf("Cross-check: executable mini model (real tensor "
                "math, JAX-profiler-style wall clock):\n");
    const auto cfg = model::miniConfig();
    model::Af3Model mini(cfg, 42);
    bio::SequenceGenerator gen(1);
    bio::Complex small("mini");
    small.addChain(gen.random("A", bio::MoleculeType::Protein, 48));
    const auto mr = mini.infer(small, model::MsaFeatures{}, 1);
    const double tri =
        layerOr0(mr.profile, "triangle_attention_starting") +
        layerOr0(mr.profile, "triangle_attention_ending");
    std::printf("  mini Pairformer %.1f ms (triangle attention "
                "%.0f%%), Diffusion %.1f ms\n",
                1e3 * mr.pairformerSeconds(),
                100.0 * tri / mr.pairformerSeconds(),
                1e3 * mr.diffusionSeconds());
    return 0;
}
