/**
 * @file
 * Serving study: first-request latency and sustained throughput
 * with and without persistent model state — the quantified version
 * of the paper's GPU-cold-start discussion (Section VI "Reducing
 * GPU Initialization Overhead" + the Related Work gap on
 * first-request latency for JAX/XLA pipelines).
 */

#include "bench_common.hh"
#include "bio/samples.hh"
#include "gpusim/serving.hh"

using namespace afsb;

int
main()
{
    bench::banner(
        "Serving study — GPU cold start vs persistent model state",
        "Kim et al., IISWC 2025, Section VI + Related Work (GPU "
        "cold start)",
        "Docker-per-request redeployments pay init+XLA on every "
        "request; a persistent process pays them once per shape");

    const size_t tokens2pv7 =
        bio::makeSample("2PV7").complex.totalResidues();
    const size_t tokensPromo =
        bio::makeSample("promo").complex.totalResidues();

    for (const auto &platform :
         {sys::serverPlatform(), sys::desktopPlatform()}) {
        TextTable t(strformat(
            "Serving 10 x 2PV7 requests on %s (one worker)",
            platform.name.c_str()));
        t.setHeader({"Policy", "1st-request (s)",
                     "steady latency (s)", "throughput (req/h)"});
        for (bool persistent : {false, true}) {
            gpusim::ServingOptions opt;
            opt.persistentModelState = persistent;
            const auto r = gpusim::simulateServing(
                platform, gpusim::batchRequests(10, tokens2pv7),
                opt);
            t.addRow({persistent ? "persistent process"
                                 : "container per request",
                      bench::secs(r.firstRequestLatency),
                      bench::secs(r.steadyLatency),
                      strformat("%.1f", r.throughputPerHour)});
        }
        t.print();
    }

    // Mixed-size request stream: shape-bucketed recompiles only.
    {
        std::vector<gpusim::ServingRequest> mixed;
        for (int i = 0; i < 6; ++i)
            mixed.push_back(
                {i % 2 ? tokensPromo : tokens2pv7, 0.0});
        gpusim::ServingOptions opt;
        opt.persistentModelState = true;
        const auto r = gpusim::simulateServing(
            sys::serverPlatform(), mixed, opt);
        TextTable t("Mixed 2PV7/promo stream on Server "
                    "(persistent)");
        t.setHeader({"Request", "tokens", "compile (s)",
                     "service (s)"});
        for (size_t i = 0; i < r.requests.size(); ++i)
            t.addRow({strformat("%zu", i + 1),
                      strformat("%zu", r.requests[i].tokens),
                      bench::secs(r.requests[i].compileSeconds),
                      bench::secs(r.requests[i].serviceSeconds)});
        t.print();
        std::printf("Only the first occurrence of each input-shape "
                    "bucket recompiles.\n");
    }
    return 0;
}
