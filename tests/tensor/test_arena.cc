/**
 * @file
 * Unit tests for the bump-pointer workspace arena: allocation and
 * rewind semantics, capacity reuse, and arena-backed tensor views.
 */

#include <gtest/gtest.h>

#include "tensor/arena.hh"
#include "tensor/ops.hh"
#include "tensor/tensor.hh"

namespace afsb::tensor {
namespace {

TEST(Arena, AllocatesAlignedSlabs)
{
    Arena arena;
    float *a = arena.alloc(3);
    float *b = arena.alloc(5);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    // Requests round up to 16-float slabs, so consecutive slabs stay
    // 64-byte aligned relative to each other.
    EXPECT_EQ(b - a, 16);
    EXPECT_EQ(arena.liveFloats(), 32u);
}

TEST(Arena, ZeroAllocIsZeroFilled)
{
    Arena arena;
    float *dirty = arena.alloc(64);
    for (size_t i = 0; i < 64; ++i)
        dirty[i] = 1.0f;
    arena.rewind(Arena::Mark{});
    float *clean = arena.allocZero(64);
    EXPECT_EQ(clean, dirty);  // same storage reused...
    for (size_t i = 0; i < 64; ++i)
        EXPECT_EQ(clean[i], 0.0f) << i;  // ...but scrubbed
}

TEST(Arena, RewindReusesCapacity)
{
    Arena arena;
    const auto m = arena.mark();
    float *first = arena.alloc(1000);
    arena.rewind(m);
    EXPECT_EQ(arena.liveFloats(), 0u);
    float *second = arena.alloc(1000);
    EXPECT_EQ(first, second);
    EXPECT_EQ(arena.highWaterFloats(), arena.liveFloats());
}

TEST(Arena, GrowsAcrossBlocksAndTracksHighWater)
{
    Arena arena(64);
    arena.alloc(64);
    arena.alloc(1 << 18);  // outgrows both block 0 and the minimum
    EXPECT_GE(arena.blockCount(), 2u);
    EXPECT_GE(arena.capacityFloats(), (1u << 18) + 64u);
    const size_t peak = arena.highWaterFloats();
    arena.rewind(Arena::Mark{});
    EXPECT_EQ(arena.liveFloats(), 0u);
    EXPECT_EQ(arena.highWaterFloats(), peak);  // peak survives rewind
    // Capacity is retained: the big request now fits with no growth.
    const size_t blocksBefore = arena.blockCount();
    arena.alloc(1 << 18);
    EXPECT_EQ(arena.blockCount(), blocksBefore);
}

TEST(Arena, ScopeRewindsAndNests)
{
    Arena arena;
    arena.alloc(16);
    const size_t outer = arena.liveFloats();
    {
        Arena::Scope s1(&arena);
        arena.alloc(160);
        {
            Arena::Scope s2(&arena);
            arena.alloc(1600);
            EXPECT_EQ(arena.liveFloats(), outer + 160 + 1600);
        }
        EXPECT_EQ(arena.liveFloats(), outer + 160);
    }
    EXPECT_EQ(arena.liveFloats(), outer);
}

TEST(Arena, NullScopeIsNoOp)
{
    // Layers thread an optional Arena*; a null scope must be inert.
    Arena::Scope s(nullptr);
}

TEST(Arena, TensorViewsDrawFromArenaAndCopiesEscape)
{
    Arena arena;
    Tensor view;
    {
        Arena::Scope scope(&arena);
        Tensor t = Tensor::zeros({4, 4}, &arena);
        EXPECT_TRUE(t.isView());
        EXPECT_GE(arena.liveFloats(), 16u);
        t.at(2, 3) = 7.0f;
        view = t;  // copy must deep-copy out of the arena
    }
    EXPECT_FALSE(view.isView());
    EXPECT_EQ(arena.liveFloats(), 0u);
    arena.allocZero(64);  // stomp the old slab
    EXPECT_EQ(view.at(2, 3), 7.0f);
}

TEST(Arena, UninitializedTensorOwnsWhenArenaNull)
{
    Tensor t = Tensor::uninitialized({3, 3}, nullptr);
    EXPECT_FALSE(t.isView());
    EXPECT_EQ(t.size(), 9u);
}

TEST(Arena, OpsBitIdenticalWithAndWithoutArena)
{
    Rng rng(51);
    const Tensor a = Tensor::randomNormal({17, 23}, rng);
    const Tensor b = Tensor::randomNormal({23, 19}, rng);
    const Tensor bias = Tensor::randomNormal({19}, rng);

    const Tensor mm = matmul(a, b);
    const Tensor lin = linear(a, b, bias);
    const Tensor linNb = linear(a, b);
    const Tensor sm = softmax(a);
    const Tensor ln = layerNorm(a);

    Arena arena;
    for (int round = 0; round < 2; ++round) {
        Arena::Scope scope(&arena);
        EXPECT_TRUE(matmul(a, b, nullptr, &arena) == mm);
        EXPECT_TRUE(linear(a, b, bias, nullptr, &arena) == lin);
        EXPECT_TRUE(linear(a, b, nullptr, &arena) == linNb);
        EXPECT_TRUE(softmax(a, nullptr, &arena) == sm);
        EXPECT_TRUE(layerNorm(a, 1e-5f, nullptr, &arena) == ln);
    }
}

TEST(Arena, NoBiasLinearMatchesZeroBias)
{
    Rng rng(52);
    const Tensor x = Tensor::randomNormal({9, 15}, rng);
    const Tensor w = Tensor::randomNormal({15, 11}, rng);
    const Tensor zb({11});
    EXPECT_TRUE(linear(x, w) == linear(x, w, zb));
}

} // namespace
} // namespace afsb::tensor
