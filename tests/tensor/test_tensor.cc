/**
 * @file
 * Unit tests for the tensor container and operations.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.hh"
#include "tensor/tensor.hh"

namespace afsb::tensor {
namespace {

TEST(Tensor, ShapeAndAccessors)
{
    Tensor t({2, 3});
    EXPECT_EQ(t.rank(), 2u);
    EXPECT_EQ(t.size(), 6u);
    EXPECT_EQ(t.bytes(), 24u);
    t.at(1, 2) = 5.0f;
    EXPECT_FLOAT_EQ(t.at(1, 2), 5.0f);
    EXPECT_FLOAT_EQ(t[5], 5.0f);
    EXPECT_EQ(t.shapeString(), "[2, 3]");
    EXPECT_DOUBLE_EQ(t.sum(), 5.0);
}

TEST(Tensor, RandomNormalDeterministicAndScaled)
{
    Rng r1(5), r2(5);
    const auto a = Tensor::randomNormal({100, 100}, r1, 2.0f);
    const auto b = Tensor::randomNormal({100, 100}, r2, 2.0f);
    EXPECT_TRUE(a == b);
    double sq = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        sq += a[i] * a[i];
    EXPECT_NEAR(std::sqrt(sq / a.size()), 2.0, 0.05);
}

TEST(Ops, MatmulAgainstHandComputed)
{
    Tensor a({2, 3});
    Tensor b({3, 2});
    // a = [[1,2,3],[4,5,6]], b = [[7,8],[9,10],[11,12]]
    for (size_t i = 0; i < 6; ++i) {
        a[i] = static_cast<float>(i + 1);
        b[i] = static_cast<float>(i + 7);
    }
    const auto c = matmul(a, b);
    EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
    EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
    EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
    EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(Ops, MatmulMatchesLinear)
{
    Rng rng(3);
    const auto x = Tensor::randomNormal({4, 8}, rng);
    const auto w = Tensor::randomNormal({8, 5}, rng);
    const Tensor zb({5});
    const auto viaLinear = linear(x, w, zb);
    const auto viaMatmul = matmul(x, w);
    EXPECT_LT(meanAbsDiff(viaLinear, viaMatmul), 1e-6);
}

TEST(Ops, LinearAppliesBiasOverBatchedRank3)
{
    Rng rng(4);
    const auto x = Tensor::randomNormal({2, 3, 4}, rng);
    const Tensor w({4, 2}, 0.0f);
    Tensor b({2});
    b[0] = 1.5f;
    b[1] = -2.0f;
    const auto y = linear(x, w, b);
    EXPECT_EQ(y.shape(), (std::vector<size_t>{2, 3, 2}));
    for (size_t i = 0; i < 2; ++i)
        for (size_t j = 0; j < 3; ++j) {
            EXPECT_FLOAT_EQ(y.at(i, j, 0), 1.5f);
            EXPECT_FLOAT_EQ(y.at(i, j, 1), -2.0f);
        }
}

TEST(Ops, SoftmaxRowsSumToOne)
{
    Rng rng(5);
    const auto x = Tensor::randomNormal({7, 13}, rng, 3.0f);
    const auto y = softmax(x);
    for (size_t i = 0; i < 7; ++i) {
        float sum = 0.0f;
        for (size_t j = 0; j < 13; ++j) {
            EXPECT_GT(y.at(i, j), 0.0f);
            sum += y.at(i, j);
        }
        EXPECT_NEAR(sum, 1.0f, 1e-5);
    }
}

TEST(Ops, SoftmaxStableForLargeLogits)
{
    Tensor x({1, 3});
    x[0] = 1e4f;
    x[1] = 1e4f + 1.0f;
    x[2] = -1e4f;
    const auto y = softmax(x);
    EXPECT_FALSE(y.hasNonFinite());
    EXPECT_GT(y[1], y[0]);
    EXPECT_NEAR(y[2], 0.0f, 1e-6);
}

TEST(Ops, LayerNormZeroMeanUnitVar)
{
    Rng rng(6);
    const auto x = Tensor::randomNormal({5, 64}, rng, 4.0f);
    const auto y = layerNorm(x);
    for (size_t i = 0; i < 5; ++i) {
        double mean = 0.0, var = 0.0;
        for (size_t j = 0; j < 64; ++j)
            mean += y.at(i, j);
        mean /= 64.0;
        for (size_t j = 0; j < 64; ++j)
            var += (y.at(i, j) - mean) * (y.at(i, j) - mean);
        var /= 64.0;
        EXPECT_NEAR(mean, 0.0, 1e-5);
        EXPECT_NEAR(var, 1.0, 1e-3);
    }
}

TEST(Ops, ActivationsPointwiseProperties)
{
    Tensor x({5});
    x[0] = -3.0f;
    x[1] = -0.5f;
    x[2] = 0.0f;
    x[3] = 0.5f;
    x[4] = 3.0f;
    const auto r = relu(x);
    EXPECT_FLOAT_EQ(r[0], 0.0f);
    EXPECT_FLOAT_EQ(r[4], 3.0f);
    const auto s = sigmoid(x);
    EXPECT_NEAR(s[2], 0.5f, 1e-6);
    EXPECT_GT(s[4], 0.95f);
    EXPECT_LT(s[0], 0.05f);
    const auto g = gelu(x);
    EXPECT_NEAR(g[2], 0.0f, 1e-6);
    EXPECT_NEAR(g[4], 3.0f, 1e-2);
    EXPECT_NEAR(g[0], 0.0f, 1e-2);
}

TEST(Ops, AddMulScaleTranspose)
{
    Rng rng(7);
    const auto a = Tensor::randomNormal({3, 4}, rng);
    const auto b = Tensor::randomNormal({3, 4}, rng);
    const auto sum = add(a, b);
    const auto prod = mul(a, b);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_FLOAT_EQ(sum[i], a[i] + b[i]);
        EXPECT_FLOAT_EQ(prod[i], a[i] * b[i]);
    }
    const auto doubled = scale(a, 2.0f);
    EXPECT_FLOAT_EQ(doubled[0], 2.0f * a[0]);
    const auto t = transpose(a);
    EXPECT_EQ(t.shape(), (std::vector<size_t>{4, 3}));
    EXPECT_FLOAT_EQ(t.at(1, 2), a.at(2, 1));
}

TEST(Ops, AddInPlaceAccumulates)
{
    Tensor a({2, 2}, 1.0f);
    const Tensor b({2, 2}, 2.5f);
    addInPlace(a, b);
    for (size_t i = 0; i < 4; ++i)
        EXPECT_FLOAT_EQ(a[i], 3.5f);
}

} // namespace
} // namespace afsb::tensor
