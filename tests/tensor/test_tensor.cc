/**
 * @file
 * Unit tests for the tensor container and operations.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "tensor/ops.hh"
#include "tensor/tensor.hh"
#include "util/threadpool.hh"

namespace afsb::tensor {
namespace {

TEST(Tensor, ShapeAndAccessors)
{
    Tensor t({2, 3});
    EXPECT_EQ(t.rank(), 2u);
    EXPECT_EQ(t.size(), 6u);
    EXPECT_EQ(t.bytes(), 24u);
    t.at(1, 2) = 5.0f;
    EXPECT_FLOAT_EQ(t.at(1, 2), 5.0f);
    EXPECT_FLOAT_EQ(t[5], 5.0f);
    EXPECT_EQ(t.shapeString(), "[2, 3]");
    EXPECT_DOUBLE_EQ(t.sum(), 5.0);
}

TEST(Tensor, RandomNormalDeterministicAndScaled)
{
    Rng r1(5), r2(5);
    const auto a = Tensor::randomNormal({100, 100}, r1, 2.0f);
    const auto b = Tensor::randomNormal({100, 100}, r2, 2.0f);
    EXPECT_TRUE(a == b);
    double sq = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        sq += a[i] * a[i];
    EXPECT_NEAR(std::sqrt(sq / a.size()), 2.0, 0.05);
}

TEST(Ops, MatmulAgainstHandComputed)
{
    Tensor a({2, 3});
    Tensor b({3, 2});
    // a = [[1,2,3],[4,5,6]], b = [[7,8],[9,10],[11,12]]
    for (size_t i = 0; i < 6; ++i) {
        a[i] = static_cast<float>(i + 1);
        b[i] = static_cast<float>(i + 7);
    }
    const auto c = matmul(a, b);
    EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
    EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
    EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
    EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(Ops, MatmulMatchesLinear)
{
    Rng rng(3);
    const auto x = Tensor::randomNormal({4, 8}, rng);
    const auto w = Tensor::randomNormal({8, 5}, rng);
    const Tensor zb({5});
    const auto viaLinear = linear(x, w, zb);
    const auto viaMatmul = matmul(x, w);
    EXPECT_LT(meanAbsDiff(viaLinear, viaMatmul), 1e-6);
}

TEST(Ops, LinearAppliesBiasOverBatchedRank3)
{
    Rng rng(4);
    const auto x = Tensor::randomNormal({2, 3, 4}, rng);
    const Tensor w({4, 2}, 0.0f);
    Tensor b({2});
    b[0] = 1.5f;
    b[1] = -2.0f;
    const auto y = linear(x, w, b);
    EXPECT_EQ(y.shape(), (std::vector<size_t>{2, 3, 2}));
    for (size_t i = 0; i < 2; ++i)
        for (size_t j = 0; j < 3; ++j) {
            EXPECT_FLOAT_EQ(y.at(i, j, 0), 1.5f);
            EXPECT_FLOAT_EQ(y.at(i, j, 1), -2.0f);
        }
}

TEST(Ops, SoftmaxRowsSumToOne)
{
    Rng rng(5);
    const auto x = Tensor::randomNormal({7, 13}, rng, 3.0f);
    const auto y = softmax(x);
    for (size_t i = 0; i < 7; ++i) {
        float sum = 0.0f;
        for (size_t j = 0; j < 13; ++j) {
            EXPECT_GT(y.at(i, j), 0.0f);
            sum += y.at(i, j);
        }
        EXPECT_NEAR(sum, 1.0f, 1e-5);
    }
}

TEST(Ops, SoftmaxStableForLargeLogits)
{
    Tensor x({1, 3});
    x[0] = 1e4f;
    x[1] = 1e4f + 1.0f;
    x[2] = -1e4f;
    const auto y = softmax(x);
    EXPECT_FALSE(y.hasNonFinite());
    EXPECT_GT(y[1], y[0]);
    EXPECT_NEAR(y[2], 0.0f, 1e-6);
}

TEST(Ops, LayerNormZeroMeanUnitVar)
{
    Rng rng(6);
    const auto x = Tensor::randomNormal({5, 64}, rng, 4.0f);
    const auto y = layerNorm(x);
    for (size_t i = 0; i < 5; ++i) {
        double mean = 0.0, var = 0.0;
        for (size_t j = 0; j < 64; ++j)
            mean += y.at(i, j);
        mean /= 64.0;
        for (size_t j = 0; j < 64; ++j)
            var += (y.at(i, j) - mean) * (y.at(i, j) - mean);
        var /= 64.0;
        EXPECT_NEAR(mean, 0.0, 1e-5);
        EXPECT_NEAR(var, 1.0, 1e-3);
    }
}

TEST(Ops, ActivationsPointwiseProperties)
{
    Tensor x({5});
    x[0] = -3.0f;
    x[1] = -0.5f;
    x[2] = 0.0f;
    x[3] = 0.5f;
    x[4] = 3.0f;
    const auto r = relu(x);
    EXPECT_FLOAT_EQ(r[0], 0.0f);
    EXPECT_FLOAT_EQ(r[4], 3.0f);
    const auto s = sigmoid(x);
    EXPECT_NEAR(s[2], 0.5f, 1e-6);
    EXPECT_GT(s[4], 0.95f);
    EXPECT_LT(s[0], 0.05f);
    const auto g = gelu(x);
    EXPECT_NEAR(g[2], 0.0f, 1e-6);
    EXPECT_NEAR(g[4], 3.0f, 1e-2);
    EXPECT_NEAR(g[0], 0.0f, 1e-2);
}

TEST(Ops, AddMulScaleTranspose)
{
    Rng rng(7);
    const auto a = Tensor::randomNormal({3, 4}, rng);
    const auto b = Tensor::randomNormal({3, 4}, rng);
    const auto sum = add(a, b);
    const auto prod = mul(a, b);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_FLOAT_EQ(sum[i], a[i] + b[i]);
        EXPECT_FLOAT_EQ(prod[i], a[i] * b[i]);
    }
    const auto doubled = scale(a, 2.0f);
    EXPECT_FLOAT_EQ(doubled[0], 2.0f * a[0]);
    const auto t = transpose(a);
    EXPECT_EQ(t.shape(), (std::vector<size_t>{4, 3}));
    EXPECT_FLOAT_EQ(t.at(1, 2), a.at(2, 1));
}

TEST(Ops, AddInPlaceAccumulates)
{
    Tensor a({2, 2}, 1.0f);
    const Tensor b({2, 2}, 2.5f);
    addInPlace(a, b);
    for (size_t i = 0; i < 4; ++i)
        EXPECT_FLOAT_EQ(a[i], 3.5f);
}

// --- blocked-kernel equivalence and pool determinism --------------------

/** Textbook ijk reference matmul, double accumulation. */
Tensor
refMatmul(const Tensor &a, const Tensor &b)
{
    const size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
    Tensor c({m, n});
    for (size_t i = 0; i < m; ++i)
        for (size_t j = 0; j < n; ++j) {
            double s = 0.0;
            for (size_t kk = 0; kk < k; ++kk)
                s += static_cast<double>(a.at(i, kk)) * b.at(kk, j);
            c.at(i, j) = static_cast<float>(s);
        }
    return c;
}

void
expectClose(const Tensor &got, const Tensor &want, float rel)
{
    ASSERT_EQ(got.shape(), want.shape());
    for (size_t i = 0; i < got.size(); ++i) {
        const float tol =
            rel * std::max(1.0f, std::abs(want[i]));
        ASSERT_NEAR(got[i], want[i], tol) << "index " << i;
    }
}

TEST(OpsBlocked, MatmulMatchesReferenceOnOddShapes)
{
    // Odd / non-lane-multiple dims exercise every K-unroll and
    // column-tile remainder path, including rows hitting the
    // unpaired tail kernel.
    const size_t shapes[][3] = {{1, 1, 1},   {1, 7, 3},
                                {3, 5, 2},   {5, 3, 9},
                                {17, 31, 13}, {33, 129, 65},
                                {64, 64, 64}, {7, 513, 11}};
    Rng rng(41);
    for (const auto &s : shapes) {
        const auto a = Tensor::randomNormal({s[0], s[1]}, rng);
        const auto b = Tensor::randomNormal({s[1], s[2]}, rng);
        expectClose(matmul(a, b), refMatmul(a, b), 1e-4f);
    }
}

TEST(OpsBlocked, LinearMatchesMatmulPlusBiasOnOddShapes)
{
    Rng rng(42);
    const size_t shapes[][3] = {
        {1, 3, 5}, {9, 17, 7}, {31, 33, 129}, {2, 64, 65}};
    for (const auto &s : shapes) {
        const auto x = Tensor::randomNormal({s[0], s[1]}, rng);
        const auto w = Tensor::randomNormal({s[1], s[2]}, rng);
        const auto b = Tensor::randomNormal({s[2]}, rng);
        auto want = refMatmul(x, w);
        for (size_t r = 0; r < s[0]; ++r)
            for (size_t o = 0; o < s[2]; ++o)
                want.at(r, o) += b[o];
        expectClose(linear(x, w, b), want, 1e-4f);
    }
}

TEST(OpsBlocked, ZeroRichInputsExact)
{
    // The removed zero-skip branch must not change results on the
    // inputs it used to special-case.
    Rng rng(43);
    auto a = Tensor::randomNormal({9, 13}, rng);
    auto b = Tensor::randomNormal({13, 7}, rng);
    for (size_t i = 0; i < a.size(); i += 3)
        a[i] = 0.0f;
    for (size_t i = 1; i < b.size(); i += 2)
        b[i] = 0.0f;
    expectClose(matmul(a, b), refMatmul(a, b), 1e-5f);
}

TEST(OpsBlocked, PoolResultsBitIdenticalToSerial)
{
    Rng rng(44);
    const auto a = Tensor::randomNormal({67, 129}, rng);
    const auto b = Tensor::randomNormal({129, 33}, rng);
    const auto bias = Tensor::randomNormal({33}, rng);
    const auto x = Tensor::randomNormal({67, 129}, rng);
    const auto serialMm = matmul(a, b);
    const auto serialLin = linear(a, b, bias);
    const auto serialSm = softmax(x);
    const auto serialLn = layerNorm(x);
    for (size_t threads : {1u, 2u, 3u, 8u}) {
        ThreadPool pool(threads);
        EXPECT_TRUE(matmul(a, b, &pool) == serialMm)
            << threads << " threads";
        EXPECT_TRUE(linear(a, b, bias, &pool) == serialLin)
            << threads << " threads";
        EXPECT_TRUE(softmax(x, &pool) == serialSm)
            << threads << " threads";
        EXPECT_TRUE(layerNorm(x, 1e-5f, &pool) == serialLn)
            << threads << " threads";
    }
}

} // namespace
} // namespace afsb::tensor
