/**
 * @file
 * Unit tests for FASTA parsing and writing: round-trips and
 * malformed-input handling.
 */

#include <gtest/gtest.h>

#include "bio/fasta.hh"
#include "util/logging.hh"

namespace afsb::bio {
namespace {

TEST(Fasta, ParsesMultipleRecords)
{
    const auto seqs = parseFasta(">one\nACDEF\n>two\nGHIK\nLMNP\n",
                                 MoleculeType::Protein);
    ASSERT_EQ(seqs.size(), 2u);
    EXPECT_EQ(seqs[0].id(), "one");
    EXPECT_EQ(seqs[0].toString(), "ACDEF");
    EXPECT_EQ(seqs[1].id(), "two");
    EXPECT_EQ(seqs[1].toString(), "GHIKLMNP"); // wrapped lines join
}

TEST(Fasta, IgnoresBlankLinesAndTrimsNothingElse)
{
    const auto seqs = parseFasta("\n>a\n\nAC\n\nDE\n\n",
                                 MoleculeType::Protein);
    ASSERT_EQ(seqs.size(), 1u);
    EXPECT_EQ(seqs[0].toString(), "ACDE");
}

TEST(Fasta, RoundTripsThroughWriter)
{
    const std::vector<Sequence> original = {
        {"chainA", MoleculeType::Protein, "MKVLAT"},
        {"chainB", MoleculeType::Protein,
         std::string(150, 'A')}, // forces line wrapping
    };
    const std::string text = writeFasta(original, 60);
    const auto parsed = parseFasta(text, MoleculeType::Protein);
    ASSERT_EQ(parsed.size(), original.size());
    for (size_t i = 0; i < parsed.size(); ++i) {
        EXPECT_EQ(parsed[i].id(), original[i].id());
        EXPECT_EQ(parsed[i].toString(), original[i].toString());
    }
}

TEST(Fasta, WriterWrapsAtRequestedWidth)
{
    const std::vector<Sequence> seqs = {
        {"x", MoleculeType::Protein, std::string(10, 'G')}};
    const std::string text = writeFasta(seqs, 4);
    EXPECT_NE(text.find(">x\nGGGG\nGGGG\nGG\n"), std::string::npos);
}

TEST(Fasta, EmptyInputYieldsNoSequences)
{
    EXPECT_TRUE(parseFasta("", MoleculeType::Protein).empty());
    EXPECT_TRUE(parseFasta("\n\n", MoleculeType::Protein).empty());
}

TEST(Fasta, InvalidResidueIsFatal)
{
    EXPECT_THROW(parseFasta(">bad\nAC1DE\n", MoleculeType::Protein),
                 FatalError);
}

TEST(Fasta, ResiduesBeforeFirstHeaderAreFatal)
{
    EXPECT_THROW(parseFasta("ACDE\n>late\nAC\n",
                            MoleculeType::Protein),
                 FatalError);
}

TEST(Fasta, EmptyHeaderIsFatal)
{
    EXPECT_THROW(parseFasta(">\nACDE\n", MoleculeType::Protein),
                 FatalError);
}

TEST(Fasta, HeaderIdStopsAtWhitespace)
{
    const auto seqs = parseFasta(">sp|P1|X some description\nAC\n",
                                 MoleculeType::Protein);
    ASSERT_EQ(seqs.size(), 1u);
    EXPECT_EQ(seqs[0].id(), "sp|P1|X");
}

TEST(Fasta, DnaAlphabetIsEnforced)
{
    const auto ok = parseFasta(">d\nACGT\n", MoleculeType::Dna);
    ASSERT_EQ(ok.size(), 1u);
    EXPECT_EQ(ok[0].toString(), "ACGT");
    // 'E' is a valid protein residue but not a DNA base.
    EXPECT_THROW(parseFasta(">d\nACGE\n", MoleculeType::Dna),
                 FatalError);
}

} // namespace
} // namespace afsb::bio
