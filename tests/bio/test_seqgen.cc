/**
 * @file
 * Unit and property tests for the sequence generator.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "bio/seqgen.hh"

namespace afsb::bio {
namespace {

TEST(SeqGen, Deterministic)
{
    SequenceGenerator a(99), b(99);
    const auto sa = a.random("x", MoleculeType::Protein, 200);
    const auto sb = b.random("x", MoleculeType::Protein, 200);
    EXPECT_EQ(sa, sb);
}

TEST(SeqGen, CompositionTracksBackground)
{
    SequenceGenerator gen(7);
    const auto s = gen.random("x", MoleculeType::Protein, 50000);
    size_t counts[20] = {};
    for (size_t i = 0; i < s.length(); ++i)
        ++counts[s[i]];
    for (uint8_t c = 0; c < 20; ++c) {
        const double freq = static_cast<double>(counts[c]) /
                            static_cast<double>(s.length());
        const double expect =
            backgroundFrequency(MoleculeType::Protein, c);
        EXPECT_NEAR(freq, expect, 0.01)
            << "residue " << decodeResidue(MoleculeType::Protein, c);
    }
}

TEST(SeqGen, MutateAppliesApproximateRates)
{
    SequenceGenerator gen(11);
    const auto src = gen.random("src", MoleculeType::Protein, 5000);
    MutationParams params;
    params.substitutionRate = 0.2;
    params.insertionRate = 0.0;
    params.deletionRate = 0.0;
    const auto mut = gen.mutate(src, "mut", params);
    ASSERT_EQ(mut.length(), src.length());
    size_t diffs = 0;
    for (size_t i = 0; i < src.length(); ++i)
        diffs += src[i] != mut[i];
    // A substitution can re-draw the same residue (~5% of the time).
    const double diffRate =
        static_cast<double>(diffs) / static_cast<double>(src.length());
    EXPECT_NEAR(diffRate, 0.2 * 0.94, 0.03);
}

TEST(SeqGen, MutateIndelsChangeLength)
{
    SequenceGenerator gen(13);
    const auto src = gen.random("src", MoleculeType::Protein, 2000);
    MutationParams params;
    params.substitutionRate = 0.0;
    params.insertionRate = 0.05;
    params.deletionRate = 0.0;
    const auto ins = gen.mutate(src, "ins", params);
    EXPECT_GT(ins.length(), src.length());
    params.insertionRate = 0.0;
    params.deletionRate = 0.05;
    const auto del = gen.mutate(src, "del", params);
    EXPECT_LT(del.length(), src.length());
}

TEST(SeqGen, EmbedFragmentContainsExactCopy)
{
    SequenceGenerator gen(17);
    const auto src = gen.random("src", MoleculeType::Protein, 300);
    const auto emb = gen.embedFragment(src, "emb", 50, 120);
    EXPECT_EQ(emb.length(), 120u);
    // The 50-residue fragment appears verbatim somewhere.
    const std::string embText = emb.toString();
    const std::string srcText = src.toString();
    bool found = false;
    for (size_t off = 0; off + 50 <= srcText.size() && !found; ++off)
        found = embText.find(srcText.substr(off, 50)) !=
                std::string::npos;
    EXPECT_TRUE(found);
}

TEST(SeqGen, HomopolymerPlacementWithinBounds)
{
    SequenceGenerator gen(19);
    for (int trial = 0; trial < 20; ++trial) {
        const auto s = gen.withHomopolymer("x", 100, 30, 'Q');
        ASSERT_EQ(s.length(), 100u);
        size_t run = 0, best = 0;
        for (size_t i = 0; i < s.length(); ++i) {
            if (decodeResidue(MoleculeType::Protein, s[i]) == 'Q')
                best = std::max(best, ++run);
            else
                run = 0;
        }
        EXPECT_GE(best, 30u);
    }
}

} // namespace
} // namespace afsb::bio
