/**
 * @file
 * Unit tests for molecular alphabets.
 */

#include <gtest/gtest.h>

#include "bio/alphabet.hh"
#include "util/logging.hh"

namespace afsb::bio {
namespace {

TEST(Alphabet, SizesAndSymbols)
{
    EXPECT_EQ(alphabetSize(MoleculeType::Protein), 20u);
    EXPECT_EQ(alphabetSize(MoleculeType::Dna), 4u);
    EXPECT_EQ(alphabetSize(MoleculeType::Rna), 4u);
    EXPECT_EQ(alphabetSymbols(MoleculeType::Protein).size(), 20u);
    EXPECT_EQ(alphabetSymbols(MoleculeType::Dna), "ACGT");
    EXPECT_EQ(alphabetSymbols(MoleculeType::Rna), "ACGU");
}

TEST(Alphabet, EncodeDecodeRoundTrip)
{
    for (auto type : {MoleculeType::Protein, MoleculeType::Dna,
                      MoleculeType::Rna}) {
        const auto &symbols = alphabetSymbols(type);
        for (size_t i = 0; i < symbols.size(); ++i) {
            const int code = encodeResidue(type, symbols[i]);
            ASSERT_EQ(code, static_cast<int>(i));
            EXPECT_EQ(decodeResidue(type, static_cast<uint8_t>(code)),
                      symbols[i]);
        }
    }
}

TEST(Alphabet, EncodeIsCaseInsensitive)
{
    EXPECT_EQ(encodeResidue(MoleculeType::Protein, 'q'),
              encodeResidue(MoleculeType::Protein, 'Q'));
    EXPECT_EQ(encodeResidue(MoleculeType::Dna, 'a'),
              encodeResidue(MoleculeType::Dna, 'A'));
}

TEST(Alphabet, InvalidCharactersReturnNegative)
{
    EXPECT_LT(encodeResidue(MoleculeType::Protein, 'B'), 0);
    EXPECT_LT(encodeResidue(MoleculeType::Protein, '1'), 0);
    EXPECT_LT(encodeResidue(MoleculeType::Dna, 'Q'), 0);
}

TEST(Alphabet, TandUInterchangeAcrossNucleicAcids)
{
    EXPECT_EQ(encodeResidue(MoleculeType::Rna, 'T'),
              encodeResidue(MoleculeType::Rna, 'U'));
    EXPECT_EQ(encodeResidue(MoleculeType::Dna, 'U'),
              encodeResidue(MoleculeType::Dna, 'T'));
}

TEST(Alphabet, TypeNamesRoundTrip)
{
    for (auto type : {MoleculeType::Protein, MoleculeType::Dna,
                      MoleculeType::Rna})
        EXPECT_EQ(moleculeTypeFromName(moleculeTypeName(type)), type);
    EXPECT_THROW(moleculeTypeFromName("ligand"), FatalError);
}

TEST(Alphabet, BackgroundFrequenciesSumToOne)
{
    for (auto type : {MoleculeType::Protein, MoleculeType::Dna,
                      MoleculeType::Rna}) {
        double sum = 0.0;
        for (size_t i = 0; i < alphabetSize(type); ++i)
            sum += backgroundFrequency(type, static_cast<uint8_t>(i));
        EXPECT_NEAR(sum, 1.0, 1e-3);
    }
}

} // namespace
} // namespace afsb::bio
