/**
 * @file
 * Unit tests for the low-complexity analyzer.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "bio/complexity.hh"
#include "bio/samples.hh"
#include "bio/seqgen.hh"

namespace afsb::bio {
namespace {

TEST(Complexity, HomopolymerHasZeroEntropy)
{
    const Sequence s("A", MoleculeType::Protein, std::string(50, 'Q'));
    const auto prof = analyzeComplexity(s);
    EXPECT_DOUBLE_EQ(prof.meanEntropy, 0.0);
    EXPECT_DOUBLE_EQ(prof.lowComplexityFraction, 1.0);
    EXPECT_EQ(prof.longestRun, 50u);
    EXPECT_TRUE(prof.isLowComplexity());
}

TEST(Complexity, RandomProteinIsHighComplexity)
{
    SequenceGenerator gen(42);
    const auto s = gen.random("A", MoleculeType::Protein, 400);
    const auto prof = analyzeComplexity(s);
    EXPECT_GT(prof.meanEntropy, 2.5);
    EXPECT_LT(prof.lowComplexityFraction, 0.05);
    EXPECT_FALSE(prof.isLowComplexity());
}

TEST(Complexity, PolyQInsertIsDetected)
{
    SequenceGenerator gen(43);
    const auto s = gen.withHomopolymer("A", 250, 64, 'Q');
    const auto prof = analyzeComplexity(s);
    EXPECT_GE(prof.longestRun, 64u);
    EXPECT_EQ(decodeResidue(MoleculeType::Protein, prof.runResidue),
              'Q');
    EXPECT_TRUE(prof.isLowComplexity());
}

TEST(Complexity, WindowEntropyBounds)
{
    SequenceGenerator gen(44);
    const auto s = gen.random("A", MoleculeType::Protein, 100);
    for (size_t i = 0; i + kComplexityWindow <= s.length(); i += 7) {
        const double h = windowEntropy(s, i, kComplexityWindow);
        EXPECT_GE(h, 0.0);
        EXPECT_LE(h, std::log2(20.0) + 1e-9);
    }
}

TEST(Complexity, ShortSequenceFallback)
{
    const Sequence s("A", MoleculeType::Protein, "MK");
    const auto prof = analyzeComplexity(s);
    EXPECT_GT(prof.meanEntropy, 0.0);
    EXPECT_EQ(prof.longestRun, 1u);
}

TEST(Complexity, PromoExceeds1yy9)
{
    // Observation 2 precondition: promo carries much more
    // low-complexity content than 1YY9.
    const auto promo = makeSample("promo");
    const auto yy9 = makeSample("1YY9");
    const double promoFrac =
        complexLowComplexityFraction(promo.complex);
    const double yy9Frac = complexLowComplexityFraction(yy9.complex);
    EXPECT_GT(promoFrac, 5.0 * (yy9Frac + 1e-3));
}

TEST(Complexity, EmptySequenceIsSafe)
{
    const Sequence s("A", MoleculeType::Protein, "");
    const auto prof = analyzeComplexity(s);
    EXPECT_EQ(prof.longestRun, 0u);
    EXPECT_DOUBLE_EQ(prof.meanEntropy, 0.0);
}

} // namespace
} // namespace afsb::bio
