/**
 * @file
 * Unit tests for Sequence, Complex, and FASTA round-trips.
 */

#include <gtest/gtest.h>

#include "bio/fasta.hh"
#include "bio/sequence.hh"
#include "util/logging.hh"

namespace afsb::bio {
namespace {

TEST(Sequence, EncodesAndDecodes)
{
    const Sequence s("A", MoleculeType::Protein, "MKVLQ");
    EXPECT_EQ(s.length(), 5u);
    EXPECT_EQ(s.toString(), "MKVLQ");
    EXPECT_EQ(s.id(), "A");
}

TEST(Sequence, RejectsInvalidResidues)
{
    EXPECT_THROW(Sequence("A", MoleculeType::Protein, "MKX!"),
                 FatalError);
    EXPECT_THROW(Sequence("A", MoleculeType::Dna, "ACGQ"), FatalError);
}

TEST(Sequence, Subsequence)
{
    const Sequence s("A", MoleculeType::Protein, "MKVLQWER");
    const Sequence sub = s.subsequence(2, 5, "frag");
    EXPECT_EQ(sub.toString(), "VLQ");
    EXPECT_EQ(sub.id(), "frag");
    EXPECT_EQ(s.subsequence(0, 0).length(), 0u);
}

TEST(Complex, CountsAndTotals)
{
    Complex c("test");
    c.addChain(Sequence("A", MoleculeType::Protein, "MKVL"));
    c.addChain(Sequence("B", MoleculeType::Protein, "MKVL"));
    c.addChain(Sequence("C", MoleculeType::Dna, "ACGT"));
    c.addChain(Sequence("R", MoleculeType::Rna, "ACGU"));
    EXPECT_EQ(c.chainCount(), 4u);
    EXPECT_EQ(c.chainCount(MoleculeType::Protein), 2u);
    EXPECT_EQ(c.totalResidues(), 16u);
    EXPECT_EQ(c.totalResidues(MoleculeType::Dna), 4u);
    EXPECT_EQ(c.longestChain(MoleculeType::Protein), 4u);
    EXPECT_EQ(c.longestChain(MoleculeType::Dna), 4u);
    EXPECT_TRUE(c.hasType(MoleculeType::Rna));
}

TEST(Complex, MsaChainsExcludeDna)
{
    // Paper IV-B: "additional DNA chains in promo are excluded from
    // the MSA phase".
    Complex c("test");
    c.addChain(Sequence("A", MoleculeType::Protein, "MKVL"));
    c.addChain(Sequence("C", MoleculeType::Dna, "ACGT"));
    c.addChain(Sequence("R", MoleculeType::Rna, "ACGU"));
    const auto msa = c.msaChains();
    ASSERT_EQ(msa.size(), 2u);
    EXPECT_EQ(msa[0]->id(), "A");
    EXPECT_EQ(msa[1]->id(), "R");
}

TEST(Fasta, RoundTrip)
{
    std::vector<Sequence> seqs;
    seqs.emplace_back("seq1", MoleculeType::Protein,
                      std::string(130, 'M'));
    seqs.emplace_back("seq2", MoleculeType::Protein, "MKVLQ");
    const std::string text = writeFasta(seqs, 60);
    const auto parsed = parseFasta(text, MoleculeType::Protein);
    ASSERT_EQ(parsed.size(), 2u);
    EXPECT_EQ(parsed[0].id(), "seq1");
    EXPECT_EQ(parsed[0].length(), 130u);
    EXPECT_EQ(parsed[1].toString(), "MKVLQ");
}

TEST(Fasta, HeaderTakesFirstToken)
{
    const auto seqs = parseFasta(">id1 description here\nMKV\n",
                                 MoleculeType::Protein);
    ASSERT_EQ(seqs.size(), 1u);
    EXPECT_EQ(seqs[0].id(), "id1");
}

TEST(Fasta, RejectsDataBeforeHeader)
{
    EXPECT_THROW(parseFasta("MKV\n>x\n", MoleculeType::Protein),
                 FatalError);
}

TEST(Fasta, IgnoresBlankLines)
{
    const auto seqs = parseFasta(">a\n\nMK\n\nVL\n",
                                 MoleculeType::Protein);
    ASSERT_EQ(seqs.size(), 1u);
    EXPECT_EQ(seqs[0].toString(), "MKVL");
}

} // namespace
} // namespace afsb::bio
