/**
 * @file
 * Tests that the synthesized sample suite matches the paper's
 * Table II characteristics.
 */

#include <gtest/gtest.h>

#include "bio/complexity.hh"
#include "bio/samples.hh"
#include "util/logging.hh"

namespace afsb::bio {
namespace {

struct TableIIRow
{
    const char *name;
    size_t proteinChains;
    size_t dnaChains;
    size_t rnaChains;
    size_t totalResidues;
};

class SamplesTableII : public ::testing::TestWithParam<TableIIRow>
{};

TEST_P(SamplesTableII, MatchesPublishedCharacteristics)
{
    const auto &row = GetParam();
    const auto sample = makeSample(row.name);
    const auto &c = sample.complex;
    EXPECT_EQ(c.chainCount(MoleculeType::Protein), row.proteinChains);
    EXPECT_EQ(c.chainCount(MoleculeType::Dna), row.dnaChains);
    EXPECT_EQ(c.chainCount(MoleculeType::Rna), row.rnaChains);
    EXPECT_EQ(c.totalResidues(), row.totalResidues);
}

INSTANTIATE_TEST_SUITE_P(
    TableII, SamplesTableII,
    ::testing::Values(TableIIRow{"2PV7", 2, 0, 0, 484},
                      TableIIRow{"7RCE", 1, 2, 0, 306},
                      TableIIRow{"1YY9", 3, 0, 0, 881},
                      TableIIRow{"promo", 3, 2, 0, 857},
                      TableIIRow{"6QNR", 9, 0, 1, 1395}),
    [](const auto &info) { return std::string(info.param.name); });

TEST(Samples, Deterministic)
{
    const auto a = makeSample("promo");
    const auto b = makeSample("promo");
    ASSERT_EQ(a.complex.chainCount(), b.complex.chainCount());
    for (size_t i = 0; i < a.complex.chainCount(); ++i)
        EXPECT_EQ(a.complex.chains()[i], b.complex.chains()[i]);
}

TEST(Samples, 2pv7IsSymmetricHomodimer)
{
    const auto s = makeSample("2PV7");
    ASSERT_EQ(s.complex.chainCount(), 2u);
    EXPECT_EQ(s.complex.chains()[0].toString(),
              s.complex.chains()[1].toString());
    EXPECT_NE(s.complex.chains()[0].id(), s.complex.chains()[1].id());
}

TEST(Samples, PromoChainAHasPolyQ)
{
    const auto s = makeSample("promo");
    const auto prof = analyzeComplexity(s.complex.chains()[0]);
    EXPECT_GE(prof.longestRun, 64u);
    EXPECT_EQ(decodeResidue(MoleculeType::Protein, prof.runResidue),
              'Q');
}

TEST(Samples, MakeAllReturnsTableIIOrder)
{
    const auto all = makeAllSamples();
    ASSERT_EQ(all.size(), 5u);
    EXPECT_EQ(all[0].info.name, "2PV7");
    EXPECT_EQ(all[4].info.name, "6QNR");
    EXPECT_THROW(makeSample("XXXX"), FatalError);
}

TEST(Samples, RibosomalRnaPrefixesNest)
{
    const auto shortRna = makeRibosomalRna(621);
    const auto longRna = makeRibosomalRna(935);
    EXPECT_EQ(shortRna.length(), 621u);
    EXPECT_EQ(longRna.length(), 935u);
    // Longer inputs strictly extend shorter ones.
    for (size_t i = 0; i < shortRna.length(); ++i)
        ASSERT_EQ(shortRna[i], longRna[i]);
    EXPECT_THROW(makeRibosomalRna(4096), FatalError);
}

TEST(Samples, ProteinProbeLengths)
{
    EXPECT_EQ(makeProteinProbe(1000).totalResidues(), 1000u);
    EXPECT_EQ(makeProteinProbe(2000).totalResidues(), 2000u);
}

} // namespace
} // namespace afsb::bio
