/**
 * @file
 * Unit tests for the AF3 JSON input schema.
 */

#include <gtest/gtest.h>

#include "bio/input_spec.hh"
#include "util/logging.hh"

namespace afsb::bio {
namespace {

TEST(InputSpec, ParsesMixedComplex)
{
    const auto spec = parseInputJson(R"({
        "name": "7RCE",
        "modelSeeds": [7, 8],
        "sequences": [
            {"protein": {"id": "A", "sequence": "MKVLQ"}},
            {"dna": {"id": "C", "sequence": "ACGTAC"}},
            {"dna": {"id": "D", "sequence": "GTACGT"}}
        ]
    })");
    EXPECT_EQ(spec.complex.name(), "7RCE");
    EXPECT_EQ(spec.complex.chainCount(), 3u);
    EXPECT_EQ(spec.complex.chainCount(MoleculeType::Dna), 2u);
    EXPECT_EQ(spec.complex.totalResidues(), 17u);
    ASSERT_EQ(spec.modelSeeds.size(), 2u);
    EXPECT_EQ(spec.primarySeed(), 7u);
}

TEST(InputSpec, IdArrayReplicatesChain)
{
    const auto spec = parseInputJson(R"({
        "name": "2PV7",
        "sequences": [
            {"protein": {"id": ["A", "B"], "sequence": "MKVLQ"}}
        ]
    })");
    EXPECT_EQ(spec.complex.chainCount(), 2u);
    EXPECT_EQ(spec.complex.chains()[0].id(), "A");
    EXPECT_EQ(spec.complex.chains()[1].id(), "B");
    EXPECT_EQ(spec.complex.chains()[0].toString(),
              spec.complex.chains()[1].toString());
    EXPECT_EQ(spec.primarySeed(), 1u);
}

TEST(InputSpec, RoundTripsThroughJson)
{
    Complex c("roundtrip");
    c.addChain(Sequence("A", MoleculeType::Protein, "MKVL"));
    c.addChain(Sequence("R", MoleculeType::Rna, "ACGU"));
    const auto json = toInputJson(c, {5});
    const auto spec = parseInputJson(json.dump());
    EXPECT_EQ(spec.complex.name(), "roundtrip");
    EXPECT_EQ(spec.complex.chainCount(), 2u);
    EXPECT_EQ(spec.complex.chains()[1].toString(), "ACGU");
    EXPECT_EQ(spec.primarySeed(), 5u);
}

TEST(InputSpec, RejectsBadSchema)
{
    EXPECT_THROW(parseInputJson(R"({"name": "x"})"), FatalError);
    EXPECT_THROW(parseInputJson(R"({"name":"x","sequences":[]})"),
                 FatalError);
    EXPECT_THROW(
        parseInputJson(
            R"({"name":"x","sequences":[{"ligand":{"id":"A","sequence":"M"}}]})"),
        FatalError);
    EXPECT_THROW(
        parseInputJson(
            R"({"name":"x","sequences":[{"protein":{"id":"A"}}]})"),
        FatalError);
    EXPECT_THROW(
        parseInputJson(
            R"({"name":"x","sequences":[{"protein":{"id":7,"sequence":"M"}}]})"),
        FatalError);
}

} // namespace
} // namespace afsb::bio
