/**
 * @file
 * Unit tests for the virtual file store.
 */

#include <gtest/gtest.h>

#include "io/vfs.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace afsb::io {
namespace {

TEST(Vfs, CreateAndRead)
{
    Vfs vfs;
    const FileId id = vfs.createFile("db.fasta", ">a\nMKV\n");
    EXPECT_EQ(vfs.size(id), 7u);
    EXPECT_FALSE(vfs.isPhantom(id));
    EXPECT_EQ(vfs.name(id), "db.fasta");

    char buf[16] = {};
    EXPECT_EQ(vfs.read(id, 0, buf, 8), 7u);
    EXPECT_EQ(std::string(buf, 7), ">a\nMKV\n");
}

TEST(Vfs, PartialAndOutOfRangeReads)
{
    Vfs vfs;
    const FileId id = vfs.createFile("f", "0123456789");
    char buf[16] = {};
    EXPECT_EQ(vfs.read(id, 7, buf, 10), 3u);
    EXPECT_EQ(std::string(buf, 3), "789");
    EXPECT_EQ(vfs.read(id, 10, buf, 4), 0u);
    EXPECT_EQ(vfs.read(id, 100, buf, 4), 0u);
}

TEST(Vfs, PhantomFilesHaveSizeButNoBytes)
{
    Vfs vfs;
    const FileId id = vfs.createPhantom("rna_db", 89 * GiB);
    EXPECT_TRUE(vfs.isPhantom(id));
    EXPECT_EQ(vfs.size(id), 89 * GiB);
    char buf[8];
    EXPECT_EQ(vfs.read(id, 0, buf, 8), 0u);
}

TEST(Vfs, OpenByNameAndExistence)
{
    Vfs vfs;
    vfs.createFile("a", "x");
    EXPECT_TRUE(vfs.exists("a"));
    EXPECT_FALSE(vfs.exists("b"));
    ASSERT_TRUE(vfs.open("a").has_value());
    EXPECT_EQ(*vfs.open("a"), 0u);
    // A missing file is a recoverable error, not a fatal() — the
    // serving path's injected open failures must propagate.
    EXPECT_FALSE(vfs.open("b").has_value());
}

TEST(Vfs, ReplaceKeepsId)
{
    Vfs vfs;
    const FileId id = vfs.createFile("a", "old");
    const FileId id2 = vfs.createFile("a", "newer");
    EXPECT_EQ(id, id2);
    EXPECT_EQ(vfs.size(id), 5u);
    EXPECT_EQ(vfs.fileCount(), 1u);
}

TEST(Vfs, TotalBytesIncludesPhantoms)
{
    Vfs vfs;
    vfs.createFile("a", "abc");
    vfs.createPhantom("b", 1000);
    EXPECT_EQ(vfs.totalBytes(), 1003u);
}

} // namespace
} // namespace afsb::io
