/**
 * @file
 * Unit tests for the storage device and iostat-style metrics.
 */

#include <gtest/gtest.h>

#include "io/storage.hh"

namespace afsb::io {
namespace {

StorageSpec
testSpec()
{
    StorageSpec spec;
    spec.seqReadBandwidth = 1e9;  // 1 GB/s for round numbers
    spec.baseLatency = 100e-6;
    return spec;
}

TEST(Storage, SingleReadLatency)
{
    StorageDevice dev(testSpec());
    // 1 MB at 1 GB/s = 1 ms service + 0.1 ms base.
    const double lat = dev.read(1'000'000, 0.0);
    EXPECT_NEAR(lat, 1.1e-3, 1e-9);
}

TEST(Storage, QueueingDelaysBackToBackReads)
{
    StorageDevice dev(testSpec());
    const double lat1 = dev.read(10'000'000, 0.0);  // 10 ms service
    const double lat2 = dev.read(10'000'000, 0.0);  // queued behind
    EXPECT_GT(lat2, lat1);
    EXPECT_NEAR(lat2, 0.0001 + 0.010 + 0.010, 1e-9);
}

TEST(Storage, UtilizationReflectsBusyFraction)
{
    StorageDevice dev(testSpec());
    dev.read(100'000'000, 0.0);  // 100 ms busy
    const auto stats = dev.collect(1.0);  // 1 s window
    EXPECT_NEAR(stats.utilizationPct(), 10.0, 0.1);
    EXPECT_EQ(stats.bytesRead, 100'000'000u);
    EXPECT_EQ(stats.readRequests, 1u);
}

TEST(Storage, UtilizationCapsAt100)
{
    StorageDevice dev(testSpec());
    for (int i = 0; i < 20; ++i)
        dev.read(100'000'000, 0.0);
    const auto stats = dev.collect(1.0);
    EXPECT_DOUBLE_EQ(stats.utilizationPct(), 100.0);
}

TEST(Storage, CollectResetsWindow)
{
    StorageDevice dev(testSpec());
    dev.read(1000, 0.0);
    (void)dev.collect(1.0);
    const auto stats = dev.collect(2.0);
    EXPECT_EQ(stats.readRequests, 0u);
    EXPECT_NEAR(stats.windowTime, 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(stats.utilizationPct(), 0.0);
}

TEST(Storage, RAwaitAveragesLatency)
{
    StorageDevice dev(testSpec());
    dev.read(1'000'000, 0.0);
    dev.read(1'000'000, 10.0);  // far apart: no queueing
    const auto stats = dev.peek(20.0);
    EXPECT_NEAR(stats.rAwait(), 1.1e-3, 1e-9);
}

TEST(Storage, EmptyWindowIsSafe)
{
    StorageDevice dev(testSpec());
    const auto stats = dev.peek(0.0);
    EXPECT_DOUBLE_EQ(stats.utilizationPct(), 0.0);
    EXPECT_DOUBLE_EQ(stats.rAwait(), 0.0);
    EXPECT_DOUBLE_EQ(stats.readThroughput(), 0.0);
}

} // namespace
} // namespace afsb::io
