/**
 * @file
 * Unit tests for the storage device and iostat-style metrics.
 */

#include <gtest/gtest.h>

#include "io/storage.hh"

namespace afsb::io {
namespace {

StorageSpec
testSpec()
{
    StorageSpec spec;
    spec.seqReadBandwidth = 1e9;  // 1 GB/s for round numbers
    spec.baseLatency = 100e-6;
    return spec;
}

TEST(Storage, SingleReadLatency)
{
    StorageDevice dev(testSpec());
    // 1 MB at 1 GB/s = 1 ms service + 0.1 ms base.
    const double lat = dev.read(1'000'000, 0.0);
    EXPECT_NEAR(lat, 1.1e-3, 1e-9);
}

TEST(Storage, QueueingDelaysBackToBackReads)
{
    StorageDevice dev(testSpec());
    const double lat1 = dev.read(10'000'000, 0.0);  // 10 ms service
    const double lat2 = dev.read(10'000'000, 0.0);  // queued behind
    EXPECT_GT(lat2, lat1);
    EXPECT_NEAR(lat2, 0.0001 + 0.010 + 0.010, 1e-9);
}

TEST(Storage, UtilizationReflectsBusyFraction)
{
    StorageDevice dev(testSpec());
    dev.read(100'000'000, 0.0);  // 100 ms busy
    const auto stats = dev.collect(1.0);  // 1 s window
    EXPECT_NEAR(stats.utilizationPct(), 10.0, 0.1);
    EXPECT_EQ(stats.bytesRead, 100'000'000u);
    EXPECT_EQ(stats.readRequests, 1u);
}

TEST(Storage, UtilizationCapsAt100)
{
    StorageDevice dev(testSpec());
    for (int i = 0; i < 20; ++i)
        dev.read(100'000'000, 0.0);
    const auto stats = dev.collect(1.0);
    EXPECT_DOUBLE_EQ(stats.utilizationPct(), 100.0);
}

TEST(Storage, CollectResetsWindow)
{
    StorageDevice dev(testSpec());
    dev.read(1000, 0.0);
    (void)dev.collect(1.0);
    const auto stats = dev.collect(2.0);
    EXPECT_EQ(stats.readRequests, 0u);
    EXPECT_NEAR(stats.windowTime, 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(stats.utilizationPct(), 0.0);
}

TEST(Storage, RAwaitAveragesLatency)
{
    StorageDevice dev(testSpec());
    dev.read(1'000'000, 0.0);
    dev.read(1'000'000, 10.0);  // far apart: no queueing
    const auto stats = dev.peek(20.0);
    EXPECT_NEAR(stats.rAwait(), 1.1e-3, 1e-9);
}

TEST(Storage, EmptyWindowIsSafe)
{
    StorageDevice dev(testSpec());
    const auto stats = dev.peek(0.0);
    EXPECT_DOUBLE_EQ(stats.utilizationPct(), 0.0);
    EXPECT_DOUBLE_EQ(stats.rAwait(), 0.0);
    EXPECT_DOUBLE_EQ(stats.readThroughput(), 0.0);
}

/** Scriptable hook: fail or stretch the next reads on demand. */
class ScriptedFaultHook : public StorageFaultHook
{
  public:
    bool fail = false;
    double factor = 1.0;

    bool readFails() override { return fail; }
    double latencyFactor() override { return factor; }
};

TEST(Storage, FaultHookLatencySpikeStretchesService)
{
    StorageDevice dev(testSpec());
    ScriptedFaultHook hook;
    hook.factor = 8.0;
    dev.setFaultHook(&hook);
    // 1 MB at 1 GB/s = 1 ms service, spiked 8x, plus 0.1 ms base.
    const auto out = dev.readChecked(1'000'000, 0.0);
    EXPECT_FALSE(out.failed);
    EXPECT_NEAR(out.latency, 0.0001 + 0.008, 1e-9);
    EXPECT_EQ(dev.peek(1.0).readErrors, 0u);
}

TEST(Storage, FaultHookReadErrorCountsAndOccupiesDevice)
{
    StorageDevice dev(testSpec());
    ScriptedFaultHook hook;
    hook.fail = true;
    dev.setFaultHook(&hook);
    const auto bad = dev.readChecked(10'000'000, 0.0);
    EXPECT_TRUE(bad.failed);
    // The failed read still held the device: a back-to-back retry
    // queues behind it.
    hook.fail = false;
    const auto retry = dev.readChecked(10'000'000, 0.0);
    EXPECT_FALSE(retry.failed);
    EXPECT_GT(retry.latency, bad.latency);
    const auto stats = dev.peek(1.0);
    EXPECT_EQ(stats.readErrors, 1u);
    EXPECT_EQ(stats.readRequests, 2u);
}

TEST(Storage, ClearingFaultHookRestoresHealth)
{
    StorageDevice dev(testSpec());
    ScriptedFaultHook hook;
    hook.fail = true;
    dev.setFaultHook(&hook);
    EXPECT_TRUE(dev.readChecked(1000, 0.0).failed);
    dev.setFaultHook(nullptr);
    EXPECT_FALSE(dev.readChecked(1000, 10.0).failed);
    // The unchecked read() path stays usable throughout.
    EXPECT_GT(dev.read(1000, 20.0), 0.0);
}

} // namespace
} // namespace afsb::io
