/**
 * @file
 * Unit tests for the page-cache model.
 */

#include <gtest/gtest.h>

#include "io/pagecache.hh"
#include "util/units.hh"

namespace afsb::io {
namespace {

constexpr uint64_t kExt = PageCache::kExtentSize;

TEST(PageCache, ColdReadGoesToDisk)
{
    StorageDevice dev;
    PageCache cache(64 * MiB, &dev);
    const auto r = cache.read(0, 0, kExt, 0.0);
    EXPECT_EQ(r.bytesFromCache, 0u);
    EXPECT_EQ(r.bytesFromDisk, kExt);
    EXPECT_GT(r.latency, 0.0);
}

TEST(PageCache, WarmReadHitsCache)
{
    StorageDevice dev;
    PageCache cache(64 * MiB, &dev);
    (void)cache.read(0, 0, kExt, 0.0);
    const auto r = cache.read(0, 0, kExt, 1.0);
    EXPECT_EQ(r.bytesFromCache, kExt);
    EXPECT_EQ(r.bytesFromDisk, 0u);
    EXPECT_DOUBLE_EQ(r.latency, 0.0);
}

TEST(PageCache, CapacityEviction)
{
    StorageDevice dev;
    PageCache cache(4 * kExt, &dev);
    // Fill 4 extents of file 0, then 2 more evict the oldest two.
    (void)cache.read(0, 0, 4 * kExt, 0.0);
    EXPECT_EQ(cache.residentBytes(), 4 * kExt);
    (void)cache.read(0, 4 * kExt, 2 * kExt, 1.0);
    EXPECT_EQ(cache.residentBytes(), 4 * kExt);
    // Extents 0 and 1 were evicted; re-reading them misses.
    const auto r = cache.read(0, 0, 2 * kExt, 2.0);
    EXPECT_EQ(r.bytesFromDisk, 2 * kExt);
}

TEST(PageCache, LruKeepsRecentlyTouched)
{
    StorageDevice dev;
    PageCache cache(2 * kExt, &dev);
    (void)cache.read(0, 0, kExt, 0.0);        // extent 0
    (void)cache.read(0, kExt, kExt, 1.0);     // extent 1
    (void)cache.read(0, 0, kExt, 2.0);        // touch 0 (now MRU)
    (void)cache.read(0, 2 * kExt, kExt, 3.0); // evicts extent 1
    const auto r0 = cache.read(0, 0, kExt, 4.0);
    EXPECT_EQ(r0.bytesFromCache, kExt);
    const auto r1 = cache.read(0, kExt, kExt, 5.0);
    EXPECT_EQ(r1.bytesFromDisk, kExt);
}

TEST(PageCache, WarmPreloadsWholeFile)
{
    StorageDevice dev;
    PageCache cache(1 * GiB, &dev);
    const uint64_t fileSize = 100 * MiB;
    const double lat = cache.warm(7, fileSize, 0.0);
    EXPECT_GT(lat, 0.0);
    // Every subsequent read hits.
    const auto r = cache.read(7, 0, fileSize, 1.0);
    EXPECT_EQ(r.bytesFromDisk, 0u);
    EXPECT_GE(cache.residentBytes(), fileSize);
}

TEST(PageCache, SeparateFilesDoNotAlias)
{
    StorageDevice dev;
    PageCache cache(64 * MiB, &dev);
    (void)cache.read(1, 0, kExt, 0.0);
    const auto r = cache.read(2, 0, kExt, 1.0);
    EXPECT_EQ(r.bytesFromDisk, kExt);
}

TEST(PageCache, HitRatioTracksBytes)
{
    StorageDevice dev;
    PageCache cache(64 * MiB, &dev);
    (void)cache.read(0, 0, kExt, 0.0);
    (void)cache.read(0, 0, kExt, 1.0);
    (void)cache.read(0, 0, kExt, 2.0);
    EXPECT_NEAR(cache.hitRatio(), 2.0 / 3.0, 1e-9);
}

TEST(PageCache, DropAllEmptiesCache)
{
    StorageDevice dev;
    PageCache cache(64 * MiB, &dev);
    (void)cache.read(0, 0, 4 * kExt, 0.0);
    cache.dropAll();
    EXPECT_EQ(cache.residentBytes(), 0u);
    const auto r = cache.read(0, 0, kExt, 1.0);
    EXPECT_EQ(r.bytesFromDisk, kExt);
}

TEST(PageCache, ShrinkEvictsImmediately)
{
    StorageDevice dev;
    PageCache cache(8 * kExt, &dev);
    (void)cache.read(0, 0, 8 * kExt, 0.0);
    cache.setCapacity(3 * kExt);
    EXPECT_LE(cache.residentBytes(), 3 * kExt);
}

} // namespace
} // namespace afsb::io
