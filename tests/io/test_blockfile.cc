/**
 * @file
 * Block-compressed container (AFBC) tests: codec round-trips, the
 * container's random-access and line-reader views against the raw
 * bytes, decode-LRU residency under a budget, and the malformed-
 * container error paths.
 */

#include <gtest/gtest.h>

#include <random>

#include "io/blockfile.hh"
#include "io/pagecache.hh"
#include "io/storage.hh"
#include "io/vfs.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace afsb::io {
namespace {

std::string
patternedText(size_t lines)
{
    // Compressible: FASTA-ish repeated motifs with varying ids.
    std::string s;
    for (size_t i = 0; i < lines; ++i) {
        s += ">seq_" + std::to_string(i) + "\n";
        for (size_t j = 0; j < 3; ++j)
            s += "ACDEFGHIKLMNPQRSTVWYACDEFGHIKLMNPQRSTVWY\n";
    }
    return s;
}

std::string
randomBytes(size_t n, uint32_t seed)
{
    std::mt19937 rng(seed);
    std::string s(n, '\0');
    for (auto &c : s)
        c = static_cast<char>(rng() & 0xff);
    return s;
}

TEST(BlockFile, CodecRoundTripsCompressibleInput)
{
    const std::string raw = patternedText(200);
    const std::string comp = compressBlock(raw);
    EXPECT_LT(comp.size(), raw.size() / 2); // repeats must compress
    EXPECT_EQ(decompressBlock(comp, raw.size()), raw);
}

TEST(BlockFile, CodecRoundTripsIncompressibleInput)
{
    const std::string raw = randomBytes(50000, 42);
    const std::string comp = compressBlock(raw);
    EXPECT_EQ(decompressBlock(comp, raw.size()), raw);
}

TEST(BlockFile, CodecHandlesEmptyAndTinyInputs)
{
    EXPECT_EQ(compressBlock(""), "");
    EXPECT_EQ(decompressBlock("", 0), "");
    for (const std::string raw : {"a", "ab", "abc", "\n\n\n\n\n\n"}) {
        const std::string comp = compressBlock(raw);
        EXPECT_EQ(decompressBlock(comp, raw.size()), raw);
    }
}

TEST(BlockFile, CodecRejectsCorruptStream)
{
    const std::string raw = patternedText(50);
    std::string comp = compressBlock(raw);
    comp.resize(comp.size() / 2); // truncation
    EXPECT_THROW(decompressBlock(comp, raw.size()), FatalError);
}

struct BlockFileReaderTest : public ::testing::Test
{
    BlockFileReaderTest() : cache(64 * MiB, &dev) {}

    FileId
    write(const std::string &raw, size_t block_size)
    {
        return writeBlockFile(vfs, "t.afbc", raw, block_size, &st);
    }

    Vfs vfs;
    StorageDevice dev;
    PageCache cache;
    BlockFileStats st;
};

TEST_F(BlockFileReaderTest, ReadAtMatchesRawEverywhere)
{
    const std::string raw = patternedText(300);
    const FileId id = write(raw, 4096);
    BlockFileReader rd(&vfs, &cache, id, 1 * MiB);
    EXPECT_EQ(rd.rawSize(), raw.size());
    EXPECT_EQ(rd.blockCount(), (raw.size() + 4095) / 4096);

    std::string whole(raw.size(), '\0');
    EXPECT_EQ(rd.readAt(0, whole.data(), whole.size(), 0.0),
              whole.size());
    EXPECT_EQ(whole, raw);

    // Unaligned reads spanning block boundaries.
    char buf[1000];
    for (uint64_t off : {uint64_t{1}, uint64_t{4090},
                         uint64_t{raw.size() - 10}}) {
        const size_t got = rd.readAt(off, buf, sizeof(buf), 0.0);
        EXPECT_EQ(got, std::min<uint64_t>(sizeof(buf),
                                          raw.size() - off));
        EXPECT_EQ(std::string(buf, got), raw.substr(off, got));
    }
    EXPECT_EQ(rd.readAt(raw.size(), buf, sizeof(buf), 0.0), 0u);
}

TEST_F(BlockFileReaderTest, ReadLineMatchesLineSplitOfRaw)
{
    const std::string raw = patternedText(100) + "unterminated";
    const FileId id = write(raw, 512); // lines span blocks
    BlockFileReader rd(&vfs, &cache, id, 1 * MiB);

    std::vector<std::string> expect;
    size_t start = 0;
    while (start < raw.size()) {
        size_t nl = raw.find('\n', start);
        if (nl == std::string::npos) {
            expect.push_back(raw.substr(start));
            break;
        }
        expect.push_back(raw.substr(start, nl - start));
        start = nl + 1;
    }

    std::vector<std::string> got;
    std::string line;
    while (rd.readLine(line, 0.0))
        got.push_back(line);
    EXPECT_EQ(got, expect);
}

TEST_F(BlockFileReaderTest, DecodeBudgetBoundsResidency)
{
    const std::string raw = randomBytes(512 * KiB, 7);
    const size_t blockSize = 16 * KiB;
    const uint64_t budget = 48 * KiB;
    const FileId id = write(raw, blockSize);
    BlockFileReader rd(&vfs, &cache, id, budget);

    // Strided back-and-forth access: far more unique blocks than the
    // budget holds.
    std::mt19937 rng(3);
    char buf[256];
    for (int i = 0; i < 400; ++i) {
        const uint64_t off = rng() % (raw.size() - sizeof(buf));
        const size_t got = rd.readAt(off, buf, sizeof(buf), 0.0);
        ASSERT_EQ(got, sizeof(buf));
        ASSERT_EQ(std::string(buf, got), raw.substr(off, got));
    }
    EXPECT_GT(rd.stats().blocksDecoded,
              raw.size() / blockSize); // re-decodes happened
    // Peak = decoded blocks (may momentarily overshoot by the block
    // just decoded) + the compressed-side reader window.
    EXPECT_LE(rd.stats().peakResidentBytes,
              budget + blockSize + BufferedReader::kBufferSize);
}

TEST_F(BlockFileReaderTest, RepeatedAccessHitsDecodeCache)
{
    const std::string raw = patternedText(200);
    const FileId id = write(raw, 4096);
    BlockFileReader rd(&vfs, &cache, id, 1 * MiB);
    char buf[64];
    for (int i = 0; i < 10; ++i)
        rd.readAt(0, buf, sizeof(buf), 0.0);
    EXPECT_EQ(rd.stats().blocksDecoded, 1u);
    EXPECT_EQ(rd.stats().blockHits, 9u);
}

TEST_F(BlockFileReaderTest, RejectsMalformedContainers)
{
    const FileId garbage =
        vfs.createFile("garbage.bin", "this is not an AFBC file..!");
    EXPECT_THROW(BlockFileReader(&vfs, &cache, garbage, 1 * MiB),
                 FatalError);

    const FileId shortFile = vfs.createFile("short.bin", "AFBC");
    EXPECT_THROW(BlockFileReader(&vfs, &cache, shortFile, 1 * MiB),
                 FatalError);

    std::string packed = packBlockFile(patternedText(10), 4096);
    packed[4] = 99; // version byte
    const FileId badVersion = vfs.createFile("badver.afbc", packed);
    EXPECT_THROW(BlockFileReader(&vfs, &cache, badVersion, 1 * MiB),
                 FatalError);
}

TEST_F(BlockFileReaderTest, StatsTrackCompressionRatio)
{
    const std::string raw = patternedText(300);
    write(raw, kBlockFileBlockSize);
    EXPECT_EQ(st.rawBytes, raw.size());
    EXPECT_GT(st.compressedBytes, 0u);
    EXPECT_GT(st.ratio(), 1.5); // repeated motifs compress well
}

} // namespace
} // namespace afsb::io
