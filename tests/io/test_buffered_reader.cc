/**
 * @file
 * Unit tests for the buffered reader (addbuf/seebuf/copy_to_iter).
 */

#include <gtest/gtest.h>

#include <vector>

#include "io/buffered_reader.hh"
#include "util/units.hh"

namespace afsb::io {
namespace {

/** Sink that counts accesses per function. */
class CountingSink : public MemTraceSink
{
  public:
    void
    access(const MemAccess &a) override
    {
        counts.resize(
            std::max<size_t>(counts.size(), a.func + size_t{1}), 0);
        ++counts[a.func];
    }

    void
    instructions(FuncId func, uint64_t n) override
    {
        instr.resize(std::max<size_t>(instr.size(), func + size_t{1}),
                     0);
        instr[func] += n;
    }

    void branches(FuncId, uint64_t, uint64_t) override {}

    std::vector<uint64_t> counts;
    std::vector<uint64_t> instr;
};

struct Fixture
{
    Vfs vfs;
    StorageDevice dev;
    PageCache cache{64 * MiB, &dev};
};

TEST(BufferedReader, ReadsLines)
{
    Fixture f;
    const FileId id = f.vfs.createFile("f", "line1\nline2\n\nline4");
    BufferedReader reader(&f.vfs, &f.cache, id);
    std::string line;
    ASSERT_TRUE(reader.readLine(line, 0.0));
    EXPECT_EQ(line, "line1");
    ASSERT_TRUE(reader.readLine(line, 0.0));
    EXPECT_EQ(line, "line2");
    ASSERT_TRUE(reader.readLine(line, 0.0));
    EXPECT_EQ(line, "");
    ASSERT_TRUE(reader.readLine(line, 0.0));
    EXPECT_EQ(line, "line4");
    EXPECT_FALSE(reader.readLine(line, 0.0));
    EXPECT_TRUE(reader.eof());
    EXPECT_EQ(reader.stats().linesRead, 4u);
}

TEST(BufferedReader, LinesSpanningBufferBoundary)
{
    Fixture f;
    // One line longer than the 256 KiB window.
    const std::string longLine(300 * 1024, 'A');
    const FileId id =
        f.vfs.createFile("f", longLine + "\nshort\n");
    BufferedReader reader(&f.vfs, &f.cache, id);
    std::string line;
    ASSERT_TRUE(reader.readLine(line, 0.0));
    EXPECT_EQ(line.size(), longLine.size());
    EXPECT_EQ(line, longLine);
    ASSERT_TRUE(reader.readLine(line, 0.0));
    EXPECT_EQ(line, "short");
    EXPECT_GE(reader.stats().refills, 2u);
}

TEST(BufferedReader, CopyToIterMovesExactBytes)
{
    Fixture f;
    std::string payload;
    for (int i = 0; i < 1000; ++i)
        payload += static_cast<char>('a' + i % 26);
    const FileId id = f.vfs.createFile("f", payload);
    BufferedReader reader(&f.vfs, &f.cache, id);
    std::vector<char> dst(payload.size());
    EXPECT_EQ(reader.copyToIter(dst.data(), dst.size(), 0.0),
              payload.size());
    EXPECT_EQ(std::string(dst.begin(), dst.end()), payload);
    EXPECT_EQ(reader.stats().bytesCopied, payload.size());
    // Further copies return 0 at EOF.
    EXPECT_EQ(reader.copyToIter(dst.data(), 10, 0.0), 0u);
}

TEST(BufferedReader, SeebufPeeksWithoutConsuming)
{
    Fixture f;
    const FileId id = f.vfs.createFile("f", "ABCDEFG");
    BufferedReader reader(&f.vfs, &f.cache, id);
    const auto peek = reader.seebuf(3, 0.0);
    EXPECT_EQ(std::string(peek), "ABC");
    std::string line;
    ASSERT_TRUE(reader.readLine(line, 0.0));
    EXPECT_EQ(line, "ABCDEFG");
}

TEST(BufferedReader, TraceSinkSeesWellKnownFunctions)
{
    Fixture f;
    const std::string payload(8192, 'x');
    const FileId id = f.vfs.createFile("f", payload);
    CountingSink sink;
    BufferedReader reader(&f.vfs, &f.cache, id, &sink);
    std::vector<char> dst(payload.size());
    reader.copyToIter(dst.data(), dst.size(), 0.0);

    const FuncId copyId = wellknown::copyToIter();
    ASSERT_LT(copyId, sink.counts.size());
    // 8192 bytes / 64 B per line, touched on fill and on copy-out.
    EXPECT_GE(sink.counts[copyId], 2 * 8192u / 64);
    const FuncId addbufId = wellknown::addbuf();
    ASSERT_LT(addbufId, sink.instr.size());
    EXPECT_GT(sink.instr[addbufId], 0u);
}

TEST(BufferedReader, IoLatencyAccumulates)
{
    Fixture f;
    const FileId id =
        f.vfs.createFile("f", std::string(2 * MiB, 'q'));
    BufferedReader reader(&f.vfs, &f.cache, id);
    std::vector<char> dst(2 * MiB);
    reader.copyToIter(dst.data(), dst.size(), 0.0);
    EXPECT_GT(reader.stats().ioLatency, 0.0);
}

TEST(BufferedReader, PhantomFileYieldsZeroBytesWithTiming)
{
    Fixture f;
    const FileId id = f.vfs.createPhantom("huge", 1 * MiB);
    BufferedReader reader(&f.vfs, &f.cache, id);
    std::vector<char> dst(1024, 'z');
    EXPECT_EQ(reader.copyToIter(dst.data(), 1024, 0.0), 1024u);
    EXPECT_EQ(dst[0], '\0');
    EXPECT_GT(reader.stats().ioLatency, 0.0);
}

TEST(BufferedReader, EmptyFile)
{
    Fixture f;
    const FileId id = f.vfs.createFile("empty", "");
    BufferedReader reader(&f.vfs, &f.cache, id);
    std::string line;
    EXPECT_FALSE(reader.readLine(line, 0.0));
    EXPECT_TRUE(reader.eof());
}

/** Hook that fails every device read. */
class FailingHook : public StorageFaultHook
{
  public:
    bool readFails() override { return true; }
};

TEST(BufferedReader, StorageReadErrorPoisonsStream)
{
    Fixture f;
    FailingHook hook;
    f.dev.setFaultHook(&hook);
    const FileId id = f.vfs.createFile("f", "line1\nline2\n");
    BufferedReader reader(&f.vfs, &f.cache, id);
    std::string line;
    EXPECT_FALSE(reader.readLine(line, 0.0));
    EXPECT_TRUE(reader.failed());
    EXPECT_GE(reader.stats().readErrors, 1u);
    // The poisoned stream yields nothing more, ever.
    EXPECT_FALSE(reader.readLine(line, 0.0));
    char buf[16];
    EXPECT_EQ(reader.copyToIter(buf, sizeof(buf), 0.0), 0u);
}

TEST(BufferedReader, HealthyDeviceAfterFaultyRunStartsClean)
{
    Fixture f;
    FailingHook hook;
    f.dev.setFaultHook(&hook);
    const FileId id = f.vfs.createFile("f", "data\n");
    {
        BufferedReader reader(&f.vfs, &f.cache, id);
        std::string line;
        EXPECT_FALSE(reader.readLine(line, 0.0));
    }
    f.dev.setFaultHook(nullptr);
    BufferedReader reader(&f.vfs, &f.cache, id);
    std::string line;
    ASSERT_TRUE(reader.readLine(line, 0.0));
    EXPECT_EQ(line, "data");
    EXPECT_FALSE(reader.failed());
}

} // namespace
} // namespace afsb::io
