/**
 * @file
 * Golden-file tests: the canonical text dumps of the Pairformer and
 * diffusion subgraphs at two sizes are committed under
 * tests/opgraph/goldens/ and byte-compared here. Run the test
 * binary with `--update-goldens` to regenerate them after an
 * intentional cost-model or format change — the diff then shows a
 * reviewer exactly which ops moved.
 */

#include <string>

#include <gtest/gtest.h>

#include "io/textfile.hh"
#include "opgraph/build.hh"
#include "opgraph/ir.hh"

using namespace afsb;

namespace afsb::test {
extern bool updateGoldens;
}

namespace {

struct GoldenCase
{
    const char *module;
    size_t tokens;
};

constexpr GoldenCase kCases[] = {
    {"pairformer", 256},
    {"pairformer", 1024},
    {"diffusion", 256},
    {"diffusion", 1024},
};

opgraph::OpGraph
buildCase(const GoldenCase &c)
{
    const model::ModelConfig cfg;
    return std::string(c.module) == "pairformer"
               ? opgraph::buildPairformerGraph(c.tokens, cfg)
               : opgraph::buildDiffusionGraph(c.tokens, cfg);
}

std::string
goldenPath(const GoldenCase &c)
{
    return std::string(AFSB_REPO_ROOT) +
           "/tests/opgraph/goldens/" + c.module + "_" +
           std::to_string(c.tokens) + ".txt";
}

} // namespace

TEST(OpGraphGoldens, CanonicalDumpsMatchCommittedFiles)
{
    for (const auto &c : kCases) {
        const std::string rendered =
            opgraph::render(buildCase(c));
        const std::string path = goldenPath(c);
        if (test::updateGoldens) {
            io::writeTextFile(path, rendered);
            continue;
        }
        const std::string golden = io::readTextFile(path);
        EXPECT_EQ(rendered, golden)
            << path << " is stale; run test_opgraph "
            << "--update-goldens and review the diff";
    }
}

TEST(OpGraphGoldens, CommittedFilesParseBackToTheBuiltGraph)
{
    if (test::updateGoldens)
        GTEST_SKIP() << "regenerating goldens";
    for (const auto &c : kCases) {
        const auto parsed =
            opgraph::parse(io::readTextFile(goldenPath(c)));
        EXPECT_EQ(parsed, buildCase(c)) << goldenPath(c);
    }
}
