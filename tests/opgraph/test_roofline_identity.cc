/**
 * @file
 * Bit-identity contract of the IR-driven roofline: the simulator
 * consuming opgraph IR must produce byte-identical seconds to the
 * pre-IR inline path. The legacy path is replicated here verbatim —
 * model::operatorGraph + the retained vector<LayerInstance>
 * evaluateXlaPhases overload + the same GpuDevice replay loop — and
 * every phase duration is compared as a %.17g string (two doubles
 * render to the same %.17g string iff they are the same bits, NaN
 * aside). Committed baselines (bench/baselines/serve_slo.txt,
 * BENCH_serving.json gated with --absolute) depend on this holding.
 */

#include <map>
#include <string>

#include <gtest/gtest.h>

#include "gpusim/inference_sim.hh"
#include "opgraph/build.hh"
#include "util/str.hh"

using namespace afsb;

namespace {

std::string
bits(double v)
{
    return strformat("%.17g", v);
}

struct LegacyResult
{
    bool oom = false;
    bool usedUnifiedMemory = false;
    double initSeconds = 0.0;
    double compileSeconds = 0.0;
    double gpuComputeSeconds = 0.0;
    double finalizeSeconds = 0.0;
    std::map<std::string, double> layerSeconds;
    gpusim::DeviceStats deviceStats;
};

/** Verbatim replica of the pre-IR simulateInference. */
LegacyResult
legacySimulateInference(const sys::PlatformSpec &platform,
                        size_t tokens, gpusim::XlaCache &cache,
                        const gpusim::InferenceSimOptions &options)
{
    LegacyResult result;
    const auto &cfg = options.config;
    const auto graph = model::operatorGraph(tokens, cfg);

    const uint64_t footprint =
        model::activationBytes(tokens, cfg) +
        model::weightBytes(cfg);
    const bool spills = footprint > platform.gpu.vramBytes;
    if (spills && !options.unifiedMemory) {
        result.oom = true;
        return result;
    }
    result.usedUnifiedMemory = spills;
    const double spillFraction =
        spills ? 1.0 - static_cast<double>(platform.gpu.vramBytes) /
                           static_cast<double>(footprint)
               : 0.0;

    const gpusim::XlaPhases phases =
        evaluateXlaPhases(platform, graph, tokens, cache);
    const double threadScale =
        (1.0 - options.hostParallelFraction) +
        options.hostParallelFraction /
            std::max<uint32_t>(1, options.threads);
    result.initSeconds = options.gpuAlreadyInitialized
                             ? 0.0
                             : phases.initSeconds * threadScale;
    result.compileSeconds = phases.compileSeconds * threadScale;
    result.finalizeSeconds = phases.finalizeSeconds * threadScale;

    gpusim::GpuDevice device(platform.gpu);
    double cursor = result.initSeconds + result.compileSeconds;
    const double gpuStart = cursor;
    for (const auto &layer : graph) {
        double layerTotal = 0.0;
        for (uint32_t i = 0; i < layer.count; ++i) {
            layerTotal += device.executeKernel(
                layer.cost.flops,
                layer.cost.bytes *
                    (1.0 + spillFraction *
                               (platform.gpu.unifiedMemPenalty -
                                1.0)),
                false);
        }
        result.layerSeconds[model::layerKindName(layer.kind)] +=
            layerTotal;
        cursor += layerTotal;
    }
    result.gpuComputeSeconds = cursor - gpuStart;
    result.deviceStats = device.stats();
    return result;
}

void
expectBitIdentical(const LegacyResult &legacy,
                   const gpusim::InferenceSimResult &ir)
{
    ASSERT_EQ(legacy.oom, ir.oom);
    EXPECT_EQ(legacy.usedUnifiedMemory, ir.usedUnifiedMemory);
    EXPECT_EQ(bits(legacy.initSeconds), bits(ir.initSeconds));
    EXPECT_EQ(bits(legacy.compileSeconds),
              bits(ir.compileSeconds));
    EXPECT_EQ(bits(legacy.gpuComputeSeconds),
              bits(ir.gpuComputeSeconds));
    EXPECT_EQ(bits(legacy.finalizeSeconds),
              bits(ir.finalizeSeconds));
    ASSERT_EQ(legacy.layerSeconds.size(), ir.layerSeconds.size());
    for (const auto &[name, secs] : legacy.layerSeconds) {
        const auto it = ir.layerSeconds.find(name);
        ASSERT_NE(it, ir.layerSeconds.end()) << name;
        EXPECT_EQ(bits(secs), bits(it->second)) << name;
    }
    EXPECT_EQ(legacy.deviceStats.kernelsLaunched,
              ir.deviceStats.kernelsLaunched);
    EXPECT_EQ(bits(legacy.deviceStats.flopsExecuted),
              bits(ir.deviceStats.flopsExecuted));
    EXPECT_EQ(bits(legacy.deviceStats.bytesMoved),
              bits(ir.deviceStats.bytesMoved));
    EXPECT_EQ(bits(legacy.deviceStats.busySeconds),
              bits(ir.deviceStats.busySeconds));
}

void
checkPlatformTokens(const sys::PlatformSpec &platform,
                    size_t tokens,
                    const gpusim::InferenceSimOptions &options)
{
    gpusim::XlaCache legacyCache;
    gpusim::XlaCache irCache;
    const auto legacy = legacySimulateInference(
        platform, tokens, legacyCache, options);
    const auto ir = gpusim::simulateInference(platform, tokens,
                                              irCache, options);
    expectBitIdentical(legacy, ir);
    // The caches must agree too: identical shapes were compiled.
    EXPECT_EQ(legacyCache.size(), irCache.size());
}

} // namespace

TEST(RooflineIdentity, ServerMatchesLegacyAcrossSampleSizes)
{
    for (size_t tokens : {128, 484, 857, 1395, 2500})
        checkPlatformTokens(sys::serverPlatform(), tokens, {});
}

TEST(RooflineIdentity, DesktopMatchesLegacyIncludingSpill)
{
    gpusim::InferenceSimOptions opt;
    opt.unifiedMemory = true;  // 1395 tokens spills a 16 GB 4080
    for (size_t tokens : {128, 484, 857, 1395})
        checkPlatformTokens(sys::desktopPlatform(), tokens, opt);
}

TEST(RooflineIdentity, OomIdenticalWithoutUnifiedMemory)
{
    gpusim::InferenceSimOptions strict;
    strict.unifiedMemory = false;
    gpusim::XlaCache legacyCache, irCache;
    const auto legacy = legacySimulateInference(
        sys::desktopPlatform(), 1395, legacyCache, strict);
    const auto ir = gpusim::simulateInference(
        sys::desktopPlatform(), 1395, irCache, strict);
    EXPECT_TRUE(legacy.oom);
    EXPECT_TRUE(ir.oom);
}

TEST(RooflineIdentity, WarmCacheAndThreadOptionsMatchLegacy)
{
    gpusim::InferenceSimOptions opt;
    opt.threads = 8;
    opt.gpuAlreadyInitialized = true;
    // Warm each cache with one request, then compare the second
    // (compile phase collapses to zero identically).
    gpusim::XlaCache legacyCache, irCache;
    (void)legacySimulateInference(sys::serverPlatform(), 484,
                                  legacyCache, opt);
    (void)gpusim::simulateInference(sys::serverPlatform(), 484,
                                    irCache, opt);
    const auto legacy = legacySimulateInference(
        sys::serverPlatform(), 484, legacyCache, opt);
    const auto ir = gpusim::simulateInference(
        sys::serverPlatform(), 484, irCache, opt);
    expectBitIdentical(legacy, ir);
    EXPECT_EQ(bits(legacy.compileSeconds), bits(0.0));
}

TEST(RooflineIdentity, BatchedPathMatchesLegacy)
{
    // Verbatim replica of the pre-IR simulateBatchedInference,
    // compared field-by-field on both paper platforms.
    const model::ModelConfig cfg;
    const std::vector<size_t> members = {470, 478, 484};
    for (const auto &platform :
         {sys::serverPlatform(), sys::desktopPlatform()}) {
        gpusim::InferenceSimOptions options;
        options.unifiedMemory = true;
        gpusim::XlaCache legacyCache, irCache;

        // --- legacy replica ---
        const uint32_t gpus = 2;
        const size_t execTokens =
            legacyCache.paddedTokens(members[0]);
        const auto graph = model::operatorGraph(execTokens, cfg);
        size_t sumTokens = 0;
        for (size_t t : members)
            sumTokens += t;
        const size_t batch = members.size();
        const size_t maxShard = (batch + gpus - 1) / gpus;
        const uint64_t footprint =
            static_cast<uint64_t>(maxShard) *
                model::activationBytes(execTokens, cfg) +
            model::weightBytes(cfg);
        const bool spills = footprint > platform.gpu.vramBytes;
        const double spillFraction =
            spills
                ? 1.0 -
                      static_cast<double>(platform.gpu.vramBytes) /
                          static_cast<double>(footprint)
                : 0.0;
        const gpusim::XlaPhases phases = evaluateXlaPhases(
            platform, graph, execTokens, legacyCache);
        const double threadScale =
            (1.0 - options.hostParallelFraction) +
            options.hostParallelFraction /
                std::max<uint32_t>(1, options.threads);
        const double initSeconds =
            phases.initSeconds * threadScale;
        const double compileSeconds =
            phases.compileSeconds * threadScale;
        const gpusim::XlaCostModel costs;
        const double finalizeSeconds =
            hostClockFactor(platform, costs) *
            (costs.baseFinalizeSeconds +
             costs.finalizePerToken *
                 static_cast<double>(sumTokens)) *
            threadScale;
        double gpuComputeSeconds = 0.0;
        for (uint32_t g = 0; g < gpus; ++g) {
            const size_t shard =
                batch / gpus + (g < batch % gpus ? 1 : 0);
            if (shard == 0)
                continue;
            gpusim::GpuDevice device(platform.gpu);
            double shardSeconds = 0.0;
            for (const auto &layer : graph) {
                for (uint32_t i = 0; i < layer.count; ++i)
                    shardSeconds += device.executeKernel(
                        layer.cost.flops *
                            static_cast<double>(shard),
                        layer.cost.bytes *
                            static_cast<double>(shard) *
                            (1.0 +
                             spillFraction *
                                 (platform.gpu.unifiedMemPenalty -
                                  1.0)),
                        false);
            }
            gpuComputeSeconds =
                std::max(gpuComputeSeconds, shardSeconds);
        }
        double usefulFlops = 0.0;
        for (size_t t : members)
            usefulFlops +=
                model::totalFlops(model::operatorGraph(t, cfg));
        const double paddedFlops = std::max(
            0.0, model::totalFlops(graph) *
                         static_cast<double>(batch) -
                     usefulFlops);

        // --- IR-driven path ---
        const auto ir = gpusim::simulateBatchedInference(
            platform, members, irCache, options, gpus);

        EXPECT_FALSE(ir.oom);
        EXPECT_EQ(ir.usedUnifiedMemory, spills);
        EXPECT_EQ(ir.execTokens, execTokens);
        EXPECT_EQ(bits(ir.initSeconds), bits(initSeconds));
        EXPECT_EQ(bits(ir.compileSeconds), bits(compileSeconds));
        EXPECT_EQ(bits(ir.finalizeSeconds),
                  bits(finalizeSeconds));
        EXPECT_EQ(bits(ir.gpuComputeSeconds),
                  bits(gpuComputeSeconds));
        EXPECT_EQ(bits(ir.usefulFlops), bits(usefulFlops));
        EXPECT_EQ(bits(ir.paddedFlops), bits(paddedFlops));
        EXPECT_EQ(legacyCache.size(), irCache.size());
    }
}

TEST(RooflineIdentity, SoloBatchMatchesUnbatchedSimulator)
{
    gpusim::XlaCache soloCache, batchCache;
    const auto solo = gpusim::simulateInference(
        sys::serverPlatform(), 484, soloCache);
    const auto batched = gpusim::simulateBatchedInference(
        sys::serverPlatform(), {484}, batchCache);
    EXPECT_EQ(bits(solo.gpuComputeSeconds),
              bits(batched.gpuComputeSeconds));
    EXPECT_EQ(bits(solo.compileSeconds),
              bits(batched.compileSeconds));
    EXPECT_EQ(bits(solo.finalizeSeconds),
              bits(batched.finalizeSeconds));
}
