/**
 * @file
 * Property tests sweeping all five platforms (the paper's server
 * and desktop plus the three committed JSON configs). The op graph
 * is a property of the workload, not the machine: executed FLOPs
 * and kernel counts must be invariant across platforms, simulated
 * seconds must grow monotonically with model size, and the
 * maxBatchForVram bound must agree with the batched simulator's
 * spill decision at the boundary.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gpusim/inference_sim.hh"
#include "sys/platform_config.hh"

using namespace afsb;

namespace {

std::vector<sys::PlatformSpec>
allPlatforms()
{
    const std::string root = AFSB_REPO_ROOT;
    return {
        sys::serverPlatform(),
        sys::desktopPlatform(),
        sys::resolvePlatform(root +
                             "/configs/platforms/riscv-cpu.json"),
        sys::resolvePlatform(root +
                             "/configs/platforms/cxl-tiered.json"),
        sys::resolvePlatform(root +
                             "/configs/platforms/small-vram.json"),
    };
}

gpusim::InferenceSimResult
run(const sys::PlatformSpec &platform, size_t tokens)
{
    gpusim::XlaCache cache;
    gpusim::InferenceSimOptions opt;
    opt.unifiedMemory = true;
    return gpusim::simulateInference(platform, tokens, cache, opt);
}

} // namespace

TEST(PlatformProperties, FlopsAndKernelsInvariantAcrossPlatforms)
{
    for (size_t tokens : {256, 857}) {
        const auto baseline = run(sys::serverPlatform(), tokens);
        double nonSpillBytes = baseline.deviceStats.bytesMoved;
        ASSERT_FALSE(baseline.usedUnifiedMemory);
        for (const auto &platform : allPlatforms()) {
            const auto r = run(platform, tokens);
            ASSERT_FALSE(r.oom) << platform.name;
            // Work is a property of the graph, not the machine.
            EXPECT_EQ(r.deviceStats.flopsExecuted,
                      baseline.deviceStats.flopsExecuted)
                << platform.name;
            EXPECT_EQ(r.deviceStats.kernelsLaunched,
                      baseline.deviceStats.kernelsLaunched)
                << platform.name;
            // Traffic is too, unless unified-memory spill inflates
            // it — then it must be strictly larger, never smaller.
            if (!r.usedUnifiedMemory)
                EXPECT_EQ(r.deviceStats.bytesMoved, nonSpillBytes)
                    << platform.name;
            else
                EXPECT_GT(r.deviceStats.bytesMoved, nonSpillBytes)
                    << platform.name;
        }
    }
}

TEST(PlatformProperties, SimulatedSecondsMonotonicInModelSize)
{
    for (const auto &platform : allPlatforms()) {
        double prev = 0.0;
        for (size_t tokens : {128, 256, 512, 1024}) {
            const auto r = run(platform, tokens);
            ASSERT_FALSE(r.oom) << platform.name;
            EXPECT_GT(r.totalSeconds(), prev)
                << platform.name << " at " << tokens;
            EXPECT_GT(r.gpuComputeSeconds, 0.0) << platform.name;
            prev = r.totalSeconds();
        }
    }
}

TEST(PlatformProperties, MaxBatchForVramMatchesSpillBoundary)
{
    const model::ModelConfig cfg;
    for (const auto &platform : allPlatforms()) {
        for (size_t tokens : {256, 512, 1024}) {
            const size_t cap =
                gpusim::maxBatchForVram(platform, tokens, cfg);
            ASSERT_GE(cap, 1u) << platform.name;

            const uint64_t footprint =
                static_cast<uint64_t>(cap) *
                    model::activationBytes(tokens, cfg) +
                model::weightBytes(cfg);
            const bool clamped =
                footprint > platform.gpu.vramBytes;

            gpusim::InferenceSimOptions opt;
            opt.unifiedMemory = true;
            // Bucket width 1: no padding, execTokens == tokens, so
            // the simulator's footprint math matches ours exactly.
            gpusim::XlaCache atCap(1);
            const auto fit = gpusim::simulateBatchedInference(
                platform, std::vector<size_t>(cap, tokens), atCap,
                opt);
            EXPECT_EQ(fit.usedUnifiedMemory, clamped)
                << platform.name << " cap=" << cap << " tokens="
                << tokens;

            // One past the bound must spill (cap+1 shards onto one
            // device can only be over VRAM).
            gpusim::XlaCache overCap(1);
            const auto over = gpusim::simulateBatchedInference(
                platform, std::vector<size_t>(cap + 1, tokens),
                overCap, opt);
            EXPECT_TRUE(over.usedUnifiedMemory)
                << platform.name << " cap+1=" << cap + 1;
        }
    }
}

TEST(PlatformProperties, SmallVramConfigForcesSpillAndUnitBatch)
{
    // The committed small-VRAM config exists to exercise the
    // spill/batch-split path: at 1024 tokens activations alone
    // exceed the 8 GiB card.
    const auto smallVram = sys::resolvePlatform(
        std::string(AFSB_REPO_ROOT) +
        "/configs/platforms/small-vram.json");
    const model::ModelConfig cfg;
    EXPECT_EQ(gpusim::maxBatchForVram(smallVram, 1024, cfg), 1u);
    const auto r = run(smallVram, 1024);
    ASSERT_FALSE(r.oom);
    EXPECT_TRUE(r.usedUnifiedMemory);

    // Without unified memory the same request is an OOM, while the
    // server platform absorbs it untouched.
    gpusim::XlaCache cache;
    gpusim::InferenceSimOptions strict;
    strict.unifiedMemory = false;
    EXPECT_TRUE(gpusim::simulateInference(smallVram, 1024, cache,
                                          strict)
                    .oom);
    EXPECT_FALSE(run(sys::serverPlatform(), 1024)
                     .usedUnifiedMemory);
}
