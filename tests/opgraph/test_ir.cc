/** Round-trip and validation tests for the opgraph IR. */

#include <gtest/gtest.h>

#include "opgraph/build.hh"
#include "opgraph/ir.hh"
#include "util/logging.hh"

using namespace afsb;

namespace {

opgraph::OpGraph
sampleGraph(size_t tokens = 300)
{
    return opgraph::buildInferenceGraph(tokens,
                                        model::ModelConfig{});
}

} // namespace

TEST(OpGraph, BuilderProducesValidatedSchedule)
{
    const auto g = sampleGraph();
    EXPECT_EQ(g.label, "inference");
    EXPECT_EQ(g.tokens, 300u);
    ASSERT_FALSE(g.ops.empty());
    EXPECT_NO_THROW(opgraph::validate(g));
    // Every op's id is its schedule index and deps look backwards.
    for (size_t i = 0; i < g.ops.size(); ++i) {
        EXPECT_EQ(g.ops[i].id, i);
        for (uint32_t dep : g.ops[i].deps)
            EXPECT_LT(dep, g.ops[i].id);
    }
}

TEST(OpGraph, TrafficSplitPreservesLegacyTotalBitExactly)
{
    // The read/write split must re-sum to the analytic layer bytes
    // bit-for-bit — the roofline bit-identity contract rests on it.
    const auto g = sampleGraph(857);
    const auto layers =
        model::operatorGraph(857, model::ModelConfig{});
    ASSERT_EQ(g.ops.size(), layers.size());
    for (size_t i = 0; i < g.ops.size(); ++i) {
        EXPECT_EQ(g.ops[i].trafficBytes(), layers[i].cost.bytes);
        EXPECT_EQ(g.ops[i].flops, layers[i].cost.flops);
        EXPECT_EQ(g.ops[i].count, layers[i].count);
        EXPECT_EQ(g.ops[i].kernels, layers[i].cost.kernels);
    }
}

TEST(OpGraph, TextRoundTripIsExact)
{
    const auto g = sampleGraph();
    const std::string text = opgraph::render(g);
    const auto parsed = opgraph::parse(text);
    EXPECT_EQ(parsed, g);
    // Byte-stability: render(parse(render(g))) == render(g).
    EXPECT_EQ(opgraph::render(parsed), text);
}

TEST(OpGraph, JsonRoundTripIsExact)
{
    const auto g = sampleGraph(1395);
    const std::string dumped =
        opgraph::toJson(g).dumpPretty();
    const auto parsed =
        opgraph::fromJson(parseJson(dumped));
    EXPECT_EQ(parsed, g);
}

TEST(OpGraph, SubgraphBuildersCoverTheirModules)
{
    const model::ModelConfig cfg;
    const auto pair = opgraph::buildPairformerGraph(256, cfg);
    const auto diff = opgraph::buildDiffusionGraph(256, cfg);
    EXPECT_EQ(pair.label, "pairformer");
    EXPECT_EQ(diff.label, "diffusion");
    for (const auto &op : pair.ops)
        EXPECT_TRUE(model::isPairformerLayer(op.kind));
    for (const auto &op : diff.ops)
        EXPECT_TRUE(model::isDiffusionLayer(op.kind));
    // Subgraph totals are strictly inside the full graph's.
    const auto full = opgraph::buildInferenceGraph(256, cfg);
    EXPECT_LT(pair.totalFlops() + diff.totalFlops(),
              full.totalFlops());
}

TEST(OpGraph, ValidateRejectsBrokenInvariants)
{
    auto g = sampleGraph();
    auto broken = g;
    broken.ops[3].id = 7;  // out of schedule order
    EXPECT_THROW(opgraph::validate(broken), FatalError);

    broken = g;
    broken.ops[2].deps.push_back(2);  // self dep
    EXPECT_THROW(opgraph::validate(broken), FatalError);

    broken = g;
    broken.ops[1].flops = -1.0;
    EXPECT_THROW(opgraph::validate(broken), FatalError);

    broken = g;
    broken.ops[0].count = 0;
    EXPECT_THROW(opgraph::validate(broken), FatalError);

    broken = g;
    broken.ops[0].shape.clear();
    EXPECT_THROW(opgraph::validate(broken), FatalError);

    broken = g;
    broken.label.clear();
    EXPECT_THROW(opgraph::validate(broken), FatalError);
}

TEST(OpGraph, ParseRejectsMalformedText)
{
    const std::string good = opgraph::render(sampleGraph());

    // Trailing garbage after the declared op count is a hard error.
    EXPECT_THROW(opgraph::parse(good + "stray line\n"),
                 FatalError);
    // A missing trailing newline is a truncation error.
    EXPECT_THROW(
        opgraph::parse(good.substr(0, good.size() - 1)),
        FatalError);
    // Dropping an op line breaks the declared count.
    const size_t lastLine = good.rfind("op ");
    EXPECT_THROW(opgraph::parse(good.substr(0, lastLine)),
                 FatalError);
    // Wrong header.
    EXPECT_THROW(opgraph::parse("afsb-opgraph v9\n" +
                                good.substr(good.find('\n') + 1)),
                 FatalError);
    // Unknown layer kind.
    std::string bad = good;
    const size_t pos = bad.find("input_embedding");
    bad.replace(pos, 15, "input_embeddinG");
    EXPECT_THROW(opgraph::parse(bad), FatalError);
    // Numeric field with trailing garbage inside the token.
    bad = good;
    const size_t fpos = bad.find("flops=");
    bad.insert(bad.find(' ', fpos) , "x");
    EXPECT_THROW(opgraph::parse(bad), FatalError);
}

TEST(OpGraph, JsonParserRejectsSchemaViolations)
{
    const auto g = sampleGraph();
    auto doc = opgraph::toJson(g);
    doc["format"] = "not-opgraph";
    EXPECT_THROW(opgraph::fromJson(doc), FatalError);

    doc = opgraph::toJson(g);
    doc["version"] = 99;
    EXPECT_THROW(opgraph::fromJson(doc), FatalError);

    doc = opgraph::toJson(g);
    doc["ops"].asArray()[0]["kind"] = "mystery_layer";
    EXPECT_THROW(opgraph::fromJson(doc), FatalError);
}
