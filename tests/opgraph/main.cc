/**
 * @file
 * Custom gtest main for the opgraph suite: `--update-goldens`
 * regenerates the committed canonical dumps under
 * tests/opgraph/goldens/ instead of comparing against them.
 */

#include <cstring>

#include <gtest/gtest.h>

namespace afsb::test {

bool updateGoldens = false;

} // namespace afsb::test

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--update-goldens") == 0)
            afsb::test::updateGoldens = true;
    return RUN_ALL_TESTS();
}
