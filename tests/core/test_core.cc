/**
 * @file
 * Integration tests for the AFSysBench core pipeline: workspace,
 * MSA phase, end-to-end runs, and the Section VI features.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "core/adaptive_threads.hh"
#include "core/memory_estimator.hh"
#include "core/pipeline.hh"
#include "util/units.hh"

namespace afsb::core {
namespace {

/** Fast options for tests: coarse tracing, 1 jackhmmer round. */
MsaPhaseOptions
fastMsa()
{
    MsaPhaseOptions o;
    o.threads = 2;
    o.traceStride = 16;
    o.jackhmmerIterations = 1;
    return o;
}

TEST(Workspace, BuildsDatabasesWithPaperScaleAnnotations)
{
    const auto &ws = Workspace::shared();
    EXPECT_GT(ws.proteinDb().size(), 500u);
    EXPECT_GT(ws.rnaDb().size(), 100u);
    EXPECT_EQ(ws.proteinDb().info().paperScaleBytes,
              msa::paperdb::kProteinDbBytes);
    EXPECT_EQ(ws.rnaDb().info().paperScaleBytes,
              msa::paperdb::kRnaDbBytes);
    EXPECT_GT(ws.proteinDb().info().scaleFactor(), 1000.0);
}

TEST(MsaPhase, ProducesPaperScaleTimesAndDepths)
{
    const auto &ws = Workspace::shared();
    const auto sample = bio::makeSample("2PV7");
    const auto r = runMsaPhase(sample.complex,
                               sys::serverPlatform(), ws, fastMsa());
    EXPECT_FALSE(r.oom);
    // Hundreds to thousands of seconds at paper scale.
    EXPECT_GT(r.seconds, 100.0);
    EXPECT_LT(r.seconds, 50000.0);
    // One depth entry per chain; the homodimer shares its MSA.
    ASSERT_EQ(r.msaDepthPerChain.size(), 2u);
    EXPECT_EQ(r.msaDepthPerChain[0], r.msaDepthPerChain[1]);
    EXPECT_GE(r.msaDepthPerChain[0], 3u);
    EXPECT_GT(r.totals.instructions, 0u);
    EXPECT_GT(r.timing.effectiveIpc, 1.0);
    EXPECT_LT(r.timing.effectiveIpc, 4.5);
}

TEST(MsaPhase, DnaChainsAreExcluded)
{
    const auto &ws = Workspace::shared();
    const auto sample = bio::makeSample("7RCE");
    const auto r = runMsaPhase(sample.complex,
                               sys::serverPlatform(), ws, fastMsa());
    ASSERT_EQ(r.msaDepthPerChain.size(), 3u);
    EXPECT_GE(r.msaDepthPerChain[0], 1u);  // protein chain
    EXPECT_EQ(r.msaDepthPerChain[1], 0u);  // DNA
    EXPECT_EQ(r.msaDepthPerChain[2], 0u);  // DNA
}

TEST(MsaPhase, ThreadScalingSaturates)
{
    // Observation 3 shape: near-2x to 2 threads, diminishing after.
    const auto &ws = Workspace::shared();
    const auto sample = bio::makeSample("2PV7");
    auto at = [&](uint32_t t) {
        MsaPhaseOptions o = fastMsa();
        o.threads = t;
        return runMsaPhase(sample.complex, sys::serverPlatform(),
                           ws, o)
            .seconds;
    };
    const double t1 = at(1), t2 = at(2), t8 = at(8);
    EXPECT_GT(t1 / t2, 1.6);
    EXPECT_LT(t1 / t2, 2.2);
    // Far from linear at 8 threads.
    EXPECT_LT(t1 / t8, 6.5);
}

TEST(MsaPhase, PromoSlowerThan1yy9DespiteSimilarLength)
{
    // Observation 2 end-to-end: poly-Q stresses the pipeline.
    const auto &ws = Workspace::shared();
    const auto promo = bio::makeSample("promo");
    const auto yy9 = bio::makeSample("1YY9");
    const auto rPromo = runMsaPhase(
        promo.complex, sys::serverPlatform(), ws, fastMsa());
    const auto rYy9 = runMsaPhase(yy9.complex,
                                  sys::serverPlatform(), ws,
                                  fastMsa());
    EXPECT_GT(rPromo.seconds, 1.2 * rYy9.seconds);
}

TEST(MsaPhase, DesktopStreamsFromDiskServerDoesNot)
{
    // Section V-B2c: Server's DRAM keeps databases resident;
    // Desktop re-reads from NVMe.
    const auto &ws = Workspace::shared();
    const auto sample = bio::makeSample("promo");
    const auto server = runMsaPhase(
        sample.complex, sys::serverPlatform(), ws, fastMsa());
    const auto desktop = runMsaPhase(
        sample.complex, sys::desktopPlatform(), ws, fastMsa());
    EXPECT_GT(desktop.diskBytesRead, 1.2 * server.diskBytesRead);
    EXPECT_GT(desktop.storageUtilizationPct,
              server.storageUtilizationPct);
}

TEST(MsaPhase, RnaInputOomsOnDesktop)
{
    // A 935-nt RNA needs ~506 GiB: instant OOM on 64 GiB.
    const auto &ws = Workspace::shared();
    bio::Complex c("rna_monster");
    c.addChain(bio::makeRibosomalRna(935));
    const auto r = runMsaPhase(c, sys::desktopPlatform(), ws,
                               fastMsa());
    EXPECT_TRUE(r.oom);
    EXPECT_EQ(r.memFit, sys::MemFit::Oom);
    // The server handles it in DRAM.
    const auto rs = runMsaPhase(c, sys::serverPlatform(), ws,
                                fastMsa());
    EXPECT_FALSE(rs.oom);
}

TEST(Pipeline, EndToEndSharesMatchFig7)
{
    const auto &ws = Workspace::shared();
    const auto sample = bio::makeSample("2PV7");
    PipelineOptions opt;
    opt.msaThreads = 4;
    opt.msa = fastMsa();
    const auto r = runPipeline(sample.complex,
                               sys::serverPlatform(), ws, opt);
    EXPECT_FALSE(r.oom);
    // MSA dominates end-to-end (paper: ~75-94%).
    EXPECT_GT(r.msaShare(), 0.70);
    EXPECT_LT(r.msaShare(), 0.995);
    EXPECT_GT(r.phases.seconds("msa"), 0.0);
    EXPECT_GT(r.phases.seconds("gpu_compute"), 0.0);
}

/** Reinterpret a raw IEEE-754 bit pattern as a double. */
double
doubleFromBits(uint64_t bits)
{
    double d;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
}

TEST(Pipeline, EndToEndGoldenIsStable)
{
    // Golden end-to-end numbers captured before the striped/blocked
    // kernels landed. The simulated pipeline output is part of the
    // repo's stability contract: faster kernels must not perturb a
    // single bit of the reported seconds or instruction counts.
    const auto &ws = Workspace::shared();
    const auto sample = bio::makeSample("2PV7");
    PipelineOptions opt;
    opt.msaThreads = 2;
    opt.msa = fastMsa();
    const auto r = runPipeline(sample.complex,
                               sys::serverPlatform(), ws, opt);
    EXPECT_FALSE(r.oom);
    EXPECT_DOUBLE_EQ(r.msa.seconds,
                     doubleFromBits(0x40875b0ebc87d28aull));
    EXPECT_EQ(r.msa.totals.instructions, 18774033696746ull);
    EXPECT_DOUBLE_EQ(r.inference.totalSeconds(),
                     doubleFromBits(0x404f79cafa8bb10cull));
}

TEST(Pipeline, PersistentXlaCacheEliminatesCompile)
{
    // Section VI "persistent model state".
    const auto &ws = Workspace::shared();
    const auto sample = bio::makeSample("2PV7");
    PipelineOptions opt;
    opt.msa = fastMsa();
    gpusim::XlaCache cache;
    opt.persistentXlaCache = &cache;
    const auto first = runPipeline(sample.complex,
                                   sys::serverPlatform(), ws, opt);
    const auto second = runPipeline(sample.complex,
                                    sys::serverPlatform(), ws, opt);
    EXPECT_GT(first.inference.compileSeconds, 5.0);
    EXPECT_DOUBLE_EQ(second.inference.compileSeconds, 0.0);
    EXPECT_LT(second.inference.totalSeconds(),
              first.inference.totalSeconds());
}

TEST(Pipeline, SixQnrOomsWithoutUnifiedMemory)
{
    const auto &ws = Workspace::shared();
    const auto sample = bio::makeSample("6QNR");
    PipelineOptions opt;
    opt.msa = fastMsa();
    opt.unifiedMemory = false;
    // Desktop with upgraded DRAM (the paper's 6QNR config) still
    // fails on GPU memory without unified memory...
    const auto noUm = runPipeline(
        sample.complex, sys::desktopPlatformUpgraded(), ws, opt);
    EXPECT_TRUE(noUm.oom);
    // ...and succeeds with it.
    opt.unifiedMemory = true;
    const auto withUm = runPipeline(
        sample.complex, sys::desktopPlatformUpgraded(), ws, opt);
    EXPECT_FALSE(withUm.oom);
    EXPECT_TRUE(withUm.inference.usedUnifiedMemory);
}

// --- Memory estimator ----------------------------------------------------

TEST(MemoryEstimator, FlagsRnaMonsters)
{
    bio::Complex c("rna");
    c.addChain(bio::makeRibosomalRna(1335));
    const auto est =
        estimateMemory(c, sys::serverPlatformWithCxl(), 8);
    EXPECT_TRUE(est.willOom());
    EXPECT_FALSE(est.runnable());
    EXPECT_NE(est.render().find("WILL-OOM"), std::string::npos);
}

TEST(MemoryEstimator, ClassifiesTableIISamplesOnDesktop)
{
    const auto samples = bio::makeAllSamples();
    for (const auto &s : samples) {
        const auto est =
            estimateMemory(s.complex, sys::desktopPlatform(), 8);
        EXPECT_TRUE(est.runnable()) << s.info.name;
        ASSERT_EQ(est.lines.size(), 2u);
        if (s.info.name == "6QNR") {
            EXPECT_EQ(est.lines[1].verdict,
                      MemVerdict::NeedsUnifiedMemory);
        } else {
            EXPECT_EQ(est.lines[1].verdict, MemVerdict::Safe)
                << s.info.name;
        }
    }
}

TEST(MemoryEstimator, CxlCasesReported)
{
    bio::Complex c("rna1135");
    c.addChain(bio::makeRibosomalRna(1135));
    const auto plain = estimateMemory(c, sys::serverPlatform(), 8);
    EXPECT_TRUE(plain.willOom());
    const auto cxl =
        estimateMemory(c, sys::serverPlatformWithCxl(), 8);
    EXPECT_TRUE(cxl.runnable());
    EXPECT_EQ(cxl.lines[0].verdict, MemVerdict::NeedsCxl);
}

// --- Adaptive threads ----------------------------------------------------

TEST(AdaptiveThreads, RecommendsMidRangeForSmallSample)
{
    const auto &ws = Workspace::shared();
    const auto sample = bio::makeSample("2PV7");
    const auto advice = recommendThreads(
        sample.complex, sys::serverPlatform(), ws, {1, 4, 8});
    EXPECT_GT(advice.recommendedThreads, 1u);
    EXPECT_EQ(advice.candidates.size(), 3u);
    // The recommendation never loses to the fixed default.
    EXPECT_GE(advice.speedupOverDefault(), 1.0);
}

} // namespace
} // namespace afsb::core
