/**
 * @file
 * Sharded multi-node scan tests: partition arithmetic, the nodes=1
 * bit-identity anchor, merged-result equivalence at N > 1,
 * displacement-buffer consistency, and comm-trace determinism.
 */

#include <gtest/gtest.h>

#include "bio/seqgen.hh"
#include "msa/dbgen.hh"
#include "msa/sharded_search.hh"
#include "net/interconnect.hh"
#include "util/units.hh"

namespace afsb::msa {
namespace {

using bio::MoleculeType;
using bio::Sequence;

bool
sameResult(const SearchResult &a, const SearchResult &b)
{
    if (a.hits.size() != b.hits.size() ||
        a.msvSurvivors != b.msvSurvivors)
        return false;
    for (size_t i = 0; i < a.hits.size(); ++i)
        if (a.hits[i].targetIndex != b.hits[i].targetIndex ||
            a.hits[i].viterbiScore != b.hits[i].viterbiScore ||
            a.hits[i].forwardLogOdds != b.hits[i].forwardLogOdds)
            return false;
    return true;
}

struct ShardedFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        bio::SequenceGenerator gen(4242);
        query = gen.random("q", MoleculeType::Protein, 160);

        DbGenConfig cfg;
        cfg.decoyCount = 300;
        cfg.homologsPerQuery = 10;
        cfg.fragmentsPerQuery = 8;
        const std::vector<const Sequence *> queries = {&query};
        generateDatabase(vfs, "shard.fasta", queries,
                         MoleculeType::Protein, cfg);
        db = SequenceDatabase::load(vfs, cache(), "shard.fasta",
                                    MoleculeType::Protein, 0.0);
        prof = ProfileHmm::fromSequence(query,
                                        ScoreMatrix::blosum62());
    }

    io::PageCache &
    cache()
    {
        if (!cache_)
            cache_ = std::make_unique<io::PageCache>(1 * GiB, &dev);
        return *cache_;
    }

    Sequence query;
    ProfileHmm prof;
    io::Vfs vfs;
    io::StorageDevice dev;
    std::unique_ptr<io::PageCache> cache_;
    SequenceDatabase db;
};

TEST(ShardRange, PartitionsExactlyAndContiguously)
{
    for (uint32_t nodes : {1u, 2u, 3u, 7u}) {
        size_t prev = 0;
        for (uint32_t s = 0; s < nodes; ++s) {
            const auto [b, e] = shardRange(1001, nodes, s);
            EXPECT_EQ(b, prev);
            EXPECT_LE(b, e);
            prev = e;
        }
        EXPECT_EQ(prev, 1001u);
    }
    // More shards than targets: some shards are empty, but the
    // partition still tiles [0, n) exactly.
    size_t nonEmpty = 0, covered = 0;
    for (uint32_t s = 0; s < 4; ++s) {
        const auto [b, e] = shardRange(2, 4, s);
        nonEmpty += b != e;
        covered += e - b;
    }
    EXPECT_EQ(nonEmpty, 2u);
    EXPECT_EQ(covered, 2u);
}

TEST_F(ShardedFixture, SingleNodeDelegatesBitIdentically)
{
    SearchConfig cfg;
    const auto direct =
        searchDatabase(prof, db, cache(), nullptr, cfg);

    net::TopologyConfig topo = net::datacenterTopology(1);
    const auto sharded = searchDatabaseSharded(
        prof, db, cache(), nullptr, cfg, topo, nullptr);
    EXPECT_TRUE(sameResult(direct, sharded.merged));
    EXPECT_TRUE(sharded.survivorCounts.empty());
    EXPECT_DOUBLE_EQ(sharded.gatherCompleteSeconds, 0.0);
}

TEST_F(ShardedFixture, MultiNodeMergeEqualsSingleNodeScan)
{
    SearchConfig cfg;
    const auto direct =
        searchDatabase(prof, db, cache(), nullptr, cfg);

    for (uint32_t nodes : {2u, 3u, 5u}) {
        net::TopologyConfig topo = net::datacenterTopology(nodes);
        net::Interconnect fabric(topo);
        const auto sharded = searchDatabaseSharded(
            prof, db, cache(), nullptr, cfg, topo, &fabric);
        EXPECT_TRUE(sameResult(direct, sharded.merged))
            << nodes << " nodes";
    }
}

TEST_F(ShardedFixture, DisplacementBuffersAreConsistent)
{
    const uint32_t nodes = 4;
    SearchConfig cfg;
    net::TopologyConfig topo = net::datacenterTopology(nodes);
    net::Interconnect fabric(topo);
    const auto r = searchDatabaseSharded(prof, db, cache(), nullptr,
                                         cfg, topo, &fabric);

    ASSERT_EQ(r.survivorCounts.size(), nodes);
    ASSERT_EQ(r.survivorDispls.size(), nodes);
    ASSERT_EQ(r.hitCounts.size(), nodes);
    ASSERT_EQ(r.hitDispls.size(), nodes);

    // Displacements are the exclusive prefix sum of counts in wire
    // bytes, and totals match the merged result.
    uint64_t survBytes = 0, hitBytes = 0, survTotal = 0,
             hitTotal = 0;
    for (uint32_t s = 0; s < nodes; ++s) {
        EXPECT_EQ(r.survivorDispls[s], survBytes);
        EXPECT_EQ(r.hitDispls[s], hitBytes);
        survBytes += r.survivorCounts[s] * kSurvivorWireBytes;
        hitBytes += r.hitCounts[s] * kHitWireBytes;
        survTotal += r.survivorCounts[s];
        hitTotal += r.hitCounts[s];
    }
    EXPECT_EQ(survTotal, r.merged.msvSurvivors.size());
    EXPECT_EQ(hitTotal, r.merged.hits.size());

    // The fabric carried exactly the non-root shards' bytes.
    uint64_t wireBytes = 0;
    for (uint32_t s = 1; s < nodes; ++s)
        wireBytes += r.survivorCounts[s] * kSurvivorWireBytes +
                     r.hitCounts[s] * kHitWireBytes;
    EXPECT_EQ(fabric.stats().bytes, wireBytes);
    EXPECT_GT(r.gatherCompleteSeconds, 0.0);
}

TEST_F(ShardedFixture, RepeatedShardedScansAreDeterministic)
{
    const uint32_t nodes = 3;
    SearchConfig cfg;
    net::TopologyConfig topo = net::commodityTopology(nodes);

    net::Interconnect fabA(topo), fabB(topo);
    const auto a = searchDatabaseSharded(prof, db, cache(), nullptr,
                                         cfg, topo, &fabA);
    const auto b = searchDatabaseSharded(prof, db, cache(), nullptr,
                                         cfg, topo, &fabB);
    EXPECT_TRUE(sameResult(a.merged, b.merged));
    EXPECT_EQ(a.survivorCounts, b.survivorCounts);
    EXPECT_EQ(a.hitDispls, b.hitDispls);
    EXPECT_DOUBLE_EQ(a.gatherCompleteSeconds,
                     b.gatherCompleteSeconds);
    EXPECT_EQ(fabA.trace().render(), fabB.trace().render());
    EXPECT_FALSE(fabA.trace().empty());
}

} // namespace
} // namespace afsb::msa
