/**
 * @file
 * Tests for the windowed nucleotide search and the Fig 2 memory
 * model.
 */

#include <gtest/gtest.h>

#include "bio/samples.hh"
#include "bio/seqgen.hh"
#include "msa/dbgen.hh"
#include "msa/memory_model.hh"
#include "msa/nhmmer.hh"
#include "util/units.hh"
#include "util/logging.hh"

namespace afsb::msa {
namespace {

using bio::MoleculeType;
using bio::Sequence;

TEST(ReverseComplement, InvertsAndComplements)
{
    const Sequence s("x", MoleculeType::Rna, "ACGU");
    const auto rc = reverseComplement(s);
    EXPECT_EQ(rc.toString(), "ACGU");  // ACGU is its own RC
    const Sequence s2("y", MoleculeType::Dna, "AACG");
    EXPECT_EQ(reverseComplement(s2).toString(), "CGTT");
    // Double application is identity.
    const Sequence s3("z", MoleculeType::Rna, "AAGGCUA");
    EXPECT_EQ(reverseComplement(reverseComplement(s3)).toString(),
              s3.toString());
    const Sequence p("p", MoleculeType::Protein, "MK");
    EXPECT_THROW(reverseComplement(p), FatalError);
}

struct NhmmerFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        bio::SequenceGenerator gen(909);
        query = gen.random("q", MoleculeType::Rna, 120);
        DbGenConfig cfg;
        cfg.decoyCount = 120;
        cfg.decoyMinLen = 150;
        cfg.decoyMaxLen = 600;
        cfg.homologsPerQuery = 6;
        cfg.fragmentsPerQuery = 4;
        const std::vector<const Sequence *> queries = {&query};
        generateDatabase(vfs, "rna.fasta", queries,
                         MoleculeType::Rna, cfg);
        db = SequenceDatabase::load(vfs, *cache, "rna.fasta",
                                    MoleculeType::Rna, 0.0);
    }

    Sequence query;
    io::Vfs vfs;
    io::StorageDevice dev;
    std::unique_ptr<io::PageCache> cache =
        std::make_unique<io::PageCache>(1 * GiB, &dev);
    SequenceDatabase db;
};

TEST_F(NhmmerFixture, ScansWindowsAndFindsHomologs)
{
    NhmmerConfig cfg;
    const auto result = runNhmmer(query, db, *cache, nullptr, cfg);
    EXPECT_GT(result.windowsScanned, db.size());
    EXPECT_GE(result.stats.hits, 2u);
    EXPECT_GE(result.msa.depth(), 3u);
    EXPECT_EQ(result.msa.queryLength, query.length());
}

TEST_F(NhmmerFixture, ModeledMemoryReported)
{
    NhmmerConfig cfg;
    const auto result = runNhmmer(query, db, *cache, nullptr, cfg);
    EXPECT_EQ(result.modeledPeakMemory,
              nhmmerPeakMemoryBytes(query.length()));
    EXPECT_GT(result.modeledPeakMemory, 0u);
}

TEST_F(NhmmerFixture, MultithreadedMatchesSingle)
{
    NhmmerConfig cfg;
    const auto r1 = runNhmmer(query, db, *cache, nullptr, cfg);
    ThreadPool pool(4);
    NhmmerConfig cfg4 = cfg;
    cfg4.search.threads = 4;
    const auto r4 = runNhmmer(query, db, *cache, &pool, cfg4);
    EXPECT_EQ(r1.stats.hits, r4.stats.hits);
    EXPECT_EQ(r1.windowsScanned, r4.windowsScanned);
}

TEST_F(NhmmerFixture, RejectsProteinQuery)
{
    bio::SequenceGenerator gen(4);
    const auto prot = gen.random("p", MoleculeType::Protein, 50);
    NhmmerConfig cfg;
    EXPECT_THROW(runNhmmer(prot, db, *cache, nullptr, cfg),
                 FatalError);
}

// --- Fig 2 memory model -------------------------------------------------

TEST(MemoryModel, MatchesPublishedRnaPoints)
{
    // Paper Fig 2: 621 nt -> 79.3 GiB, 935 -> 506, 1135 -> 644.
    EXPECT_NEAR(static_cast<double>(nhmmerPeakMemoryBytes(621)) /
                    static_cast<double>(GiB),
                79.3, 0.5);
    EXPECT_NEAR(static_cast<double>(nhmmerPeakMemoryBytes(935)) /
                    static_cast<double>(GiB),
                506.0, 1.0);
    EXPECT_NEAR(static_cast<double>(nhmmerPeakMemoryBytes(1135)) /
                    static_cast<double>(GiB),
                644.0, 1.0);
}

TEST(MemoryModel, Rna1335ExceedsCxlCapacity)
{
    // The paper's 1,335-nt input failed at 768 GiB (512 DRAM +
    // 256 CXL).
    EXPECT_GT(nhmmerPeakMemoryBytes(1335), 768 * GiB);
}

TEST(MemoryModel, RnaCurveIsMonotone)
{
    uint64_t prev = 0;
    for (size_t len = 50; len <= 1400; len += 25) {
        const uint64_t m = nhmmerPeakMemoryBytes(len);
        EXPECT_GE(m, prev) << "at length " << len;
        prev = m;
    }
}

TEST(MemoryModel, RnaGrowthIsNonLinear)
{
    // Section III-C: "memory consumption of nhmmer increased
    // non-linearly with RNA input length": doubling 467 -> 934
    // should far more than double memory.
    const auto m1 = nhmmerPeakMemoryBytes(467);
    const auto m2 = nhmmerPeakMemoryBytes(934);
    EXPECT_GT(m2, 4 * m1);
}

TEST(MemoryModel, ProteinPointsMatchPaper)
{
    // 1000 res: 0.23 GiB @1T, ~0.9 GiB @8T; 2000 res: ~1.7 GiB @8T.
    EXPECT_NEAR(static_cast<double>(
                    jackhmmerPeakMemoryBytes(1000, 1)) /
                    static_cast<double>(GiB),
                0.23, 0.02);
    EXPECT_NEAR(static_cast<double>(
                    jackhmmerPeakMemoryBytes(1000, 8)) /
                    static_cast<double>(GiB),
                0.9, 0.05);
    EXPECT_NEAR(static_cast<double>(
                    jackhmmerPeakMemoryBytes(2000, 8)) /
                    static_cast<double>(GiB),
                1.8, 0.15);
}

TEST(MemoryModel, RnaDominatesComplexPeak)
{
    // For 6QNR-like inputs the RNA chain footprint dwarfs the
    // protein chains ("the number and length of accompanying
    // protein chains had negligible impact").
    const auto sample = bio::makeSample("6QNR");
    const uint64_t whole =
        msaPhasePeakMemoryBytes(sample.complex, 8);
    const uint64_t rnaOnly = nhmmerPeakMemoryBytes(
        sample.complex.longestChain(MoleculeType::Rna));
    EXPECT_GT(whole, rnaOnly);
    EXPECT_LT(static_cast<double>(whole),
              1.2 * static_cast<double>(rnaOnly));
}

TEST(MemoryModel, ProteinOnlyComplexIsCheap)
{
    const auto sample = bio::makeSample("1YY9");
    const uint64_t peak =
        msaPhasePeakMemoryBytes(sample.complex, 8);
    EXPECT_LT(peak, 2 * GiB);
}

} // namespace
} // namespace afsb::msa
