/**
 * @file
 * Streaming compressed database tests: the AFBC-backed
 * StreamingSequenceDatabase must present exactly the targets that
 * SequenceDatabase::load parses from the same FASTA bytes, a
 * streaming scan must produce the in-RAM scan's hit set
 * bit-identically, and decode residency must stay budget-bound.
 */

#include <gtest/gtest.h>

#include "bio/seqgen.hh"
#include "msa/dbgen.hh"
#include "msa/search.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace afsb::msa {
namespace {

using bio::MoleculeType;
using bio::Sequence;

struct StreamingDbFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        gen = std::make_unique<bio::SequenceGenerator>(101);
        query = gen->random("q", MoleculeType::Protein, 180);

        DbGenConfig cfg;
        cfg.decoyCount = 250;
        cfg.homologsPerQuery = 8;
        cfg.fragmentsPerQuery = 6;
        const std::vector<const Sequence *> queries = {&query};
        generateDatabase(vfs, "prot.fasta", queries,
                         MoleculeType::Protein, cfg);
        db = SequenceDatabase::load(vfs, cache(), "prot.fasta",
                                    MoleculeType::Protein, 0.0);
        comp = compressDatabase(vfs, "prot.fasta", "prot.afbc");
    }

    io::PageCache &
    cache()
    {
        if (!cache_)
            cache_ = std::make_unique<io::PageCache>(1 * GiB, &dev);
        return *cache_;
    }

    StreamingSequenceDatabase
    openStreaming(uint64_t budget =
                      StreamingSequenceDatabase::kDefaultDecodeBudget)
    {
        return StreamingSequenceDatabase::open(
            vfs, cache(), "prot.afbc", MoleculeType::Protein, 0.0,
            budget);
    }

    std::unique_ptr<bio::SequenceGenerator> gen;
    Sequence query;
    io::Vfs vfs;
    io::StorageDevice dev;
    std::unique_ptr<io::PageCache> cache_;
    SequenceDatabase db;
    io::BlockFileStats comp;
};

TEST_F(StreamingDbFixture, CompressionShrinksTheCollection)
{
    EXPECT_EQ(comp.rawBytes, vfs.size(*vfs.open("prot.fasta")));
    EXPECT_LT(comp.compressedBytes, comp.rawBytes);
    EXPECT_GT(comp.ratio(), 1.0);
}

TEST_F(StreamingDbFixture, IndexMatchesInRamDatabase)
{
    const auto sdb = openStreaming();
    ASSERT_EQ(sdb.size(), db.size());
    EXPECT_EQ(sdb.totalResidues(), db.totalResidues());
    for (size_t i = 0; i < db.size(); ++i) {
        const auto &seq = db.sequences()[i];
        EXPECT_EQ(sdb.id(i), seq.id());
        EXPECT_EQ(sdb.length(i), seq.length());
        const auto a = sdb.byteExtent(i);
        const auto b = db.byteExtent(i);
        EXPECT_EQ(a.offset, b.offset);
        EXPECT_EQ(a.length, b.length);
    }
}

TEST_F(StreamingDbFixture, MaterializeDecodesIdenticalSequences)
{
    const auto sdb = openStreaming();
    for (size_t i = 0; i < db.size(); i += 17) {
        const auto seq = sdb.materialize(i, 0.0);
        const auto &want = db.sequences()[i];
        EXPECT_EQ(seq.id(), want.id());
        EXPECT_EQ(seq.codes(), want.codes());
    }
}

TEST_F(StreamingDbFixture, StreamingScanMatchesInRamScanExactly)
{
    const auto prof =
        ProfileHmm::fromSequence(query, ScoreMatrix::blosum62());
    SearchConfig cfg;
    const auto ram = searchDatabase(prof, db, cache(), nullptr, cfg);

    const auto sdb = openStreaming();
    const auto streamed = searchDatabaseStreaming(prof, sdb, cfg);

    EXPECT_EQ(streamed.stats.targetsScanned,
              ram.stats.targetsScanned);
    EXPECT_EQ(streamed.stats.residuesScanned,
              ram.stats.residuesScanned);
    EXPECT_EQ(streamed.stats.msvPassed, ram.stats.msvPassed);
    EXPECT_EQ(streamed.stats.viterbiPassed, ram.stats.viterbiPassed);
    EXPECT_EQ(streamed.stats.hits, ram.stats.hits);
    EXPECT_EQ(streamed.stats.cellsMsv, ram.stats.cellsMsv);
    EXPECT_EQ(streamed.stats.cellsViterbi, ram.stats.cellsViterbi);
    EXPECT_EQ(streamed.stats.cellsForward, ram.stats.cellsForward);
    EXPECT_EQ(streamed.msvSurvivors, ram.msvSurvivors);
    ASSERT_EQ(streamed.hits.size(), ram.hits.size());
    for (size_t i = 0; i < ram.hits.size(); ++i) {
        EXPECT_EQ(streamed.hits[i].targetIndex,
                  ram.hits[i].targetIndex);
        EXPECT_EQ(streamed.hits[i].viterbiScore,
                  ram.hits[i].viterbiScore);
        EXPECT_DOUBLE_EQ(streamed.hits[i].forwardLogOdds,
                         ram.hits[i].forwardLogOdds);
    }
}

TEST_F(StreamingDbFixture, ScanSubrangeHonored)
{
    const auto prof =
        ProfileHmm::fromSequence(query, ScoreMatrix::blosum62());
    const auto sdb = openStreaming();
    SearchConfig cfg;
    cfg.targetBegin = 10;
    cfg.targetEnd = 40;
    const auto r = searchDatabaseStreaming(prof, sdb, cfg);
    EXPECT_EQ(r.stats.targetsScanned, 30u);
    for (const auto &h : r.hits) {
        EXPECT_GE(h.targetIndex, 10u);
        EXPECT_LT(h.targetIndex, 40u);
    }
}

TEST_F(StreamingDbFixture, ResidencyStaysWithinDecodeBudget)
{
    const uint64_t budget = 128 * KiB;
    const auto sdb = openStreaming(budget);
    const auto prof =
        ProfileHmm::fromSequence(query, ScoreMatrix::blosum62());
    (void)searchDatabaseStreaming(prof, sdb, {});
    // Decode state may momentarily overshoot by one block before
    // eviction; the compressed-side reader window rides on top.
    EXPECT_LE(sdb.blockStats().peakResidentBytes,
              budget + io::kBlockFileBlockSize +
                  io::BufferedReader::kBufferSize);
    // The whole-database view adds only the per-target index on top
    // of the decode state (never the decoded collection).
    const uint64_t indexPart =
        sdb.peakResidentBytes() - sdb.blockStats().peakResidentBytes;
    EXPECT_GT(indexPart, 0u);
    EXPECT_LT(indexPart, comp.rawBytes);
    EXPECT_GT(sdb.blockStats().blocksDecoded, 0u);
    EXPECT_GT(sdb.readerStats().bytesFromDisk, 0u);
}

TEST_F(StreamingDbFixture, MissingFilesAreFatal)
{
    EXPECT_THROW(
        compressDatabase(vfs, "absent.fasta", "absent.afbc"),
        FatalError);
    EXPECT_THROW(StreamingSequenceDatabase::open(
                     vfs, cache(), "absent.afbc",
                     MoleculeType::Protein, 0.0),
                 FatalError);
    // A FASTA file is not an AFBC container.
    EXPECT_THROW(StreamingSequenceDatabase::open(
                     vfs, cache(), "prot.fasta",
                     MoleculeType::Protein, 0.0),
                 FatalError);
}

} // namespace
} // namespace afsb::msa
