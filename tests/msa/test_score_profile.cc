/**
 * @file
 * Unit tests for scoring matrices and profile HMM construction.
 */

#include <gtest/gtest.h>

#include "bio/seqgen.hh"
#include "msa/profile_hmm.hh"
#include "msa/score_matrix.hh"
#include "util/logging.hh"

namespace afsb::msa {
namespace {

using bio::MoleculeType;
using bio::Sequence;

int
code(char c)
{
    return bio::encodeResidue(MoleculeType::Protein, c);
}

TEST(ScoreMatrix, Blosum62KnownValues)
{
    const auto &m = ScoreMatrix::blosum62();
    EXPECT_EQ(m.size(), 20u);
    EXPECT_EQ(m.score(code('A'), code('A')), 4);
    EXPECT_EQ(m.score(code('W'), code('W')), 11);
    EXPECT_EQ(m.score(code('Q'), code('Q')), 5);
    EXPECT_EQ(m.score(code('A'), code('W')), -3);
    EXPECT_EQ(m.score(code('I'), code('L')), 2);
    EXPECT_EQ(m.score(code('D'), code('E')), 2);
    EXPECT_EQ(m.maxScore(), 11);
}

TEST(ScoreMatrix, Blosum62IsSymmetric)
{
    const auto &m = ScoreMatrix::blosum62();
    for (uint8_t a = 0; a < 20; ++a)
        for (uint8_t b = 0; b < 20; ++b)
            EXPECT_EQ(m.score(a, b), m.score(b, a));
}

TEST(ScoreMatrix, NucleotideMatchMismatch)
{
    const auto m = ScoreMatrix::nucleotide(2, 3);
    EXPECT_EQ(m.size(), 4u);
    for (uint8_t a = 0; a < 4; ++a)
        for (uint8_t b = 0; b < 4; ++b)
            EXPECT_EQ(m.score(a, b), a == b ? 2 : -3);
}

TEST(ProfileHmm, SingleSequenceEmissionsMatchMatrixColumns)
{
    const Sequence q("q", MoleculeType::Protein, "MKW");
    const auto &m = ScoreMatrix::blosum62();
    const auto prof = ProfileHmm::fromSequence(q, m);
    EXPECT_EQ(prof.length(), 3u);
    EXPECT_EQ(prof.alphabet(), 20u);
    for (uint8_t r = 0; r < 20; ++r) {
        EXPECT_EQ(prof.matchScore(0, r), m.score(q[0], r));
        EXPECT_EQ(prof.matchScore(2, r), m.score(q[2], r));
    }
    EXPECT_EQ(prof.maxEmission(), 11);  // W-W
    EXPECT_EQ(prof.footprintBytes(), 3u * 20u * sizeof(int16_t));
}

TEST(ProfileHmm, SelfScoreIsPositiveAndMaximal)
{
    bio::SequenceGenerator gen(3);
    const auto q = gen.random("q", MoleculeType::Protein, 100);
    const auto prof =
        ProfileHmm::fromSequence(q, ScoreMatrix::blosum62());
    for (size_t pos = 0; pos < q.length(); ++pos) {
        const int self = prof.matchScore(pos, q[pos]);
        EXPECT_GT(self, 0);
        for (uint8_t r = 0; r < 20; ++r)
            EXPECT_LE(prof.matchScore(pos, r), self);
    }
}

TEST(ProfileHmm, AlignmentProfileShiftsTowardConsensus)
{
    // Columns where all rows agree should keep strong self-scores;
    // a split column should score both residues comparably.
    const Sequence a("a", MoleculeType::Protein, "MMM");
    const Sequence b("b", MoleculeType::Protein, "MKM");
    const auto prof = ProfileHmm::fromAlignment(
        {&a, &b}, ScoreMatrix::blosum62());
    // Column 1 is M/K split: K should score clearly better than in
    // an M-only profile.
    const auto profA =
        ProfileHmm::fromSequence(a, ScoreMatrix::blosum62());
    EXPECT_GT(prof.matchScore(1, static_cast<uint8_t>(code('K'))),
              profA.matchScore(1, static_cast<uint8_t>(code('K'))));
}

TEST(ProfileHmm, RejectsBadInput)
{
    const Sequence empty("e", MoleculeType::Protein, "");
    EXPECT_THROW(
        ProfileHmm::fromSequence(empty, ScoreMatrix::blosum62()),
        FatalError);
    const Sequence a("a", MoleculeType::Protein, "MK");
    const Sequence b("b", MoleculeType::Protein, "MKV");
    EXPECT_THROW(ProfileHmm::fromAlignment(
                     {&a, &b}, ScoreMatrix::blosum62()),
                 FatalError);
    EXPECT_THROW(
        ProfileHmm::fromAlignment({}, ScoreMatrix::blosum62()),
        FatalError);
}

} // namespace
} // namespace afsb::msa
