/**
 * @file
 * Tests for the Karlin-Altschul significance statistics.
 */

#include <gtest/gtest.h>

#include "bio/seqgen.hh"
#include "msa/evalue.hh"

namespace afsb::msa {
namespace {

struct EvalueFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        bio::SequenceGenerator gen(404);
        query = gen.random("q", bio::MoleculeType::Protein, 150);
        prof = std::make_unique<ProfileHmm>(
            ProfileHmm::fromSequence(query,
                                     ScoreMatrix::blosum62()));
        Rng rng(11);
        params = fitGumbel(*prof, rng, 150, 200);
    }

    bio::Sequence query;
    std::unique_ptr<ProfileHmm> prof;
    GumbelParams params;
};

TEST_F(EvalueFixture, FitProducesSaneParameters)
{
    EXPECT_GT(params.lambda, 0.01);
    EXPECT_LT(params.lambda, 2.0);
    EXPECT_GT(params.mu, 0.0);  // random Viterbi scores are positive
    EXPECT_EQ(params.refTargetLen, 200u);
}

TEST_F(EvalueFixture, PValueIsMonotoneDecreasingInScore)
{
    double prev = 1.1;
    for (double s = params.mu - 20; s < params.mu + 120; s += 10) {
        const double p = pValue(params, s, 200);
        EXPECT_LE(p, prev);
        EXPECT_GE(p, 0.0);
        EXPECT_LE(p, 1.0);
        prev = p;
    }
}

TEST_F(EvalueFixture, RandomScoresHaveUnsurprisingPValues)
{
    // The median random score should have a P-value near 0.5.
    const double p = pValue(params, params.mu, 200);
    EXPECT_GT(p, 0.3);
    EXPECT_LT(p, 0.9);
}

TEST_F(EvalueFixture, SelfHitIsOverwhelminglySignificant)
{
    KernelConfig cfg;
    const double self = static_cast<double>(
        calcBand9(*prof, query, cfg).score);
    EXPECT_LT(eValue(params, self, 100000, 300), 1e-6);
    EXPECT_TRUE(
        includeInNextRound(params, self, 100000, 300));
}

TEST_F(EvalueFixture, EValueScalesWithDatabaseSize)
{
    const double score = params.mu + 15.0;
    const double e1 = eValue(params, score, 1000, 200);
    const double e2 = eValue(params, score, 2000, 200);
    EXPECT_NEAR(e2 / e1, 2.0, 1e-9);
}

TEST_F(EvalueFixture, LongerTargetsAreLessSurprising)
{
    const double score = params.mu + 10.0;
    EXPECT_GT(pValue(params, score, 2000),
              pValue(params, score, 100));
}

TEST_F(EvalueFixture, InclusionThresholdGates)
{
    // A barely-above-noise score is excluded at strict thresholds.
    const double weak = params.mu + 5.0;
    EXPECT_FALSE(
        includeInNextRound(params, weak, 100000, 300, 1e-3));
    EXPECT_TRUE(
        includeInNextRound(params, weak, 100000, 300, 1e6));
}

TEST_F(EvalueFixture, FitIsDeterministicPerSeed)
{
    Rng r1(77), r2(77);
    const auto a = fitGumbel(*prof, r1, 60, 150);
    const auto b = fitGumbel(*prof, r2, 60, 150);
    EXPECT_DOUBLE_EQ(a.lambda, b.lambda);
    EXPECT_DOUBLE_EQ(a.mu, b.mu);
}

} // namespace
} // namespace afsb::msa
