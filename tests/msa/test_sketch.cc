/**
 * @file
 * MinHash sketch / LSH banding tests, plus the delta re-search
 * acceptance and equivalence contracts the similarity cache relies
 * on: for the same query a delta over the cached MSV survivor set
 * yields exactly the full scan's hits, and an unrelated query's
 * delta is rejected.
 */

#include <gtest/gtest.h>

#include <random>
#include <unordered_set>

#include "bio/samples.hh"
#include "bio/seqgen.hh"
#include "msa/dbgen.hh"
#include "msa/search.hh"
#include "msa/sketch.hh"
#include "util/units.hh"

namespace afsb::msa {
namespace {

using bio::MoleculeType;
using bio::Sequence;

std::vector<uint8_t>
randomCodes(size_t n, uint32_t seed, size_t alphabet = 20)
{
    std::mt19937 rng(seed);
    std::vector<uint8_t> codes(n);
    for (auto &c : codes)
        c = static_cast<uint8_t>(rng() % alphabet);
    return codes;
}

std::vector<uint8_t>
mutate(std::vector<uint8_t> codes, double rate, uint32_t seed,
       size_t alphabet = 20)
{
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> u(0.0, 1.0);
    for (auto &c : codes) {
        if (u(rng) >= rate)
            continue;
        uint8_t sub = static_cast<uint8_t>(rng() % (alphabet - 1));
        if (sub >= c)
            ++sub;
        c = sub;
    }
    return codes;
}

TEST(Sketch, DeterministicAndSelfSimilar)
{
    const auto codes = randomCodes(600, 11);
    const auto a = sketchCodes(codes, 0);
    const auto b = sketchCodes(codes, 0);
    ASSERT_EQ(a.minhash.size(), SketchConfig{}.hashes);
    EXPECT_EQ(a.minhash, b.minhash);
    EXPECT_DOUBLE_EQ(jaccardEstimate(a, b), 1.0);
}

TEST(Sketch, NearDuplicateScoresHighUnrelatedScoresLow)
{
    const auto base = randomCodes(600, 11);
    const auto near = sketchCodes(mutate(base, 0.02, 5), 0);
    const auto self = sketchCodes(base, 0);
    const auto other = sketchCodes(randomCodes(600, 99), 0);
    EXPECT_GT(jaccardEstimate(self, near), 0.6);
    EXPECT_LT(jaccardEstimate(self, other), 0.3);
}

TEST(Sketch, SaltDecorrelatesVariants)
{
    const auto codes = randomCodes(600, 11);
    const auto v0 = sketchCodes(codes, 0);
    const auto v1 = sketchCodes(codes, 1);
    EXPECT_NE(v0.minhash, v1.minhash);
    EXPECT_LT(jaccardEstimate(v0, v1), 0.3);
}

TEST(Sketch, EmptySketchNeverMatches)
{
    const QuerySketch empty;
    const auto a = sketchCodes(randomCodes(100, 3), 0);
    EXPECT_TRUE(empty.empty());
    EXPECT_DOUBLE_EQ(jaccardEstimate(empty, a), 0.0);
    EXPECT_DOUBLE_EQ(jaccardEstimate(a, empty), 0.0);
}

TEST(Sketch, BandsCollideForNearDuplicatesOnly)
{
    const SketchConfig cfg;
    const auto base = randomCodes(600, 11);
    const auto self = sketchCodes(base, 0).bandHashes(cfg);
    const auto near =
        sketchCodes(mutate(base, 0.02, 5), 0).bandHashes(cfg);
    const auto other =
        sketchCodes(randomCodes(600, 99), 0).bandHashes(cfg);
    ASSERT_EQ(self.size(), cfg.bands);

    const std::unordered_set<uint64_t> mine(self.begin(), self.end());
    size_t nearShared = 0;
    size_t otherShared = 0;
    for (const auto h : near)
        nearShared += mine.count(h);
    for (const auto h : other)
        otherShared += mine.count(h);
    EXPECT_GT(nearShared, 0u); // probe finds the cached entry
    EXPECT_EQ(otherShared, 0u);
}

TEST(Sketch, ComplexSketchCoversShortChains)
{
    // Chains shorter than k must still contribute (whole-chain
    // token), so no query sketches empty.
    bio::Complex c("tiny");
    c.addChain(Sequence("a", MoleculeType::Protein,
                        std::vector<uint8_t>{1, 2, 3}));
    const auto s = sketchComplex(c, 0);
    EXPECT_FALSE(s.empty());
}

TEST(Sketch, SampleComplexesAreMutuallyDissimilar)
{
    const auto a =
        sketchComplex(bio::makeSample("2PV7").complex, 0);
    const auto b =
        sketchComplex(bio::makeSample("7RCE").complex, 0);
    EXPECT_DOUBLE_EQ(jaccardEstimate(a, a), 1.0);
    EXPECT_LT(jaccardEstimate(a, b), 0.3);
}

/** Planted-homolog database shared by the delta-search tests. */
struct DeltaSearchFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        gen = std::make_unique<bio::SequenceGenerator>(101);
        query = gen->random("q", MoleculeType::Protein, 180);

        DbGenConfig cfg;
        cfg.decoyCount = 250;
        cfg.homologsPerQuery = 8;
        cfg.fragmentsPerQuery = 6;
        const std::vector<const Sequence *> queries = {&query};
        generateDatabase(vfs, "prot.fasta", queries,
                         MoleculeType::Protein, cfg);
        db = SequenceDatabase::load(vfs, cache(), "prot.fasta",
                                    MoleculeType::Protein, 0.0);
    }

    io::PageCache &
    cache()
    {
        if (!cache_)
            cache_ = std::make_unique<io::PageCache>(1 * GiB, &dev);
        return *cache_;
    }

    std::unique_ptr<bio::SequenceGenerator> gen;
    Sequence query;
    io::Vfs vfs;
    io::StorageDevice dev;
    std::unique_ptr<io::PageCache> cache_;
    SequenceDatabase db;
};

TEST_F(DeltaSearchFixture, SameQueryDeltaEqualsFullScan)
{
    const auto prof =
        ProfileHmm::fromSequence(query, ScoreMatrix::blosum62());
    SearchConfig cfg;
    const auto full =
        searchDatabase(prof, db, cache(), nullptr, cfg);
    ASSERT_FALSE(full.msvSurvivors.empty());

    const auto delta = deltaSearch(prof, db, cache(), cfg,
                                   full.msvSurvivors);
    EXPECT_TRUE(delta.accepted);
    EXPECT_EQ(delta.survivorsRescored, full.msvSurvivors.size());
    EXPECT_EQ(delta.survivorsRetained, full.msvSurvivors.size());
    EXPECT_DOUBLE_EQ(delta.retention(), 1.0);

    // Hits are a subset of the MSV survivors, so rescoring only the
    // survivors reproduces the full scan's hit set exactly.
    ASSERT_EQ(delta.result.hits.size(), full.hits.size());
    for (size_t i = 0; i < full.hits.size(); ++i) {
        EXPECT_EQ(delta.result.hits[i].targetIndex,
                  full.hits[i].targetIndex);
        EXPECT_EQ(delta.result.hits[i].viterbiScore,
                  full.hits[i].viterbiScore);
        EXPECT_DOUBLE_EQ(delta.result.hits[i].forwardLogOdds,
                         full.hits[i].forwardLogOdds);
    }
    EXPECT_EQ(delta.result.msvSurvivors, full.msvSurvivors);
    // The delta touches only the survivor subset.
    EXPECT_EQ(delta.result.stats.targetsScanned,
              full.msvSurvivors.size());
    EXPECT_LT(delta.result.stats.cellsMsv, full.stats.cellsMsv);
}

TEST_F(DeltaSearchFixture, NearDuplicateQueryDeltaAccepted)
{
    const auto prof =
        ProfileHmm::fromSequence(query, ScoreMatrix::blosum62());
    SearchConfig cfg;
    const auto full =
        searchDatabase(prof, db, cache(), nullptr, cfg);

    // 2%-mutated copy of the query: the cached survivor set still
    // covers it, so the delta is accepted.
    auto codes = query.codes();
    std::mt19937 rng(5);
    std::uniform_real_distribution<double> u(0.0, 1.0);
    for (auto &c : codes)
        if (u(rng) < 0.02)
            c = static_cast<uint8_t>(rng() % 20);
    const Sequence mutated("q_mut", MoleculeType::Protein, codes);
    const auto mprof =
        ProfileHmm::fromSequence(mutated, ScoreMatrix::blosum62());

    const auto delta = deltaSearch(mprof, db, cache(), cfg,
                                   full.msvSurvivors);
    EXPECT_TRUE(delta.accepted);
    EXPECT_GE(delta.retention(), 0.5);
}

TEST_F(DeltaSearchFixture, UnrelatedQueryDeltaRejected)
{
    const auto prof =
        ProfileHmm::fromSequence(query, ScoreMatrix::blosum62());
    SearchConfig cfg;
    const auto full =
        searchDatabase(prof, db, cache(), nullptr, cfg);

    const auto other = gen->random("other", MoleculeType::Protein,
                                   180);
    const auto oprof =
        ProfileHmm::fromSequence(other, ScoreMatrix::blosum62());
    const auto delta = deltaSearch(oprof, db, cache(), cfg,
                                   full.msvSurvivors);
    // The cached survivors were selected for the original query;
    // an unrelated query retains too few of them past the MSV
    // prefilter to trust the delta.
    EXPECT_FALSE(delta.accepted);
    EXPECT_LT(delta.retention(), 0.5);
}

TEST_F(DeltaSearchFixture, EmptySurvivorSetIsRejected)
{
    const auto prof =
        ProfileHmm::fromSequence(query, ScoreMatrix::blosum62());
    const auto delta = deltaSearch(prof, db, cache(), {}, {});
    EXPECT_FALSE(delta.accepted);
    EXPECT_EQ(delta.survivorsRescored, 0u);
}

} // namespace
} // namespace afsb::msa
