/**
 * @file
 * Overlapped staged scan vs. static partition: the two untraced
 * paths must produce bit-identical hit sets (scores included) and
 * identical pipeline counters at any thread count, and the staged
 * path must be deterministic across repeated runs. Also covers the
 * jackhmmer survivor carry-over, the nhmmer window pipeline, stage
 * counter accounting, and the thread clamp.
 */

#include <gtest/gtest.h>

#include "bio/seqgen.hh"
#include "msa/dbgen.hh"
#include "msa/jackhmmer.hh"
#include "msa/nhmmer.hh"
#include "msa/search.hh"
#include "util/units.hh"

namespace afsb::msa {
namespace {

using bio::MoleculeType;
using bio::Sequence;

/** Exact comparison of two scan results (hit scores included). */
void
expectIdentical(const SearchResult &a, const SearchResult &b)
{
    EXPECT_EQ(a.stats.targetsScanned, b.stats.targetsScanned);
    EXPECT_EQ(a.stats.residuesScanned, b.stats.residuesScanned);
    EXPECT_EQ(a.stats.msvPassed, b.stats.msvPassed);
    EXPECT_EQ(a.stats.viterbiPassed, b.stats.viterbiPassed);
    EXPECT_EQ(a.stats.domainsScored, b.stats.domainsScored);
    EXPECT_EQ(a.stats.hits, b.stats.hits);
    EXPECT_EQ(a.stats.cellsMsv, b.stats.cellsMsv);
    EXPECT_EQ(a.stats.cellsViterbi, b.stats.cellsViterbi);
    EXPECT_EQ(a.stats.cellsForward, b.stats.cellsForward);
    EXPECT_EQ(a.stats.bytesStreamed, b.stats.bytesStreamed);
    ASSERT_EQ(a.hits.size(), b.hits.size());
    for (size_t i = 0; i < a.hits.size(); ++i) {
        EXPECT_EQ(a.hits[i].targetIndex, b.hits[i].targetIndex);
        EXPECT_EQ(a.hits[i].viterbiScore, b.hits[i].viterbiScore);
        EXPECT_EQ(a.hits[i].forwardLogOdds,
                  b.hits[i].forwardLogOdds);
    }
    ASSERT_EQ(a.msvSurvivors.size(), b.msvSurvivors.size());
    for (size_t i = 0; i < a.msvSurvivors.size(); ++i)
        EXPECT_EQ(a.msvSurvivors[i], b.msvSurvivors[i]);
}

struct OverlapFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        bio::SequenceGenerator gen(4242);
        // A mildly low-complexity query inflates the survivor set
        // (paper Observation 2), which is exactly the skew the
        // dynamic survivor stage exists to balance.
        query = gen.withHomopolymer("q", 200, 48, 'Q');

        DbGenConfig cfg;
        cfg.decoyCount = 600;
        cfg.homologsPerQuery = 10;
        cfg.fragmentsPerQuery = 8;
        cfg.lowComplexityFraction = 0.1;
        const std::vector<const Sequence *> queries = {&query};
        generateDatabase(vfs, "prot.fasta", queries,
                         MoleculeType::Protein, cfg);
        cache = std::make_unique<io::PageCache>(1 * GiB, &dev);
        db = SequenceDatabase::load(vfs, *cache, "prot.fasta",
                                    MoleculeType::Protein, 0.0);
        prof = std::make_unique<ProfileHmm>(
            ProfileHmm::fromSequence(query,
                                     ScoreMatrix::blosum62()));
    }

    SearchResult
    scan(ThreadPool *pool, size_t threads, bool overlap,
         const std::vector<uint32_t> *priority = nullptr,
         bool taskScan = true)
    {
        SearchConfig cfg;
        cfg.threads = threads;
        cfg.overlap = overlap;
        cfg.priorityTargets = priority;
        cfg.taskScan = taskScan;
        return searchDatabase(*prof, db, *cache, pool, cfg);
    }

    Sequence query;
    io::Vfs vfs;
    io::StorageDevice dev;
    std::unique_ptr<io::PageCache> cache;
    SequenceDatabase db;
    std::unique_ptr<ProfileHmm> prof;
};

TEST_F(OverlapFixture, MatchesStaticPathAcrossThreadCounts)
{
    const auto reference = scan(nullptr, 1, false);
    EXPECT_GT(reference.stats.msvPassed, 0u);
    EXPECT_GT(reference.hits.size(), 0u);
    for (size_t threads : {1u, 2u, 4u, 8u}) {
        ThreadPool pool(threads);
        const auto overlapped = scan(&pool, threads, true);
        const auto fixed = scan(&pool, threads, false);
        expectIdentical(reference, overlapped);
        expectIdentical(reference, fixed);
    }
}

TEST_F(OverlapFixture, TaskEngineMatchesQueueEngineAcrossThreads)
{
    // The default overlapped path runs on the TaskGroup engine
    // (runStagedScanTasks); taskScan = false selects the queue
    // engine. Both must match the serial reference bit-exactly,
    // and the task engine must keep the queue engine's pipeline
    // accounting invariants.
    const auto reference = scan(nullptr, 1, false);
    for (size_t threads : {2u, 4u, 8u}) {
        ThreadPool pool(threads);
        const auto tasked =
            scan(&pool, threads, true, nullptr, true);
        const auto queued =
            scan(&pool, threads, true, nullptr, false);
        expectIdentical(reference, tasked);
        expectIdentical(reference, queued);
        EXPECT_EQ(tasked.stats.stages.workersUsed, threads);
        EXPECT_EQ(tasked.stats.stages.survivorsQueued,
                  tasked.stats.msvPassed);
        EXPECT_LE(tasked.stats.stages.survivorsInline,
                  tasked.stats.stages.survivorsQueued);
        EXPECT_LE(tasked.stats.stages.occupancy(), 1.0 + 1e-9);
    }
}

TEST_F(OverlapFixture, RepeatedOverlappedRunsAreIdentical)
{
    ThreadPool pool(8);
    const auto a = scan(&pool, 8, true);
    const auto b = scan(&pool, 8, true);
    expectIdentical(a, b);
}

TEST_F(OverlapFixture, PriorityOrderingNeverChangesHits)
{
    ThreadPool pool(4);
    const auto first = scan(&pool, 4, true);
    ASSERT_FALSE(first.msvSurvivors.empty());
    const auto prioritized =
        scan(&pool, 4, true, &first.msvSurvivors);
    expectIdentical(first, prioritized);
}

TEST_F(OverlapFixture, StageCountersAccountForTheScan)
{
    ThreadPool pool(4);
    const auto r = scan(&pool, 4, true);
    const auto &st = r.stats.stages;
    EXPECT_EQ(st.overlappedScans, 1u);
    EXPECT_GT(st.chunks, 1u);
    EXPECT_EQ(st.workersUsed, 4u);
    // Every MSV survivor went through the queue exactly once
    // (pushed, or rescored inline under backpressure by its pusher).
    EXPECT_EQ(st.survivorsQueued, r.stats.msvPassed);
    // Each queued survivor is popped by a worker or helped inline.
    EXPECT_LE(st.survivorsInline, st.survivorsQueued);
    // The prefetch reader streamed the whole FASTA once.
    EXPECT_EQ(st.reader.bytesCopied, r.stats.bytesStreamed);
    EXPECT_EQ(r.stats.bytesStreamed,
              vfs.size(*vfs.open("prot.fasta")));
    EXPECT_GT(st.msvSeconds, 0.0);
    EXPECT_GT(st.wallSeconds, 0.0);
    EXPECT_GT(st.occupancy(), 0.0);
    EXPECT_LE(st.occupancy(), 1.0 + 1e-9);
}

TEST_F(OverlapFixture, ColdCacheStreamsFromDisk)
{
    ThreadPool pool(4);
    cache->dropAll();
    const auto cold = scan(&pool, 4, true);
    EXPECT_GT(cold.stats.bytesFromDisk, 0u);
    EXPECT_GT(cold.stats.ioLatency, 0.0);
    EXPECT_EQ(cold.stats.stages.reader.bytesFromDisk,
              cold.stats.bytesFromDisk);

    // Warm rescan: everything resident now.
    const auto warm = scan(&pool, 4, true);
    EXPECT_EQ(warm.stats.bytesFromDisk, 0u);
    expectIdentical(cold, warm);
}

TEST_F(OverlapFixture, ThreadClampStillScansEverything)
{
    ThreadPool pool(2);
    // threads > pool size: clamps (with a warning) and still works.
    const auto clamped = scan(&pool, 16, true);
    expectIdentical(scan(nullptr, 1, false), clamped);
    EXPECT_EQ(clamped.stats.stages.workersUsed, 2u);
}

TEST(OverlapJackhmmer, CarryAndOverlapNeverChangeTheMsa)
{
    bio::SequenceGenerator gen(777);
    const auto query =
        gen.random("q", MoleculeType::Protein, 160);
    io::Vfs vfs;
    io::StorageDevice dev;
    io::PageCache cache(1 * GiB, &dev);
    DbGenConfig dcfg;
    dcfg.decoyCount = 300;
    dcfg.homologsPerQuery = 8;
    const std::vector<const Sequence *> queries = {&query};
    generateDatabase(vfs, "db.fasta", queries,
                     MoleculeType::Protein, dcfg);
    const auto db = SequenceDatabase::load(
        vfs, cache, "db.fasta", MoleculeType::Protein, 0.0);

    ThreadPool pool(4);
    auto run = [&](bool overlap, bool carry) {
        JackhmmerConfig cfg;
        cfg.iterations = 3;
        cfg.search.threads = 4;
        cfg.search.overlap = overlap;
        cfg.carrySurvivors = carry;
        return runJackhmmer(query, db, cache, &pool, cfg);
    };
    const auto base = run(false, false);
    const auto carried = run(true, true);
    const auto uncarried = run(true, false);
    EXPECT_EQ(base.msa.depth(), carried.msa.depth());
    EXPECT_EQ(base.msa.depth(), uncarried.msa.depth());
    EXPECT_EQ(base.rounds, carried.rounds);
    EXPECT_EQ(base.stats.hits, carried.stats.hits);
    EXPECT_EQ(base.stats.msvPassed, carried.stats.msvPassed);
    EXPECT_EQ(base.stats.cellsViterbi, carried.stats.cellsViterbi);
    ASSERT_EQ(base.perRound.size(), carried.perRound.size());
    for (size_t r = 0; r < base.perRound.size(); ++r) {
        EXPECT_EQ(base.perRound[r].msvPassed,
                  carried.perRound[r].msvPassed);
        EXPECT_EQ(base.perRound[r].hits, carried.perRound[r].hits);
    }
}

TEST(OverlapNhmmer, WindowScanMatchesStaticPath)
{
    bio::SequenceGenerator gen(888);
    const auto query = gen.random("q", MoleculeType::Rna, 90);
    io::Vfs vfs;
    io::StorageDevice dev;
    io::PageCache cache(1 * GiB, &dev);
    DbGenConfig dcfg;
    dcfg.decoyCount = 120;
    dcfg.homologsPerQuery = 6;
    const std::vector<const Sequence *> queries = {&query};
    generateDatabase(vfs, "rna.fasta", queries, MoleculeType::Rna,
                     dcfg);
    const auto db = SequenceDatabase::load(
        vfs, cache, "rna.fasta", MoleculeType::Rna, 0.0);

    ThreadPool pool(4);
    auto run = [&](bool overlap) {
        NhmmerConfig cfg;
        cfg.search.threads = 4;
        cfg.search.overlap = overlap;
        return runNhmmer(query, db, cache, &pool, cfg);
    };
    const auto fixed = run(false);
    const auto overlapped = run(true);
    EXPECT_EQ(fixed.windowsScanned, overlapped.windowsScanned);
    EXPECT_EQ(fixed.stats.targetsScanned,
              overlapped.stats.targetsScanned);
    EXPECT_EQ(fixed.stats.msvPassed, overlapped.stats.msvPassed);
    EXPECT_EQ(fixed.stats.hits, overlapped.stats.hits);
    EXPECT_EQ(fixed.stats.bytesStreamed,
              overlapped.stats.bytesStreamed);
    EXPECT_EQ(fixed.msa.depth(), overlapped.msa.depth());
    EXPECT_EQ(overlapped.stats.stages.overlappedScans, 1u);
}

} // namespace
} // namespace afsb::msa
