/**
 * @file
 * Integration tests for iterative protein search and MSA assembly.
 */

#include <gtest/gtest.h>

#include "bio/seqgen.hh"
#include "msa/dbgen.hh"
#include "msa/jackhmmer.hh"
#include "util/units.hh"
#include "util/logging.hh"

namespace afsb::msa {
namespace {

using bio::MoleculeType;
using bio::Sequence;

struct JackFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        bio::SequenceGenerator gen(77);
        query = gen.random("q", MoleculeType::Protein, 160);
        DbGenConfig cfg;
        cfg.decoyCount = 200;
        cfg.homologsPerQuery = 10;
        cfg.fragmentsPerQuery = 5;
        const std::vector<const Sequence *> queries = {&query};
        generateDatabase(vfs, "db.fasta", queries,
                         MoleculeType::Protein, cfg);
        db = SequenceDatabase::load(vfs, *cache, "db.fasta",
                                    MoleculeType::Protein, 0.0);
    }

    Sequence query;
    io::Vfs vfs;
    io::StorageDevice dev;
    std::unique_ptr<io::PageCache> cache =
        std::make_unique<io::PageCache>(1 * GiB, &dev);
    SequenceDatabase db;
};

TEST_F(JackFixture, BuildsDeepMsa)
{
    JackhmmerConfig cfg;
    const auto result =
        runJackhmmer(query, db, *cache, nullptr, cfg);
    EXPECT_EQ(result.rounds, cfg.iterations);
    EXPECT_GE(result.msa.depth(), 5u);
    EXPECT_EQ(result.msa.queryLength, query.length());
    // Row 0 is the query itself.
    EXPECT_EQ(result.msa.rows[0], query.toString());
    EXPECT_EQ(result.msa.rowIds[0], "q");
    // All rows have query length.
    for (const auto &row : result.msa.rows)
        EXPECT_EQ(row.size(), query.length());
}

TEST_F(JackFixture, MsaRowsResembleQuery)
{
    JackhmmerConfig cfg;
    const auto result =
        runJackhmmer(query, db, *cache, nullptr, cfg);
    ASSERT_GE(result.msa.depth(), 2u);
    EXPECT_GT(result.msa.meanIdentity(), 0.4);
}

TEST_F(JackFixture, StatsAccumulateAcrossRounds)
{
    JackhmmerConfig cfg;
    cfg.iterations = 2;
    const auto result =
        runJackhmmer(query, db, *cache, nullptr, cfg);
    ASSERT_EQ(result.perRound.size(), 2u);
    EXPECT_EQ(result.stats.targetsScanned,
              result.perRound[0].targetsScanned +
                  result.perRound[1].targetsScanned);
    EXPECT_GT(result.stats.cellsMsv,
              result.perRound[0].cellsMsv);
}

TEST_F(JackFixture, SecondRoundFindsAtLeastFirstRoundHits)
{
    JackhmmerConfig cfg;
    cfg.iterations = 2;
    const auto result =
        runJackhmmer(query, db, *cache, nullptr, cfg);
    EXPECT_GE(result.perRound[1].hits, result.perRound[0].hits);
}

TEST_F(JackFixture, MultithreadedMatchesSingle)
{
    JackhmmerConfig cfg;
    const auto r1 = runJackhmmer(query, db, *cache, nullptr, cfg);
    ThreadPool pool(4);
    JackhmmerConfig cfg4 = cfg;
    cfg4.search.threads = 4;
    const auto r4 = runJackhmmer(query, db, *cache, &pool, cfg4);
    EXPECT_EQ(r1.msa.depth(), r4.msa.depth());
    EXPECT_EQ(r1.stats.hits, r4.stats.hits);
}

TEST_F(JackFixture, RejectsNucleotideQuery)
{
    bio::SequenceGenerator gen(5);
    const auto rna = gen.random("r", MoleculeType::Rna, 60);
    JackhmmerConfig cfg;
    EXPECT_THROW(runJackhmmer(rna, db, *cache, nullptr, cfg),
                 FatalError);
}

TEST_F(JackFixture, FeatureBytesMatchDims)
{
    JackhmmerConfig cfg;
    const auto result =
        runJackhmmer(query, db, *cache, nullptr, cfg);
    const uint64_t expect =
        static_cast<uint64_t>(result.msa.depth()) * query.length() *
        64 * 4;
    EXPECT_EQ(result.msa.featureBytes(), expect);
}

} // namespace
} // namespace afsb::msa
