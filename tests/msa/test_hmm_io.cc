/**
 * @file
 * Tests for profile-HMM serialization.
 */

#include <gtest/gtest.h>

#include "bio/seqgen.hh"
#include "msa/dp_kernels.hh"
#include "msa/hmm_io.hh"
#include "util/logging.hh"

namespace afsb::msa {
namespace {

TEST(HmmIo, RoundTripsProteinProfile)
{
    bio::SequenceGenerator gen(808);
    const auto q = gen.random("q", bio::MoleculeType::Protein, 120);
    const auto prof =
        ProfileHmm::fromSequence(q, ScoreMatrix::blosum62());
    const auto parsed = readHmm(writeHmm(prof));

    ASSERT_EQ(parsed.length(), prof.length());
    ASSERT_EQ(parsed.alphabet(), prof.alphabet());
    EXPECT_EQ(parsed.gaps().open, prof.gaps().open);
    EXPECT_EQ(parsed.gaps().extend, prof.gaps().extend);
    for (size_t pos = 0; pos < prof.length(); ++pos)
        for (uint8_t r = 0; r < 20; ++r)
            ASSERT_EQ(parsed.matchScore(pos, r),
                      prof.matchScore(pos, r));
}

TEST(HmmIo, RoundTripsNucleotideProfile)
{
    bio::SequenceGenerator gen(809);
    const auto q = gen.random("q", bio::MoleculeType::Rna, 60);
    const auto prof =
        ProfileHmm::fromSequence(q, ScoreMatrix::nucleotide());
    const auto parsed = readHmm(writeHmm(prof));
    EXPECT_EQ(parsed.alphabet(), 4u);
    EXPECT_EQ(parsed.length(), 60u);
}

TEST(HmmIo, ParsedProfileScoresIdentically)
{
    // A search with a deserialized profile must give identical
    // kernel results.
    bio::SequenceGenerator gen(810);
    const auto q = gen.random("q", bio::MoleculeType::Protein, 90);
    const auto t = gen.random("t", bio::MoleculeType::Protein, 200);
    const auto prof =
        ProfileHmm::fromSequence(q, ScoreMatrix::blosum62());
    const auto parsed = readHmm(writeHmm(prof));
    EXPECT_EQ(calcBand9(prof, t).score, calcBand9(parsed, t).score);
    EXPECT_EQ(msvFilter(prof, t).score,
              msvFilter(parsed, t).score);
}

TEST(HmmIo, RejectsMalformedDocuments)
{
    bio::SequenceGenerator gen(811);
    const auto q = gen.random("q", bio::MoleculeType::Protein, 10);
    const auto prof =
        ProfileHmm::fromSequence(q, ScoreMatrix::blosum62());
    const std::string good = writeHmm(prof);

    EXPECT_THROW(readHmm(""), FatalError);
    EXPECT_THROW(readHmm("GARBAGE 1\n"), FatalError);
    EXPECT_THROW(readHmm("AFSBHMM 99\nLENG 1 ALPH amino\n"),
                 FatalError);
    // Truncated document (no terminator).
    EXPECT_THROW(
        readHmm(good.substr(0, good.size() - 4)), FatalError);
    // Corrupted score token.
    std::string bad = good;
    bad.replace(bad.find("M 0"), 3, "M x");
    EXPECT_THROW(readHmm(bad), FatalError);
}

TEST(HmmIo, FromEmissionsValidates)
{
    EXPECT_THROW(ProfileHmm::fromEmissions({}), FatalError);
    EXPECT_THROW(ProfileHmm::fromEmissions({{1, 2, 3}}),
                 FatalError);
    std::vector<std::vector<int16_t>> ragged = {
        std::vector<int16_t>(20, 1), std::vector<int16_t>(4, 1)};
    EXPECT_THROW(ProfileHmm::fromEmissions(std::move(ragged)),
                 FatalError);
}

} // namespace
} // namespace afsb::msa
