/**
 * @file
 * Traced-path determinism regression tests.
 *
 * The traced (sink-attached) kernels are the stability contract for
 * the cache simulator: their reference streams, instruction/branch
 * counts, and arithmetic results must stay byte-identical across
 * refactors, or every simulated per-platform number in the paper
 * regeneration drifts. These tests hash the full trace stream
 * (FNV-1a over every access, instruction batch, and branch batch)
 * and compare against goldens captured from the pre-optimization
 * scalar kernels — the native striped path must never leak into a
 * traced run.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "bio/seqgen.hh"
#include "msa/dbgen.hh"
#include "msa/dp_kernels.hh"
#include "msa/search.hh"
#include "util/units.hh"

namespace afsb::msa {
namespace {

/** FNV-1a over the entire sink event stream. */
class HashSink : public MemTraceSink
{
  public:
    uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
    uint64_t instr = 0, pred = 0, dataDep = 0;

    void mix(uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 1099511628211ull;
        }
    }

    void access(const MemAccess &a) override
    {
        mix(a.addr);
        mix((static_cast<uint64_t>(a.size) << 32) |
            (a.write ? 1 : 0));
        mix(a.func);
    }

    void instructions(FuncId func, uint64_t count) override
    {
        mix(0xAAA);
        mix(func);
        mix(count);
        instr += count;
    }

    void branches(FuncId func, uint64_t predictable,
                  uint64_t data_dependent) override
    {
        mix(0xBBB);
        mix(func);
        mix(predictable);
        mix(data_dependent);
        pred += predictable;
        dataDep += data_dependent;
    }
};

double
doubleFromBits(uint64_t bits)
{
    double d;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
}

/** The shared fixture input: seed-42 protein query/target pair with
 *  sampled tracing and a paper-scale stream base. */
struct TracedCase
{
    bio::SequenceGenerator gen{42};
    bio::Sequence q =
        gen.random("q", bio::MoleculeType::Protein, 160);
    bio::Sequence t =
        gen.random("t", bio::MoleculeType::Protein, 230);
    ProfileHmm prof =
        ProfileHmm::fromSequence(q, ScoreMatrix::blosum62());
    KernelConfig cfg;

    TracedCase()
    {
        cfg.traceStride = 4;
        cfg.targetBase = 0x6000'0000'0000ull;
        // FuncIds are interned lazily into a process-global registry,
        // so their numeric values depend on which kernels ran first in
        // this process. Each gtest case runs in its own process under
        // ctest; pin the intern order the goldens were captured with.
        wellknown::calcBand9();
        wellknown::calcBand10();
    }
};

TEST(TracedDeterminism, CalcBand9GoldenTrace)
{
    TracedCase c;
    HashSink sink;
    const auto r = calcBand9(c.prof, c.t, c.cfg, &sink);
    EXPECT_EQ(r.score, 26);
    EXPECT_EQ(r.cells, 31004u);
    EXPECT_EQ(sink.h, 0xcde317c186b6069dull);
    EXPECT_EQ(sink.instr, 37204u);
    EXPECT_EQ(sink.pred, 3875u);
    EXPECT_EQ(sink.dataDep, 3875u);
}

TEST(TracedDeterminism, CalcBand10GoldenTrace)
{
    TracedCase c;
    HashSink sink;
    const auto r = calcBand10(c.prof, c.t, c.cfg, &sink);
    EXPECT_EQ(r.cells, 31004u);
    EXPECT_EQ(sink.h, 0x2277b14b612a89f7ull);
    EXPECT_EQ(sink.instr, 49606u);
    EXPECT_DOUBLE_EQ(r.logOdds,
                     doubleFromBits(0x4021d4e488a1fef0ull));
}

TEST(TracedDeterminism, RepeatRunsAreByteIdentical)
{
    // Same inputs, two runs: the hashes must agree exactly — the
    // trace may not depend on allocator layout or ASLR.
    TracedCase c;
    HashSink a, b;
    (void)calcBand9(c.prof, c.t, c.cfg, &a);
    (void)calcBand9(c.prof, c.t, c.cfg, &b);
    EXPECT_EQ(a.h, b.h);
    HashSink fa, fb;
    (void)calcBand10(c.prof, c.t, c.cfg, &fa);
    (void)calcBand10(c.prof, c.t, c.cfg, &fb);
    EXPECT_EQ(fa.h, fb.h);
}

TEST(TracedDeterminism, MsvGoldenAgainstScalarResult)
{
    // MSV shares calcBand9's FuncId; pin its traced result and
    // stream against an in-run scalar reference rather than a fixed
    // constant (the score is input-derived either way).
    TracedCase c;
    HashSink a, b;
    const auto r1 = msvFilter(c.prof, c.t, c.cfg, &a);
    const auto r2 = msvFilter(c.prof, c.t, c.cfg, &b);
    EXPECT_EQ(a.h, b.h);
    EXPECT_EQ(r1.score, r2.score);
    KernelConfig scalar = c.cfg;
    scalar.forceScalar = true;
    EXPECT_EQ(r1.score, msvFilter(c.prof, c.t, scalar).score);
}

TEST(TracedDeterminism, TracedScanIgnoresOverlapKnobs)
{
    // A sink-attached database scan must take the scalar static
    // path regardless of the overlap configuration: the whole trace
    // stream (reader functions included) has to stay byte-identical
    // whether the staged pipeline is requested or not, with or
    // without priority hints. Golden pinned from the pre-overlap
    // scan path.
    wellknown::calcBand9();
    wellknown::calcBand10();

    bio::SequenceGenerator gen(42);
    const auto query =
        gen.random("q", bio::MoleculeType::Protein, 120);
    io::Vfs vfs;
    io::StorageDevice dev;
    io::PageCache cache(1 * GiB, &dev);
    DbGenConfig dcfg;
    dcfg.decoyCount = 40;
    dcfg.homologsPerQuery = 4;
    dcfg.fragmentsPerQuery = 2;
    const std::vector<const bio::Sequence *> queries = {&query};
    generateDatabase(vfs, "t.fasta", queries,
                     bio::MoleculeType::Protein, dcfg);
    const auto db = SequenceDatabase::load(
        vfs, cache, "t.fasta", bio::MoleculeType::Protein, 0.0);
    const auto prof =
        ProfileHmm::fromSequence(query, ScoreMatrix::blosum62());

    auto tracedHash = [&](bool overlap,
                          const std::vector<uint32_t> *prio) {
        SearchConfig cfg;
        cfg.threads = 1;
        cfg.overlap = overlap;
        cfg.priorityTargets = prio;
        cfg.kernel.traceStride = 4;
        HashSink sink;
        const std::vector<MemTraceSink *> sinks = {&sink};
        const auto r =
            searchDatabase(prof, db, cache, nullptr, cfg, 0.0, sinks);
        EXPECT_EQ(r.stats.stages.overlappedScans, 0u);
        return sink.h;
    };

    const uint64_t base = tracedHash(false, nullptr);
    EXPECT_EQ(base, tracedHash(true, nullptr));
    std::vector<uint32_t> prio = {5, 3, 1};
    EXPECT_EQ(base, tracedHash(true, &prio));
    EXPECT_EQ(base, 0xb68f18131503b870ull);
}

} // namespace
} // namespace afsb::msa
