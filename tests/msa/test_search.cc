/**
 * @file
 * Integration tests for database generation and the scan pipeline,
 * including the low-complexity (Observation 2) mechanism.
 */

#include <gtest/gtest.h>

#include "bio/seqgen.hh"
#include "msa/dbgen.hh"
#include "msa/search.hh"
#include "util/units.hh"
#include "util/logging.hh"

namespace afsb::msa {
namespace {

using bio::MoleculeType;
using bio::Sequence;

struct SearchFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        gen = std::make_unique<bio::SequenceGenerator>(101);
        query = gen->random("q", MoleculeType::Protein, 180);

        DbGenConfig cfg;
        cfg.decoyCount = 250;
        cfg.homologsPerQuery = 8;
        cfg.fragmentsPerQuery = 6;
        const std::vector<const Sequence *> queries = {&query};
        generateDatabase(vfs, "prot.fasta", queries,
                         MoleculeType::Protein, cfg);
        db = SequenceDatabase::load(vfs, cache(), "prot.fasta",
                                    MoleculeType::Protein, 0.0);
    }

    io::PageCache &
    cache()
    {
        if (!cache_)
            cache_ = std::make_unique<io::PageCache>(1 * GiB, &dev);
        return *cache_;
    }

    std::unique_ptr<bio::SequenceGenerator> gen;
    Sequence query;
    io::Vfs vfs;
    io::StorageDevice dev;
    std::unique_ptr<io::PageCache> cache_;
    SequenceDatabase db;
};

TEST_F(SearchFixture, DatabaseLoadParsesEverything)
{
    EXPECT_EQ(db.size(), 250u + 8u + 6u);
    EXPECT_GT(db.totalResidues(), 20000u);
    // Byte extents tile the file.
    uint64_t prev = 0;
    for (size_t i = 0; i < db.size(); ++i) {
        const auto e = db.byteExtent(i);
        EXPECT_EQ(e.offset, prev);
        EXPECT_GT(e.length, 0u);
        prev = e.offset + e.length;
    }
    EXPECT_EQ(prev, vfs.size(*vfs.open("prot.fasta")));
}

TEST_F(SearchFixture, FindsPlantedHomologs)
{
    const auto prof =
        ProfileHmm::fromSequence(query, ScoreMatrix::blosum62());
    SearchConfig cfg;
    const auto result =
        searchDatabase(prof, db, cache(), nullptr, cfg);
    // At least half of the 8 planted homologs are recovered.
    size_t homologHits = 0;
    for (const auto &hit : result.hits) {
        const auto &id = db.sequences()[hit.targetIndex].id();
        homologHits += id.rfind("hom_", 0) == 0;
    }
    EXPECT_GE(homologHits, 4u);
    EXPECT_EQ(result.stats.targetsScanned, db.size());
    EXPECT_GT(result.stats.cellsMsv, 0u);
    EXPECT_GT(result.stats.cellsViterbi, 0u);
}

TEST_F(SearchFixture, PrefilterKeepsViterbiWorkSmall)
{
    const auto prof =
        ProfileHmm::fromSequence(query, ScoreMatrix::blosum62());
    SearchConfig cfg;
    const auto result =
        searchDatabase(prof, db, cache(), nullptr, cfg);
    EXPECT_LT(result.stats.msvPassRate(), 0.35);
    EXPECT_LT(result.stats.cellsViterbi, result.stats.cellsMsv);
}

TEST_F(SearchFixture, MultithreadedScanMatchesSingleThreaded)
{
    const auto prof =
        ProfileHmm::fromSequence(query, ScoreMatrix::blosum62());
    SearchConfig cfg1;
    const auto r1 = searchDatabase(prof, db, cache(), nullptr, cfg1);

    ThreadPool pool(4);
    SearchConfig cfg4;
    cfg4.threads = 4;
    const auto r4 = searchDatabase(prof, db, cache(), &pool, cfg4);

    EXPECT_EQ(r1.stats.targetsScanned, r4.stats.targetsScanned);
    EXPECT_EQ(r1.stats.msvPassed, r4.stats.msvPassed);
    EXPECT_EQ(r1.stats.hits, r4.stats.hits);
    EXPECT_EQ(r1.stats.cellsMsv, r4.stats.cellsMsv);
    ASSERT_EQ(r1.hits.size(), r4.hits.size());
    for (size_t i = 0; i < r1.hits.size(); ++i)
        EXPECT_EQ(r1.hits[i].targetIndex, r4.hits[i].targetIndex);
}

TEST_F(SearchFixture, StreamsDatabaseBytesThroughCache)
{
    const auto prof =
        ProfileHmm::fromSequence(query, ScoreMatrix::blosum62());
    SearchConfig cfg;
    // The load in SetUp warmed the page cache: a scan sees DRAM
    // hits only (the paper's Server behaviour).
    const auto warm =
        searchDatabase(prof, db, cache(), nullptr, cfg);
    EXPECT_EQ(warm.stats.bytesStreamed,
              vfs.size(*vfs.open("prot.fasta")));
    EXPECT_EQ(warm.stats.bytesFromDisk, 0u);
    EXPECT_DOUBLE_EQ(warm.stats.ioLatency, 0.0);

    // After dropping the cache the scan must fault from storage
    // (the Desktop behaviour when DRAM cannot hold the database).
    cache().dropAll();
    const auto cold =
        searchDatabase(prof, db, cache(), nullptr, cfg);
    EXPECT_GT(cold.stats.bytesFromDisk, 0u);
    EXPECT_GT(cold.stats.ioLatency, 0.0);
}

TEST(SearchLowComplexity, PolyQInflatesPipelineWork)
{
    // Observation 2: a poly-Q query of the same length must push
    // far more targets past the prefilter into the banded kernels.
    bio::SequenceGenerator gen(202);
    const auto diverse = gen.random("d", MoleculeType::Protein, 200);
    const auto polyq = gen.withHomopolymer("p", 200, 64, 'Q');

    io::Vfs vfs;
    io::StorageDevice dev;
    io::PageCache cache(1 * GiB, &dev);

    DbGenConfig cfg;
    cfg.decoyCount = 400;
    cfg.homologsPerQuery = 4;
    cfg.fragmentsPerQuery = 4;
    cfg.lowComplexityFraction = 0.08;
    // One shared database built for both queries.
    const std::vector<const bio::Sequence *> queries = {&diverse,
                                                        &polyq};
    generateDatabase(vfs, "db.fasta", queries,
                     MoleculeType::Protein, cfg);
    const auto db = SequenceDatabase::load(
        vfs, cache, "db.fasta", MoleculeType::Protein, 0.0);

    SearchConfig scfg;
    const auto profD = ProfileHmm::fromSequence(
        diverse, ScoreMatrix::blosum62());
    const auto profQ =
        ProfileHmm::fromSequence(polyq, ScoreMatrix::blosum62());
    const auto rd = searchDatabase(profD, db, cache, nullptr, scfg);
    const auto rq = searchDatabase(profQ, db, cache, nullptr, scfg);

    EXPECT_GT(rq.stats.msvPassed, 2 * rd.stats.msvPassed);
    EXPECT_GT(rq.stats.cellsViterbi,
              3 * rd.stats.cellsViterbi / 2);
}

TEST(SearchThreshold, GrowsLogarithmicallyWithTarget)
{
    bio::SequenceGenerator gen(303);
    const auto q = gen.random("q", MoleculeType::Protein, 100);
    const auto prof =
        ProfileHmm::fromSequence(q, ScoreMatrix::blosum62());
    SearchConfig cfg;
    const int t100 = msvThreshold(prof, 100, cfg);
    const int t10k = msvThreshold(prof, 10000, cfg);
    EXPECT_GT(t10k, t100);
    EXPECT_LT(t10k, t100 + 20);
}

} // namespace
} // namespace afsb::msa
