/**
 * @file
 * Unit and property tests for the alignment DP kernels.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "bio/seqgen.hh"
#include "msa/dp_kernels.hh"

namespace afsb::msa {
namespace {

using bio::MoleculeType;
using bio::Sequence;

ProfileHmm
profFor(const Sequence &q)
{
    return ProfileHmm::fromSequence(q, ScoreMatrix::blosum62());
}

/** Sink that only counts references (forces the traced path). */
class CountingTraceSink : public MemTraceSink
{
  public:
    uint64_t accesses = 0;

    void access(const MemAccess &) override { ++accesses; }
    void instructions(FuncId, uint64_t) override {}
    void branches(FuncId, uint64_t, uint64_t) override {}
};

TEST(MsvFilter, SelfHitScoresSumOfDiagonal)
{
    bio::SequenceGenerator gen(1);
    const auto q = gen.random("q", MoleculeType::Protein, 64);
    const auto prof = profFor(q);
    const auto r = msvFilter(prof, q);
    int diag = 0;
    for (size_t i = 0; i < q.length(); ++i)
        diag += prof.matchScore(i, q[i]);
    EXPECT_EQ(r.score, diag);
    EXPECT_EQ(r.cells, 64u * 64u);
}

TEST(MsvFilter, RandomTargetScoresLow)
{
    bio::SequenceGenerator gen(2);
    const auto q = gen.random("q", MoleculeType::Protein, 120);
    const auto t = gen.random("t", MoleculeType::Protein, 120);
    const auto prof = profFor(q);
    const int self = msvFilter(prof, q).score;
    const int random = msvFilter(prof, t).score;
    EXPECT_LT(random, self / 4);
}

TEST(MsvFilter, DetectsEmbeddedFragment)
{
    bio::SequenceGenerator gen(3);
    const auto q = gen.random("q", MoleculeType::Protein, 150);
    const auto frag = gen.embedFragment(q, "f", 60, 200);
    const auto prof = profFor(q);
    const int fragScore = msvFilter(prof, frag).score;
    const auto decoy = gen.random("d", MoleculeType::Protein, 200);
    const int decoyScore = msvFilter(prof, decoy).score;
    EXPECT_GT(fragScore, 2 * decoyScore);
}

TEST(CalcBand9, SelfAlignmentScoresAtLeastDiagonal)
{
    bio::SequenceGenerator gen(4);
    const auto q = gen.random("q", MoleculeType::Protein, 100);
    const auto prof = profFor(q);
    const auto r = calcBand9(prof, q);
    int diag = 0;
    for (size_t i = 0; i < q.length(); ++i)
        diag += prof.matchScore(i, q[i]);
    EXPECT_GE(r.score, diag);
    EXPECT_EQ(r.endTarget, q.length() - 1);
    EXPECT_EQ(r.endProfile, q.length() - 1);
}

TEST(CalcBand9, ToleratesIndelsWhereMsvCannot)
{
    // An indel breaks the ungapped diagonal but gapped Viterbi
    // recovers most of the score.
    bio::SequenceGenerator gen(5);
    const auto q = gen.random("q", MoleculeType::Protein, 120);
    bio::MutationParams params;
    params.substitutionRate = 0.0;
    params.insertionRate = 0.03;
    params.deletionRate = 0.03;
    const auto mut = gen.mutate(q, "m", params);
    const auto prof = profFor(q);
    const int msv = msvFilter(prof, mut).score;
    const int vit = calcBand9(prof, mut).score;
    EXPECT_GT(vit, msv);
}

TEST(CalcBand9, BandLimitsCells)
{
    bio::SequenceGenerator gen(6);
    const auto q = gen.random("q", MoleculeType::Protein, 200);
    const auto t = gen.random("t", MoleculeType::Protein, 200);
    const auto prof = profFor(q);
    KernelConfig narrow;
    narrow.band = 8;
    KernelConfig wide;
    wide.band = 100;
    const auto rNarrow = calcBand9(prof, t, narrow);
    const auto rWide = calcBand9(prof, t, wide);
    EXPECT_LT(rNarrow.cells, rWide.cells);
    EXPECT_LE(rNarrow.cells, 200u * 17u + 200u);
}

TEST(CalcBand10, HomologScoresAboveDecoy)
{
    bio::SequenceGenerator gen(7);
    const auto q = gen.random("q", MoleculeType::Protein, 100);
    bio::MutationParams params;
    params.substitutionRate = 0.10;
    const auto hom = gen.mutate(q, "h", params);
    const auto decoy = gen.random("d", MoleculeType::Protein, 100);
    const auto prof = profFor(q);
    const double fh = calcBand10(prof, hom).logOdds;
    const double fd = calcBand10(prof, decoy).logOdds;
    EXPECT_GT(fh, fd + 20.0);
}

TEST(CalcBand10, LongSelfAlignmentStaysFinite)
{
    // Rescaling must prevent overflow on long high-scoring targets.
    bio::SequenceGenerator gen(8);
    const auto q = gen.random("q", MoleculeType::Protein, 800);
    const auto prof = profFor(q);
    const auto r = calcBand10(prof, q);
    EXPECT_TRUE(std::isfinite(r.logOdds));
    EXPECT_GT(r.logOdds, 100.0);
}

TEST(AlignToProfile, IdentityMapsDiagonal)
{
    bio::SequenceGenerator gen(9);
    const auto q = gen.random("q", MoleculeType::Protein, 80);
    const auto prof = profFor(q);
    const auto aln = alignToProfile(prof, q);
    ASSERT_EQ(aln.profileToTarget.size(), q.length());
    for (size_t k = 0; k < q.length(); ++k)
        EXPECT_EQ(aln.profileToTarget[k], static_cast<int32_t>(k));
}

TEST(AlignToProfile, DeletionLeavesGap)
{
    // Target missing residues 30..39 of the query: those profile
    // positions stay unmapped.
    bio::SequenceGenerator gen(10);
    const auto q = gen.random("q", MoleculeType::Protein, 80);
    std::vector<uint8_t> codes;
    for (size_t i = 0; i < q.length(); ++i)
        if (i < 30 || i >= 40)
            codes.push_back(q[i]);
    const Sequence t("t", MoleculeType::Protein, std::move(codes));
    const auto prof = profFor(q);
    const auto aln = alignToProfile(prof, t);
    size_t gaps3039 = 0;
    for (size_t k = 30; k < 40; ++k)
        gaps3039 += aln.profileToTarget[k] < 0;
    EXPECT_GE(gaps3039, 8u);
    // Mapped indices are strictly increasing.
    int32_t prev = -1;
    for (int32_t v : aln.profileToTarget) {
        if (v < 0)
            continue;
        EXPECT_GT(v, prev);
        prev = v;
    }
}

TEST(AlignToProfile, NoHitOnEmptyTarget)
{
    bio::SequenceGenerator gen(11);
    const auto q = gen.random("q", MoleculeType::Protein, 50);
    const Sequence t("t", MoleculeType::Protein, "");
    const auto aln = alignToProfile(profFor(q), t);
    EXPECT_EQ(aln.score, 0);
    for (int32_t v : aln.profileToTarget)
        EXPECT_EQ(v, -1);
}

/** Property sweep: Viterbi dominates MSV on mutated homologs. */
class KernelDominance
    : public ::testing::TestWithParam<double>
{};

TEST_P(KernelDominance, ViterbiAtLeastUngapped)
{
    bio::SequenceGenerator gen(
        static_cast<uint64_t>(GetParam() * 1000) + 17);
    const auto q = gen.random("q", MoleculeType::Protein, 150);
    bio::MutationParams params;
    params.substitutionRate = GetParam();
    params.insertionRate = 0.02;
    params.deletionRate = 0.02;
    const auto t = gen.mutate(q, "t", params);
    const auto prof = profFor(q);
    KernelConfig cfg;
    cfg.band = 64;
    EXPECT_GE(calcBand9(prof, t, cfg).score,
              msvFilter(prof, t, cfg).score);
}

INSTANTIATE_TEST_SUITE_P(MutationSweep, KernelDominance,
                         ::testing::Values(0.0, 0.05, 0.1, 0.2, 0.3,
                                           0.4));

// --- native / scalar path equivalence -----------------------------------
//
// The untraced kernels are a separate striped implementation; these
// sweeps pin them to the scalar reference (KernelConfig::forceScalar)
// over odd lengths, non-lane-multiple lengths, band widths from
// degenerate to unbanded, and both alphabets.

constexpr size_t kProfileLens[] = {1, 7, 15, 16, 17, 33, 128, 250};
constexpr size_t kTargetLens[] = {1, 5, 31, 400};
constexpr size_t kBands[] = {1, 3, 16, 96, 10000};

TEST(KernelEquivalence, MsvBitIdenticalToScalar)
{
    bio::SequenceGenerator gen(100);
    for (size_t m : kProfileLens) {
        const auto q = gen.random("q", MoleculeType::Protein, m);
        const auto prof = profFor(q);
        for (size_t l : kTargetLens) {
            const auto t =
                gen.random("t", MoleculeType::Protein, l);
            KernelConfig scalar;
            scalar.forceScalar = true;
            const auto fast = msvFilter(prof, t);
            const auto ref = msvFilter(prof, t, scalar);
            EXPECT_EQ(fast.score, ref.score)
                << "M=" << m << " L=" << l;
            EXPECT_EQ(fast.cells, ref.cells);
        }
    }
}

TEST(KernelEquivalence, Band9BitIdenticalToScalar)
{
    bio::SequenceGenerator gen(101);
    for (size_t m : kProfileLens) {
        const auto q = gen.random("q", MoleculeType::Protein, m);
        const auto prof = profFor(q);
        for (size_t l : kTargetLens) {
            const auto t =
                gen.random("t", MoleculeType::Protein, l);
            for (size_t band : kBands) {
                KernelConfig cfg;
                cfg.band = band;
                KernelConfig scalar = cfg;
                scalar.forceScalar = true;
                const auto fast = calcBand9(prof, t, cfg);
                const auto ref = calcBand9(prof, t, scalar);
                EXPECT_EQ(fast.score, ref.score)
                    << "M=" << m << " L=" << l << " band=" << band;
                EXPECT_EQ(fast.endTarget, ref.endTarget);
                EXPECT_EQ(fast.endProfile, ref.endProfile);
                EXPECT_EQ(fast.cells, ref.cells);
            }
        }
    }
}

TEST(KernelEquivalence, Band9HomologEndpointsMatch)
{
    // High-scoring targets exercise the best-cell tracking; a random
    // decoy mostly keeps score 0.
    bio::SequenceGenerator gen(102);
    const auto q = gen.random("q", MoleculeType::Protein, 150);
    const auto prof = profFor(q);
    bio::MutationParams params;
    params.substitutionRate = 0.1;
    params.insertionRate = 0.02;
    params.deletionRate = 0.02;
    const auto hom = gen.mutate(q, "h", params);
    const auto frag = gen.embedFragment(q, "f", 60, 200);
    for (const auto *t : {&hom, &frag}) {
        for (size_t band : kBands) {
            KernelConfig cfg;
            cfg.band = band;
            KernelConfig scalar = cfg;
            scalar.forceScalar = true;
            const auto fast = calcBand9(prof, *t, cfg);
            const auto ref = calcBand9(prof, *t, scalar);
            EXPECT_EQ(fast.score, ref.score) << "band=" << band;
            EXPECT_EQ(fast.endTarget, ref.endTarget);
            EXPECT_EQ(fast.endProfile, ref.endProfile);
        }
    }
}

TEST(KernelEquivalence, Band10MatchesScalarWithinTolerance)
{
    bio::SequenceGenerator gen(103);
    for (size_t m : kProfileLens) {
        const auto q = gen.random("q", MoleculeType::Protein, m);
        const auto prof = profFor(q);
        for (size_t l : kTargetLens) {
            const auto t =
                gen.random("t", MoleculeType::Protein, l);
            for (size_t band : kBands) {
                KernelConfig cfg;
                cfg.band = band;
                KernelConfig scalar = cfg;
                scalar.forceScalar = true;
                const auto fast = calcBand10(prof, t, cfg);
                const auto ref = calcBand10(prof, t, scalar);
                EXPECT_EQ(fast.cells, ref.cells);
                const double tol =
                    1e-4 * std::max(1.0, std::abs(ref.logOdds));
                EXPECT_NEAR(fast.logOdds, ref.logOdds, tol)
                    << "M=" << m << " L=" << l << " band=" << band;
            }
        }
    }
}

TEST(KernelEquivalence, Band10RescalingPathMatches)
{
    // A long self-alignment drives the per-row rescaling branch.
    bio::SequenceGenerator gen(104);
    const auto q = gen.random("q", MoleculeType::Protein, 800);
    const auto prof = profFor(q);
    KernelConfig scalar;
    scalar.forceScalar = true;
    const auto fast = calcBand10(prof, q);
    const auto ref = calcBand10(prof, q, scalar);
    EXPECT_TRUE(std::isfinite(fast.logOdds));
    EXPECT_NEAR(fast.logOdds, ref.logOdds,
                1e-4 * std::abs(ref.logOdds));
}

TEST(KernelEquivalence, NucleotideAlphabetMatches)
{
    bio::SequenceGenerator gen(105);
    const auto q = gen.random("q", MoleculeType::Rna, 90);
    const auto prof =
        ProfileHmm::fromSequence(q, ScoreMatrix::nucleotide());
    bio::MutationParams params;
    params.substitutionRate = 0.15;
    const auto t = gen.mutate(q, "t", params);
    KernelConfig scalar;
    scalar.forceScalar = true;
    EXPECT_EQ(msvFilter(prof, t).score,
              msvFilter(prof, t, scalar).score);
    const auto fastV = calcBand9(prof, t);
    const auto refV = calcBand9(prof, t, scalar);
    EXPECT_EQ(fastV.score, refV.score);
    EXPECT_EQ(fastV.endTarget, refV.endTarget);
    EXPECT_EQ(fastV.endProfile, refV.endProfile);
    const auto fastF = calcBand10(prof, t);
    const auto refF = calcBand10(prof, t, scalar);
    EXPECT_NEAR(fastF.logOdds, refF.logOdds,
                1e-4 * std::max(1.0, std::abs(refF.logOdds)));
}

TEST(KernelEquivalence, TracedPathMatchesForceScalar)
{
    // A sink must select the scalar loops: results with a sink
    // attached equal forceScalar exactly, including trace-free runs.
    bio::SequenceGenerator gen(106);
    const auto q = gen.random("q", MoleculeType::Protein, 120);
    const auto t = gen.random("t", MoleculeType::Protein, 200);
    const auto prof = profFor(q);
    CountingTraceSink sink;
    KernelConfig cfg;
    KernelConfig scalar;
    scalar.forceScalar = true;
    EXPECT_EQ(calcBand9(prof, t, cfg, &sink).score,
              calcBand9(prof, t, scalar).score);
    EXPECT_EQ(calcBand10(prof, t, cfg, &sink).logOdds,
              calcBand10(prof, t, scalar).logOdds);
    EXPECT_GT(sink.accesses, 0u);
}

} // namespace
} // namespace afsb::msa
