/**
 * @file
 * Property-style sweeps over the architecture simulators: LRU
 * inclusion/stack behaviour, prefetcher stream coverage, and
 * monotonicity invariants of the timing model.
 */

#include <gtest/gtest.h>

#include "cachesim/timing.hh"
#include "util/rng.hh"
#include "util/units.hh"

namespace afsb::cachesim {
namespace {

sys::CacheGeometry
geom(uint64_t size, uint32_t assoc)
{
    sys::CacheGeometry g;
    g.size = size;
    g.associativity = assoc;
    g.lineSize = 64;
    return g;
}

// --- LRU stack property --------------------------------------------------

/**
 * The LRU stack property: for the same trace, a larger cache of the
 * same associativity-per-set structure never takes more misses.
 * (Holds for power-of-two LRU caches when sets scale; verified here
 * empirically across random traces.)
 */
class LruStackProperty : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(LruStackProperty, BiggerCacheNeverMissesMore)
{
    const uint64_t seed = GetParam();
    Rng rng(seed);
    std::vector<uint64_t> trace(20000);
    for (auto &a : trace)
        a = (rng.nextBounded(512 * KiB)) & ~63ull;

    uint64_t prevMisses = ~0ull;
    for (uint64_t size : {16 * KiB, 32 * KiB, 64 * KiB, 128 * KiB,
                          256 * KiB, 1 * MiB}) {
        Cache c(geom(size, 8), false);
        for (uint64_t a : trace)
            c.access(a, false);
        EXPECT_LE(c.stats().misses, prevMisses)
            << "size " << size;
        prevMisses = c.stats().misses;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LruStackProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

// --- Prefetcher properties ----------------------------------------------

TEST(PrefetcherProperty, StridedStreamsAreCovered)
{
    // Any constant stride up to 16 lines should be prefetched to a
    // substantially lower miss rate than no-prefetch.
    for (uint64_t strideLines : {1u, 2u, 4u, 8u, 16u}) {
        Cache pf(geom(32 * KiB, 8), true);
        Cache nopf(geom(32 * KiB, 8), false);
        for (uint64_t i = 0; i < 20000; ++i) {
            const uint64_t a = i * strideLines * 64;
            pf.access(a, false);
            nopf.access(a, false);
        }
        EXPECT_LT(pf.stats().missRate(),
                  0.8 * nopf.stats().missRate())
            << "stride " << strideLines;
    }
}

TEST(PrefetcherProperty, InterleavedStreamsStillCovered)
{
    // Two interleaved streams: the multi-stream trackers must keep
    // both armed.
    Cache pf(geom(64 * KiB, 8), true);
    for (uint64_t i = 0; i < 10000; ++i) {
        pf.access(0x100000 + i * 64, false);
        pf.access(0x900000 + i * 128, false);
    }
    EXPECT_LT(pf.stats().missRate(), 0.6);
    EXPECT_GT(pf.stats().prefetchHits, 5000u);
}

TEST(PrefetcherProperty, RandomAccessGainsNothing)
{
    // Prefetching must not fabricate hits on random traffic.
    Rng rng(77);
    Cache pf(geom(32 * KiB, 8), true);
    Cache nopf(geom(32 * KiB, 8), false);
    for (int i = 0; i < 50000; ++i) {
        const uint64_t a = rng.nextBounded(64 * MiB) & ~63ull;
        pf.access(a, false);
        nopf.access(a, false);
    }
    EXPECT_NEAR(pf.stats().missRate(), nopf.stats().missRate(),
                0.05);
}

// --- Timing-model invariants ----------------------------------------------

FuncCounters
baseCounters()
{
    FuncCounters c;
    c.instructions = 2'000'000'000;
    c.accesses = 600'000'000;
    c.l1Misses = 20'000'000;
    c.l2Misses = 5'000'000;
    c.llcMisses = 2'000'000;
    c.branches = 250'000'000;
    c.branchMisses = 1'000'000;
    return c;
}

TEST(TimingProperty, TimeIsMonotoneInWork)
{
    TimingInputs in;
    in.counters = baseCounters();
    double prev = 0.0;
    for (double scale : {0.5, 1.0, 2.0, 5.0, 17.0, 100.0}) {
        in.workScale = scale;
        const double t =
            computeTiming(sys::serverPlatform(), in).seconds;
        EXPECT_GT(t, prev);
        prev = t;
    }
}

TEST(TimingProperty, MoreMissesNeverFaster)
{
    TimingInputs in;
    in.counters = baseCounters();
    double prev = 0.0;
    for (uint64_t extraMisses = 0; extraMisses <= 100'000'000;
         extraMisses += 20'000'000) {
        TimingInputs cur = in;
        cur.counters.l1Misses += extraMisses;
        cur.counters.l2Misses += extraMisses;
        cur.counters.llcMisses += extraMisses;
        const double t =
            computeTiming(sys::desktopPlatform(), cur).seconds;
        EXPECT_GE(t, prev);
        prev = t;
    }
}

TEST(TimingProperty, ReaderBoundsParallelSpeedup)
{
    // With reader work equal to 25% of worker work, speedup can
    // never exceed 4x regardless of threads.
    TimingInputs in;
    in.counters = baseCounters();
    in.readerCounters.instructions =
        in.counters.instructions / 4;
    in.threads = 1;
    const double t1 =
        computeTiming(sys::serverPlatform(), in).seconds;
    in.threads = 16;
    const double t16 =
        computeTiming(sys::serverPlatform(), in).seconds;
    EXPECT_LT(t1 / t16, 5.2);  // 1.25/0.25 = 5 plus clock effects
    EXPECT_GT(t1 / t16, 3.0);
}

TEST(TimingProperty, EffectiveIpcNeverExceedsBase)
{
    Rng rng(5);
    for (int trial = 0; trial < 20; ++trial) {
        TimingInputs in;
        in.counters.instructions =
            1'000'000 + rng.nextBounded(1'000'000'000);
        in.counters.l1Misses = rng.nextBounded(
            in.counters.instructions / 10);
        in.counters.l2Misses =
            rng.nextBounded(in.counters.l1Misses + 1);
        in.counters.llcMisses =
            rng.nextBounded(in.counters.l2Misses + 1);
        in.threads = 1 + static_cast<uint32_t>(
            rng.nextBounded(8));
        for (const auto &p :
             {sys::serverPlatform(), sys::desktopPlatform()}) {
            const auto r = computeTiming(p, in);
            EXPECT_LE(r.effectiveIpc, p.cpu.baseIpc + 1e-9);
            EXPECT_GE(r.effectiveIpc, 0.0);
            EXPECT_GE(r.stallFraction, 0.0);
            EXPECT_LE(r.stallFraction, 1.0);
        }
    }
}

} // namespace
} // namespace afsb::cachesim
