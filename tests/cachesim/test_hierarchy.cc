/**
 * @file
 * Tests for the hierarchy simulator and its Table III-shaped
 * behaviour when fed real MSA kernel traces.
 */

#include <gtest/gtest.h>

#include "bio/seqgen.hh"
#include "cachesim/hierarchy.hh"
#include "msa/dp_kernels.hh"
#include "util/units.hh"

namespace afsb::cachesim {
namespace {

HierarchyConfig
configFor(const sys::PlatformSpec &p, uint32_t threads)
{
    HierarchyConfig cfg;
    cfg.cpu = p.cpu;
    cfg.activeThreads = threads;
    return cfg;
}

TEST(HierarchySim, CountsFlowThroughLevels)
{
    auto cfg = configFor(sys::desktopPlatform(), 1);
    HierarchySim sim(cfg);
    // Stream 8 MiB: misses at every level (64 MiB LLC slice holds
    // it, so a second pass hits LLC).
    for (uint64_t a = 0; a < 8 * MiB; a += 64)
        sim.access({a, 64, false, 0});
    const auto t1 = sim.totals();
    EXPECT_EQ(t1.accesses, 8 * MiB / 64);
    EXPECT_GT(t1.l1Misses, 0u);
    EXPECT_GT(t1.llcMisses, 0u);
    for (uint64_t a = 0; a < 8 * MiB; a += 64)
        sim.access({a, 64, false, 0});
    const auto t2 = sim.totals();
    // Second pass misses L1/L2 but hits the LLC slice.
    EXPECT_LT(t2.llcMisses, 2 * t1.llcMisses);
}

TEST(HierarchySim, PerFunctionAttribution)
{
    auto cfg = configFor(sys::desktopPlatform(), 1);
    HierarchySim sim(cfg);
    sim.access({0x1000, 64, false, 3});
    sim.access({0x2000000, 64, false, 5});
    sim.instructions(3, 1000);
    sim.branches(5, 100, 100);
    const auto per = sim.perFunction();
    ASSERT_GE(per.size(), 6u);
    EXPECT_EQ(per[3].accesses, 1u);
    EXPECT_EQ(per[3].instructions, 1000u);
    EXPECT_EQ(per[5].accesses, 1u);
    EXPECT_EQ(per[5].branches, 200u);
    EXPECT_GT(per[5].branchMisses, 0u);
}

TEST(HierarchySim, SampleWeightScalesMemoryCounters)
{
    auto cfg = configFor(sys::desktopPlatform(), 1);
    cfg.sampleWeight = 8;
    HierarchySim sim(cfg);
    for (uint64_t a = 0; a < 64 * KiB; a += 64)
        sim.access({a, 64, false, 0});
    sim.instructions(0, 500);
    const auto t = sim.totals();
    EXPECT_EQ(t.accesses, 8 * 64 * KiB / 64);
    EXPECT_EQ(t.instructions, 500u);  // not scaled
}

TEST(HierarchySim, LlcSliceShrinksWithThreads)
{
    // A 16 MiB randomly-accessed working set fits Desktop's full
    // 64 MiB LLC but not a 6-thread slice (~10.6 MiB): miss rates
    // must rise. (Random access so the stream prefetcher cannot
    // hide capacity misses.)
    const auto run = [&](uint32_t threads) {
        auto cfg = configFor(sys::desktopPlatform(), threads);
        HierarchySim sim(cfg);
        Rng rng(9);
        for (int i = 0; i < 800000; ++i) {
            const uint64_t a = (rng.nextBounded(16 * MiB)) & ~63ull;
            sim.access({a, 64, false, 0});
        }
        return sim.totals();
    };
    const auto t1 = run(1);
    const auto t6 = run(6);
    EXPECT_LT(t1.llcMissRate(), 0.45);
    EXPECT_GT(t6.llcMissRate(), 1.5 * t1.llcMissRate());
}

TEST(HierarchySim, IntelLlcSaturatedEvenAtOneThread)
{
    // Server's 30 MiB LLC cannot hold a 48 MiB working set even
    // single-threaded — the paper's "Intel's smaller LLC is quickly
    // overwhelmed".
    auto cfg = configFor(sys::serverPlatform(), 1);
    cfg.prefetch = false;
    HierarchySim sim(cfg);
    for (int pass = 0; pass < 3; ++pass)
        for (uint64_t a = 0; a < 48 * MiB; a += 64)
            sim.access({a, 64, false, 0});
    EXPECT_GT(sim.totals().llcMissRate(), 0.9);
}

TEST(HierarchySim, TlbContrastIntelVsAmd)
{
    // Random touches over an 8 MiB region (2048 pages): within
    // Intel's ~8K-entry dTLB reach, far beyond AMD's ~96 entries.
    bio::SequenceGenerator gen(5);
    auto touch = [&](HierarchySim &sim) {
        Rng rng(42);
        for (int i = 0; i < 200000; ++i) {
            const uint64_t a = rng.nextBounded(8 * MiB);
            sim.access({a, 8, false, 0});
        }
    };
    HierarchySim intel(configFor(sys::serverPlatform(), 1));
    HierarchySim amd(configFor(sys::desktopPlatform(), 1));
    touch(intel);
    touch(amd);
    EXPECT_LT(intel.totals().tlbMissRate(), 0.02);
    EXPECT_GT(amd.totals().tlbMissRate(), 0.15);
}

TEST(HierarchySim, RealKernelTraceProducesPlausibleCounters)
{
    // Drive the simulator with an actual calc_band_9 trace.
    bio::SequenceGenerator gen(7);
    const auto q = gen.random("q", bio::MoleculeType::Protein, 200);
    const auto t = gen.random("t", bio::MoleculeType::Protein, 400);
    const auto prof = msa::ProfileHmm::fromSequence(
        q, msa::ScoreMatrix::blosum62());

    HierarchySim sim(configFor(sys::desktopPlatform(), 1));
    msa::KernelConfig kcfg;
    kcfg.targetBase = 0x6000'0000'0000ull;
    const auto r = msa::calcBand9(prof, t, kcfg, &sim);
    const auto totals = sim.totals();
    // Four references per 16-cell SIMD block (plus rare arena).
    EXPECT_NEAR(static_cast<double>(totals.accesses),
                4.0 * static_cast<double>(r.cells) / 16.0,
                0.2 * static_cast<double>(r.cells));
    EXPECT_GT(totals.instructions, totals.accesses);
    EXPECT_GT(totals.branches, r.cells / 16);
    // DP arrays, profile, and the per-row stream reference are
    // L1-resident; the page-diverse metadata references (about one
    // in eight) miss it.
    EXPECT_GT(totals.l1MissRate(), 0.03);
    EXPECT_LT(totals.l1MissRate(), 0.3);
}

} // namespace
} // namespace afsb::cachesim
