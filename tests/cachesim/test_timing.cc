/**
 * @file
 * Tests for the analytic timing model.
 */

#include <gtest/gtest.h>

#include "cachesim/timing.hh"

namespace afsb::cachesim {
namespace {

FuncCounters
computeBoundCounters()
{
    FuncCounters c;
    c.instructions = 1'000'000'000;
    c.accesses = 300'000'000;
    c.l1Misses = 3'000'000;
    c.l2Misses = 600'000;
    c.llcMisses = 100'000;
    c.branches = 150'000'000;
    c.branchMisses = 300'000;
    return c;
}

FuncCounters
memoryBoundCounters()
{
    FuncCounters c = computeBoundCounters();
    c.l1Misses = 60'000'000;
    c.l2Misses = 40'000'000;
    c.llcMisses = 30'000'000;
    return c;
}

TEST(Timing, ComputeBoundApproachesBaseIpc)
{
    TimingInputs in;
    in.counters = computeBoundCounters();
    const auto r = computeTiming(sys::serverPlatform(), in);
    EXPECT_GT(r.effectiveIpc,
              0.8 * sys::serverPlatform().cpu.baseIpc);
    EXPECT_LT(r.stallFraction, 0.2);
    EXPECT_GT(r.seconds, 0.0);
}

TEST(Timing, MemoryBoundDropsIpc)
{
    TimingInputs in;
    in.counters = memoryBoundCounters();
    const auto rMem = computeTiming(sys::serverPlatform(), in);
    TimingInputs inC;
    inC.counters = computeBoundCounters();
    const auto rCpu = computeTiming(sys::serverPlatform(), inC);
    EXPECT_LT(rMem.effectiveIpc, 0.6 * rCpu.effectiveIpc);
    EXPECT_GT(rMem.stallFraction, 0.4);
}

TEST(Timing, ThreadsSpeedUpComputeBoundWork)
{
    TimingInputs in;
    in.counters = computeBoundCounters();
    in.threads = 1;
    const auto r1 = computeTiming(sys::desktopPlatform(), in);
    in.threads = 2;
    const auto r2 = computeTiming(sys::desktopPlatform(), in);
    in.threads = 4;
    const auto r4 = computeTiming(sys::desktopPlatform(), in);
    const double s2 = r1.seconds / r2.seconds;
    const double s4 = r1.seconds / r4.seconds;
    EXPECT_GT(s2, 1.7);
    EXPECT_LT(s2, 2.05);
    EXPECT_GT(s4, 2.8);
    EXPECT_LT(s4, 4.05);
}

TEST(Timing, BandwidthSaturationLimitsScaling)
{
    // Heavy miss traffic: speedup should flatten well below linear
    // as DRAM bandwidth saturates.
    TimingInputs in;
    in.counters = memoryBoundCounters();
    in.counters.llcMisses = 200'000'000;
    in.counters.l2Misses = 220'000'000;
    in.counters.l1Misses = 240'000'000;
    in.threads = 1;
    const auto r1 = computeTiming(sys::desktopPlatform(), in);
    in.threads = 8;
    const auto r8 = computeTiming(sys::desktopPlatform(), in);
    EXPECT_LT(r1.seconds / r8.seconds, 6.0);
    EXPECT_GT(r8.memUtilization, 0.3);
    EXPECT_GT(r8.memUtilization, 2.0 * r1.memUtilization);
}

TEST(Timing, SerialFractionAddsConstant)
{
    TimingInputs in;
    in.counters = computeBoundCounters();
    in.serialSeconds = 5.0;
    const auto r = computeTiming(sys::serverPlatform(), in);
    TimingInputs in0 = in;
    in0.serialSeconds = 0.0;
    const auto r0 = computeTiming(sys::serverPlatform(), in0);
    EXPECT_NEAR(r.seconds - r0.seconds, 5.0, 1e-9);
}

TEST(Timing, IoOverlapsWithCompute)
{
    TimingInputs in;
    in.counters = computeBoundCounters();
    in.ioSeconds = 0.001;  // far below compute: hidden
    const auto hidden = computeTiming(sys::desktopPlatform(), in);
    in.ioSeconds = 1e4;    // dominates: phase becomes I/O-bound
    const auto bound = computeTiming(sys::desktopPlatform(), in);
    TimingInputs in0 = in;
    in0.ioSeconds = 0.0;
    const auto base = computeTiming(sys::desktopPlatform(), in0);
    EXPECT_NEAR(hidden.seconds, base.seconds, 1e-6);
    EXPECT_NEAR(bound.seconds, 1e4, 1.0);
}

TEST(Timing, WorkScaleMultipliesTime)
{
    TimingInputs in;
    in.counters = computeBoundCounters();
    const auto r1 = computeTiming(sys::serverPlatform(), in);
    in.workScale = 100.0;
    const auto r100 = computeTiming(sys::serverPlatform(), in);
    EXPECT_NEAR(r100.seconds / r1.seconds, 100.0, 1.0);
}

TEST(Timing, CxlLatencyFactorSlowsMemoryBoundWork)
{
    TimingInputs in;
    in.counters = memoryBoundCounters();
    const auto dram = computeTiming(sys::serverPlatform(), in);
    in.memLatencyFactor = 2.5;
    const auto cxl = computeTiming(sys::serverPlatform(), in);
    EXPECT_GT(cxl.seconds, 1.5 * dram.seconds);
}

TEST(Timing, DesktopBeatsServerOnComputeBoundWork)
{
    // Higher clocks win when stalls are rare — the paper's core
    // Desktop-vs-Server finding for the MSA phase.
    TimingInputs in;
    in.counters = computeBoundCounters();
    in.threads = 4;
    const auto server = computeTiming(sys::serverPlatform(), in);
    const auto desktop = computeTiming(sys::desktopPlatform(), in);
    EXPECT_LT(desktop.seconds, server.seconds);
}

} // namespace
} // namespace afsb::cachesim
