/**
 * @file
 * Unit tests for the cache and TLB structures.
 */

#include <gtest/gtest.h>

#include "cachesim/cache.hh"
#include "util/units.hh"

namespace afsb::cachesim {
namespace {

sys::CacheGeometry
geom(uint64_t size, uint32_t assoc)
{
    sys::CacheGeometry g;
    g.size = size;
    g.associativity = assoc;
    g.lineSize = 64;
    return g;
}

TEST(Cache, ColdMissThenHit)
{
    Cache c(geom(4 * KiB, 4));
    EXPECT_FALSE(c.access(0x1000, false));
    EXPECT_TRUE(c.access(0x1000, false));
    EXPECT_TRUE(c.access(0x1020, false));  // same 64B line
    EXPECT_FALSE(c.access(0x1040, false)); // next line
    EXPECT_EQ(c.stats().accesses, 4u);
    EXPECT_EQ(c.stats().misses, 2u);
}

TEST(Cache, LruEvictionWithinSet)
{
    // 2-way, 2 sets of 64B lines: lines mapping to set 0 are
    // addresses 0, 128, 256, ...
    Cache c(geom(256, 2));
    ASSERT_EQ(c.sets(), 2u);
    c.access(0, false);      // miss, set0
    c.access(128, false);    // miss, set0 (second way)
    c.access(0, false);      // hit, 0 becomes MRU
    c.access(256, false);    // miss, evicts 128
    EXPECT_TRUE(c.access(0, false));
    EXPECT_FALSE(c.access(128, false));
}

TEST(Cache, WorkingSetLargerThanCacheThrashes)
{
    Cache c(geom(32 * KiB, 8));
    // Stream 1 MiB repeatedly: everything misses after warmup
    // without prefetch.
    for (int pass = 0; pass < 2; ++pass)
        for (uint64_t a = 0; a < 1 * MiB; a += 64)
            c.access(a, false);
    EXPECT_GT(c.stats().missRate(), 0.95);
}

TEST(Cache, WorkingSetSmallerThanCacheHitsAfterWarmup)
{
    Cache c(geom(64 * KiB, 8));
    for (int pass = 0; pass < 10; ++pass)
        for (uint64_t a = 0; a < 16 * KiB; a += 64)
            c.access(a, false);
    EXPECT_LT(c.stats().missRate(), 0.11);
}

TEST(Cache, PrefetcherCutsStreamingMisses)
{
    Cache noPf(geom(32 * KiB, 8), false);
    Cache pf(geom(32 * KiB, 8), true);
    for (uint64_t a = 0; a < 2 * MiB; a += 64) {
        noPf.access(a, false);
        pf.access(a, false);
    }
    EXPECT_LT(pf.stats().missRate(),
              0.7 * noPf.stats().missRate());
    EXPECT_GT(pf.stats().prefetchHits, 0u);
}

TEST(Cache, ResetClearsStateAndStats)
{
    Cache c(geom(4 * KiB, 4));
    c.access(0x1000, false);
    c.reset();
    EXPECT_EQ(c.stats().accesses, 0u);
    EXPECT_FALSE(c.access(0x1000, false));
}

TEST(Tlb, HitsWithinResidentPages)
{
    Tlb tlb(16);
    EXPECT_FALSE(tlb.access(0x0));
    EXPECT_TRUE(tlb.access(0x10));     // same page
    EXPECT_TRUE(tlb.access(0xFFF));
    EXPECT_FALSE(tlb.access(0x1000));  // next page
}

TEST(Tlb, CapacityBoundsReach)
{
    Tlb small(8);
    // Touch 64 pages round-robin: a small TLB misses constantly.
    for (int pass = 0; pass < 4; ++pass)
        for (uint64_t p = 0; p < 64; ++p)
            small.access(p * 4096);
    EXPECT_GT(small.stats().missRate(), 0.5);

    Tlb big(1024);
    for (int pass = 0; pass < 4; ++pass)
        for (uint64_t p = 0; p < 64; ++p)
            big.access(p * 4096);
    EXPECT_LT(big.stats().missRate(), 0.3);
}

} // namespace
} // namespace afsb::cachesim
