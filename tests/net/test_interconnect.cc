/**
 * @file
 * Unit tests for the modeled interconnect: per-link cost arithmetic,
 * queueing, local-send exemption, stats, and the comm-trace
 * render/parse round trip.
 */

#include <gtest/gtest.h>

#include "net/comm_trace.hh"
#include "net/interconnect.hh"
#include "net/topology.hh"
#include "util/logging.hh"
#include "util/str.hh"

namespace afsb::net {
namespace {

/** 1 GB/s wire, 1 ms latency, 2 GB/s serialization; 2 nodes. */
TopologyConfig
testTopology()
{
    TopologyConfig t;
    t.name = "test";
    t.nodes = 2;
    t.link.bandwidthBytesPerSec = 1e9;
    t.link.latencySeconds = 1e-3;
    t.link.serializeBytesPerSec = 2e9;
    return t;
}

TEST(Topology, EndpointLayout)
{
    const auto t = datacenterTopology(4);
    EXPECT_EQ(t.nodes, 4u);
    EXPECT_EQ(t.endpoints(), 5u);
    EXPECT_EQ(t.routerId(), 4u);
}

TEST(Topology, PresetsAndFreeLinks)
{
    EXPECT_DOUBLE_EQ(datacenterTopology(2).link.bandwidthBytesPerSec,
                     12.5e9);
    EXPECT_DOUBLE_EQ(commodityTopology(2).link.bandwidthBytesPerSec,
                     1.25e9);
    EXPECT_FALSE(datacenterTopology(2).link.free());
    EXPECT_TRUE(zeroCostTopology(2).link.free());
}

TEST(Interconnect, CostArithmetic)
{
    Interconnect net(testTopology());
    // 1e9 bytes: serialize 0.5 s, transfer 1.0 s, latency 1e-3.
    const auto d =
        net.send(0.0, 0, 1, 1000000000ull, MsgKind::RouteRequest);
    EXPECT_DOUBLE_EQ(d.serializeSeconds, 0.5);
    EXPECT_DOUBLE_EQ(d.transferSeconds, 1.0);
    EXPECT_DOUBLE_EQ(d.arriveTime, 0.5 + 1.0 + 1e-3);
}

TEST(Interconnect, MessagesQueueBehindEarlierTrafficOnOneLink)
{
    Interconnect net(testTopology());
    net.send(0.0, 0, 1, 1000000000ull, MsgKind::RouteRequest);
    // Link busy until 1.5 (serialize end 0.5 + transfer 1.0); the
    // second message serializes by 0.5 but must wait for the wire.
    const auto d =
        net.send(0.0, 0, 1, 1000000000ull, MsgKind::RouteRequest);
    EXPECT_DOUBLE_EQ(d.arriveTime, 1.5 + 1.0 + 1e-3);
}

TEST(Interconnect, OrderedPairsAreIndependentFullDuplexLinks)
{
    Interconnect net(testTopology());
    net.send(0.0, 0, 1, 1000000000ull, MsgKind::RouteRequest);
    // Reverse direction and a different destination never queue
    // behind 0 -> 1 traffic.
    const auto back =
        net.send(0.0, 1, 0, 1000000000ull, MsgKind::RouteResponse);
    EXPECT_DOUBLE_EQ(back.arriveTime, 0.5 + 1.0 + 1e-3);
    const auto router =
        net.send(0.0, 0, 2, 1000000000ull, MsgKind::RouteResponse);
    EXPECT_DOUBLE_EQ(router.arriveTime, 0.5 + 1.0 + 1e-3);
}

TEST(Interconnect, ZeroRatesMeanFree)
{
    auto topo = testTopology();
    topo.link.bandwidthBytesPerSec = 0.0; // infinite wire
    topo.link.serializeBytesPerSec = 0.0; // free marshalling
    topo.link.latencySeconds = 0.0;
    Interconnect net(topo);
    const auto d =
        net.send(3.5, 0, 1, 1ull << 40, MsgKind::CacheResult);
    EXPECT_DOUBLE_EQ(d.arriveTime, 3.5);
    EXPECT_DOUBLE_EQ(d.serializeSeconds, 0.0);
    EXPECT_DOUBLE_EQ(d.transferSeconds, 0.0);
    // Still recorded: zero cost, not zero traffic.
    EXPECT_EQ(net.stats().messages, 1u);
}

TEST(Interconnect, LocalSendsAreFreeAndUnrecorded)
{
    Interconnect net(testTopology());
    const auto d =
        net.send(7.0, 1, 1, 1ull << 30, MsgKind::CacheInsert);
    EXPECT_DOUBLE_EQ(d.arriveTime, 7.0);
    EXPECT_EQ(net.stats().messages, 0u);
    EXPECT_EQ(net.stats().bytes, 0u);
    EXPECT_TRUE(net.trace().empty());
    EXPECT_TRUE(net.activeLinks().empty());
}

TEST(Interconnect, EndpointOutOfRangeIsFatal)
{
    Interconnect net(testTopology()); // endpoints 0..2
    EXPECT_THROW(net.send(0.0, 3, 0, 1, MsgKind::RouteRequest),
                 FatalError);
    EXPECT_THROW(net.send(0.0, 0, 3, 1, MsgKind::RouteRequest),
                 FatalError);
}

TEST(Interconnect, StatsAndActiveLinksAccumulate)
{
    Interconnect net(testTopology());
    net.send(0.0, 2, 0, 1000ull, MsgKind::RouteRequest, 11);
    net.send(0.0, 2, 1, 2000ull, MsgKind::RouteRequest, 12);
    net.send(1.0, 2, 0, 3000ull, MsgKind::RouteRequest, 13);
    net.send(1.0, 1, 1, 4000ull, MsgKind::CacheInsert); // local
    const auto &s = net.stats();
    EXPECT_EQ(s.messages, 3u);
    EXPECT_EQ(s.bytes, 6000u);
    EXPECT_DOUBLE_EQ(s.latencySeconds, 3e-3);

    const auto links = net.activeLinks();
    ASSERT_EQ(links.size(), 2u); // (2,0) and (2,1), sorted
    EXPECT_EQ(links[0].src, 2u);
    EXPECT_EQ(links[0].dst, 0u);
    EXPECT_EQ(links[0].messages, 2u);
    EXPECT_EQ(links[0].bytes, 4000u);
    EXPECT_EQ(links[1].dst, 1u);
    EXPECT_EQ(links[1].messages, 1u);
}

TEST(Interconnect, IdenticalSendSequencesRenderIdenticalTraces)
{
    const auto run = [] {
        Interconnect net(testTopology());
        net.send(0.25, 2, 0, 16384ull, MsgKind::RouteRequest, 1);
        net.send(0.50, 0, 1, 256ull, MsgKind::CacheLookup, 1);
        net.send(0.75, 1, 0, 4096ull, MsgKind::CacheResult, 1);
        return net.trace().render();
    };
    const std::string a = run(), b = run();
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

TEST(MsgKind, NamesRoundTrip)
{
    for (size_t i = 0; i < kMsgKinds; ++i) {
        const auto kind = static_cast<MsgKind>(i);
        MsgKind back;
        ASSERT_TRUE(msgKindByName(msgKindName(kind), &back))
            << msgKindName(kind);
        EXPECT_EQ(back, kind);
    }
    MsgKind out;
    EXPECT_FALSE(msgKindByName("carrier_pigeon", &out));
}

TEST(CommTrace, RenderParseRoundTripIsByteStable)
{
    Interconnect net(testTopology());
    net.send(0.0, 2, 0, 16384ull, MsgKind::RouteRequest, 7);
    net.send(0.0, 0, 1, 256ull, MsgKind::CacheLookup, 7);
    net.send(0.5, 1, 0, 1048576ull, MsgKind::CacheResult, 7);
    net.send(0.5, 0, 2, 4194304ull, MsgKind::RouteResponse, 7);
    const std::string text = net.trace().render();

    const auto events = parseCommTrace(text);
    ASSERT_EQ(events.size(), net.trace().size());
    CommTrace reparsed;
    for (const auto &e : events)
        reparsed.append(e);
    EXPECT_EQ(reparsed.render(), text);

    const auto &orig = net.trace().events();
    for (size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].src, orig[i].src);
        EXPECT_EQ(events[i].dst, orig[i].dst);
        EXPECT_EQ(events[i].bytes, orig[i].bytes);
        EXPECT_EQ(events[i].kind, orig[i].kind);
        EXPECT_EQ(events[i].tag, orig[i].tag);
    }
}

TEST(CommTrace, ParseRejectsMalformedInput)
{
    EXPECT_THROW(parseCommTrace("no header\n"), FatalError);
    const std::string header = "# afsb-comm-trace v1\n";
    EXPECT_THROW(parseCommTrace(header + "t=zero src=0\n"),
                 FatalError);
    EXPECT_THROW(
        parseCommTrace(header +
                       "t=0.000000 src=0 dst=1 kind=warp_drive "
                       "bytes=1 ser=0.000000 xfer=0.000000 "
                       "arrive=0.000000 tag=0\n"),
        FatalError);
}

TEST(CommTrace, NumericFieldsRejectTrailingGarbage)
{
    // A partially-parsable number ("1.5x", "12abc") must be a hard
    // error, not a silent prefix parse.
    const std::string header = "# afsb-comm-trace v1\n";
    const std::string good =
        "t=%s src=%s dst=1 kind=route_request bytes=%s "
        "ser=0.000000 xfer=0.000000 arrive=0.000000 tag=0\n";
    const auto line = [&](const char *t, const char *src,
                          const char *bytes) {
        return header + strformat(good.c_str(), t, src, bytes);
    };
    EXPECT_NO_THROW(parseCommTrace(line("1.5", "0", "12")));
    EXPECT_THROW(parseCommTrace(line("1.5x", "0", "12")),
                 FatalError);
    EXPECT_THROW(parseCommTrace(line("1.5", "0y", "12")),
                 FatalError);
    EXPECT_THROW(parseCommTrace(line("1.5", "0", "12abc")),
                 FatalError);
    EXPECT_THROW(parseCommTrace(line("1.5", "-2", "12")),
                 FatalError);
    EXPECT_THROW(parseCommTrace(line("", "0", "12")), FatalError);
}

TEST(CommTrace, EmptyTraceRendersHeaderOnly)
{
    CommTrace trace;
    const auto events = parseCommTrace(trace.render());
    EXPECT_TRUE(events.empty());
}

} // namespace
} // namespace afsb::net
