/**
 * @file
 * BoundedWorkQueue unit tests: FIFO order, capacity backpressure,
 * close/drain semantics, and multi-producer/consumer integrity.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "util/work_queue.hh"

namespace afsb {
namespace {

TEST(WorkQueue, FifoOrderSingleThreaded)
{
    BoundedWorkQueue<int> q(8);
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(q.push(i));
    EXPECT_EQ(q.size(), 5u);
    int v = -1;
    for (int i = 0; i < 5; ++i) {
        EXPECT_TRUE(q.pop(v));
        EXPECT_EQ(v, i);
    }
    EXPECT_EQ(q.size(), 0u);
}

TEST(WorkQueue, TryPushRespectsCapacity)
{
    BoundedWorkQueue<int> q(2);
    EXPECT_TRUE(q.tryPush(1));
    EXPECT_TRUE(q.tryPush(2));
    EXPECT_FALSE(q.tryPush(3));  // full
    int v;
    EXPECT_TRUE(q.tryPop(v));
    EXPECT_EQ(v, 1);
    EXPECT_TRUE(q.tryPush(3));  // space again
    const auto st = q.stats();
    EXPECT_EQ(st.pushed, 3u);
    EXPECT_EQ(st.peakDepth, 2u);
}

TEST(WorkQueue, ZeroCapacityPromotedToOne)
{
    BoundedWorkQueue<int> q(0);
    EXPECT_EQ(q.capacity(), 1u);
    EXPECT_TRUE(q.tryPush(7));
    EXPECT_FALSE(q.tryPush(8));
}

TEST(WorkQueue, CloseDrainsRemainingItems)
{
    BoundedWorkQueue<int> q(4);
    EXPECT_TRUE(q.push(1));
    EXPECT_TRUE(q.push(2));
    q.close();
    EXPECT_FALSE(q.push(3));     // rejected after close
    EXPECT_FALSE(q.tryPush(3));
    int v = 0;
    EXPECT_TRUE(q.pop(v));
    EXPECT_EQ(v, 1);
    EXPECT_TRUE(q.pop(v));
    EXPECT_EQ(v, 2);
    EXPECT_FALSE(q.pop(v));      // closed and empty
}

TEST(WorkQueue, CloseWakesBlockedPopper)
{
    BoundedWorkQueue<int> q(4);
    std::thread popper([&] {
        int v;
        EXPECT_FALSE(q.pop(v));  // blocks, then close() wakes it
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.close();
    popper.join();
    EXPECT_GE(q.stats().popWaits, 1u);
}

TEST(WorkQueue, BlockedPushWakesOnPop)
{
    BoundedWorkQueue<int> q(1);
    EXPECT_TRUE(q.push(1));
    std::thread pusher([&] { EXPECT_TRUE(q.push(2)); });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    int v = 0;
    EXPECT_TRUE(q.pop(v));
    pusher.join();
    EXPECT_TRUE(q.pop(v));
    EXPECT_EQ(v, 2);
    EXPECT_GE(q.stats().pushWaits, 1u);
}

TEST(WorkQueue, MpmcStressDeliversEveryItemOnce)
{
    constexpr int kProducers = 4, kConsumers = 4;
    constexpr int kPerProducer = 2000;
    BoundedWorkQueue<int> q(16);
    std::vector<std::atomic<int>> seen(kProducers * kPerProducer);
    for (auto &s : seen)
        s.store(0);

    std::vector<std::thread> threads;
    for (int p = 0; p < kProducers; ++p)
        threads.emplace_back([&, p] {
            for (int i = 0; i < kPerProducer; ++i)
                ASSERT_TRUE(q.push(p * kPerProducer + i));
        });
    std::atomic<int> consumed{0};
    std::vector<std::thread> consumers;
    for (int c = 0; c < kConsumers; ++c)
        consumers.emplace_back([&] {
            int v;
            while (q.pop(v)) {
                seen[static_cast<size_t>(v)].fetch_add(1);
                consumed.fetch_add(1);
            }
        });
    for (auto &t : threads)
        t.join();
    q.close();
    for (auto &t : consumers)
        t.join();

    EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
    for (const auto &s : seen)
        EXPECT_EQ(s.load(), 1);
    const auto st = q.stats();
    EXPECT_EQ(st.pushed, st.popped);
    EXPECT_LE(st.peakDepth, 16u);
}

} // namespace
} // namespace afsb
