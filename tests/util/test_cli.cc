/**
 * @file
 * Unit tests for the command-line parser.
 */

#include <gtest/gtest.h>

#include "util/cli.hh"
#include "util/logging.hh"

namespace afsb {
namespace {

CliArgs
parse(std::initializer_list<const char *> tokens)
{
    std::vector<const char *> argv = {"prog"};
    argv.insert(argv.end(), tokens.begin(), tokens.end());
    return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, PositionalsAndCommand)
{
    const auto args = parse({"run", "extra"});
    EXPECT_EQ(args.command(), "run");
    ASSERT_EQ(args.positionals().size(), 2u);
    EXPECT_EQ(args.positionals()[1], "extra");
    EXPECT_EQ(parse({}).command("help"), "help");
}

TEST(Cli, OptionsWithValues)
{
    const auto args =
        parse({"run", "--sample", "promo", "--threads", "1,2,4"});
    EXPECT_TRUE(args.has("sample"));
    EXPECT_EQ(args.get("sample"), "promo");
    EXPECT_EQ(args.get("missing", "dflt"), "dflt");
}

TEST(Cli, SwitchesWithoutValues)
{
    const auto args = parse({"run", "--preload", "--csv", "x.csv"});
    EXPECT_TRUE(args.getSwitch("preload"));
    EXPECT_FALSE(args.getSwitch("persistent"));
    EXPECT_EQ(args.get("csv"), "x.csv");
}

TEST(Cli, SwitchFollowedByOption)
{
    // --preload is followed by another option, so it stays boolean.
    const auto args = parse({"--preload", "--repeats", "3"});
    EXPECT_TRUE(args.getSwitch("preload"));
    EXPECT_EQ(args.getInt("repeats", 1), 3);
}

TEST(Cli, IntAndDoubleParsing)
{
    const auto args = parse({"--n", "42", "--x", "2.5"});
    EXPECT_EQ(args.getInt("n", 0), 42);
    EXPECT_DOUBLE_EQ(args.getDouble("x", 0.0), 2.5);
    EXPECT_EQ(args.getInt("absent", 7), 7);
    const auto bad = parse({"--n", "abc"});
    EXPECT_THROW(bad.getInt("n", 0), FatalError);
}

TEST(Cli, IntLists)
{
    const auto args = parse({"--threads", "1,2, 4,8"});
    const auto list = args.getIntList("threads", {99});
    ASSERT_EQ(list.size(), 4u);
    EXPECT_EQ(list[0], 1u);
    EXPECT_EQ(list[3], 8u);
    EXPECT_EQ(parse({}).getIntList("threads", {5})[0], 5u);
    EXPECT_THROW(parse({"--threads", "1,x"})
                     .getIntList("threads", {}),
                 FatalError);
    EXPECT_THROW(parse({"--threads", "0"})
                     .getIntList("threads", {}),
                 FatalError);
}

} // namespace
} // namespace afsb
