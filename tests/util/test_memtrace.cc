/**
 * @file
 * Tests for the memory-trace function registry.
 */

#include <gtest/gtest.h>

#include "util/memtrace.hh"
#include "util/logging.hh"

namespace afsb {
namespace {

TEST(FuncRegistry, InternIsStableAndIdempotent)
{
    FuncRegistry reg;
    const FuncId a = reg.intern("alpha");
    const FuncId b = reg.intern("beta");
    EXPECT_NE(a, b);
    EXPECT_EQ(reg.intern("alpha"), a);
    EXPECT_EQ(reg.name(a), "alpha");
    EXPECT_EQ(reg.name(b), "beta");
    EXPECT_EQ(reg.size(), 2u);
}

TEST(FuncRegistry, WellKnownIdsAreDistinctAndNamed)
{
    const FuncId ids[] = {
        wellknown::calcBand9(),  wellknown::calcBand10(),
        wellknown::addbuf(),     wellknown::seebuf(),
        wellknown::copyToIter(), wellknown::msvFilter(),
        wellknown::fillInsert(), wellknown::byteSizeOf(),
        wellknown::other(),
    };
    for (size_t i = 0; i < std::size(ids); ++i)
        for (size_t j = i + 1; j < std::size(ids); ++j)
            EXPECT_NE(ids[i], ids[j]);
    auto &reg = FuncRegistry::global();
    EXPECT_EQ(reg.name(wellknown::calcBand9()), "calc_band_9");
    EXPECT_EQ(reg.name(wellknown::copyToIter()), "copy_to_iter");
    EXPECT_EQ(reg.name(wellknown::fillInsert()),
              "std::vector::_M_fill_insert");
}

TEST(FuncRegistry, WellKnownIdsAreCachedAcrossCalls)
{
    EXPECT_EQ(wellknown::addbuf(), wellknown::addbuf());
    const size_t before = FuncRegistry::global().size();
    (void)wellknown::addbuf();
    EXPECT_EQ(FuncRegistry::global().size(), before);
}

} // namespace
} // namespace afsb
