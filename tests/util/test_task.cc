/**
 * @file
 * Unit tests for the work-stealing TaskGroup runtime.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "util/task.hh"
#include "util/threadpool.hh"

namespace afsb {
namespace {

TEST(TaskGroup, RunsEverySpawnedTaskOnce)
{
    ThreadPool pool(4);
    TaskGroup group(&pool);
    std::vector<std::atomic<int>> hits(500);
    for (size_t i = 0; i < hits.size(); ++i)
        group.spawn([&hits, i] { ++hits[i]; });
    group.sync();
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(TaskGroup, NullPoolRunsInlineOnCaller)
{
    TaskGroup group(nullptr);
    const auto caller = std::this_thread::get_id();
    std::vector<std::thread::id> seen;
    for (int i = 0; i < 8; ++i)
        group.spawn([&] { seen.push_back(std::this_thread::get_id()); });
    group.sync();
    ASSERT_EQ(seen.size(), 8u);
    for (const auto &id : seen)
        EXPECT_EQ(id, caller);
}

TEST(TaskGroup, TasksSpawnTasksRecursively)
{
    // A binary fan-out spawned entirely from inside tasks: 1 root
    // spawning 2 spawning 4 ... totals 2^d - 1 executions.
    ThreadPool pool(4);
    TaskGroup group(&pool);
    std::atomic<int> count{0};
    std::function<void(int)> node = [&](int depth) {
        ++count;
        if (depth == 0)
            return;
        group.spawn([&, depth] { node(depth - 1); });
        group.spawn([&, depth] { node(depth - 1); });
    };
    group.spawn([&] { node(6); });
    group.sync();
    EXPECT_EQ(count.load(), (1 << 7) - 1);
}

TEST(TaskGroup, SyncIsReusable)
{
    ThreadPool pool(3);
    TaskGroup group(&pool);
    std::atomic<int> sum{0};
    for (int i = 0; i < 10; ++i)
        group.spawn([&, i] { sum += i; });
    group.sync();
    EXPECT_EQ(sum.load(), 45);
    for (int i = 0; i < 5; ++i)
        group.spawn([&, i] { sum += i; });
    group.sync();
    EXPECT_EQ(sum.load(), 55);
}

TEST(TaskGroup, SyncWithNoTasksReturnsImmediately)
{
    ThreadPool pool(2);
    TaskGroup group(&pool);
    group.sync();
    group.sync();
}

TEST(TaskGroup, GateFiresAfterAllArrivals)
{
    ThreadPool pool(4);
    TaskGroup group(&pool);
    std::atomic<int> before{0};
    std::atomic<int> after{0};
    std::atomic<bool> ordered{true};
    constexpr int kArrivals = 32;
    auto *gate = group.gate(kArrivals, [&] {
        if (before.load() != kArrivals)
            ordered = false;
        ++after;
    });
    for (int i = 0; i < kArrivals; ++i)
        group.spawn([&, gate] {
            ++before;
            gate->arrive();
        });
    group.sync();
    EXPECT_EQ(after.load(), 1);
    EXPECT_TRUE(ordered.load());
}

TEST(TaskGroup, GateChainsAcrossStages)
{
    // Three-stage chain: stage tasks arrive at the next stage's gate;
    // every stage must observe the previous one fully drained.
    ThreadPool pool(4);
    TaskGroup group(&pool);
    std::atomic<int> stage1{0};
    std::atomic<int> stage2{0};
    std::atomic<bool> ok{true};
    auto *g2 = group.gate(8, [&] {
        if (stage2.load() != 8)
            ok = false;
    });
    auto *g1 = group.gate(8, [&] {
        if (stage1.load() != 8)
            ok = false;
        for (int i = 0; i < 8; ++i)
            group.spawn([&, g2] {
                ++stage2;
                g2->arrive();
            });
    });
    for (int i = 0; i < 8; ++i)
        group.spawn([&, g1] {
            ++stage1;
            g1->arrive();
        });
    group.sync();
    EXPECT_TRUE(ok.load());
    EXPECT_EQ(stage2.load(), 8);
}

TEST(TaskGroup, SlotsAreStableAndInRange)
{
    ThreadPool pool(3);
    TaskGroup group(&pool);
    ASSERT_GE(group.slots(), 2u);
    std::mutex m;
    std::set<size_t> seen;
    for (int i = 0; i < 64; ++i)
        group.spawn([&] {
            std::lock_guard lock(m);
            seen.insert(group.currentSlot());
        });
    group.sync();
    for (size_t s : seen)
        EXPECT_LT(s, group.slots());
}

TEST(TaskGroup, RunOneDrainsFromInsideATask)
{
    // Help-first backpressure: a long-running task can retire other
    // pending tasks with runOne() instead of blocking.
    ThreadPool pool(2);
    TaskGroup group(&pool);
    std::atomic<int> done{0};
    group.spawn([&] {
        for (int i = 0; i < 16; ++i)
            group.spawn([&] { ++done; });
        while (done.load() < 16)
            if (!group.runOne())
                std::this_thread::yield();
    });
    group.sync();
    EXPECT_EQ(done.load(), 16);
}

TEST(TaskGroup, NestedGroupInsideTaskRunsInline)
{
    // A group created inside a task of another group must not
    // dispatch to the pool (its participants could deadlock against
    // the outer group's); it degrades to inline execution.
    ThreadPool pool(2);
    TaskGroup outer(&pool);
    std::atomic<int> innerCount{0};
    std::atomic<bool> sawInline{false};
    outer.spawn([&] {
        TaskGroup inner(&pool);
        for (int i = 0; i < 10; ++i)
            inner.spawn([&] { ++innerCount; });
        inner.sync();
        sawInline = true;
    });
    outer.sync();
    EXPECT_EQ(innerCount.load(), 10);
    EXPECT_TRUE(sawInline.load());
}

TEST(TaskGroup, GroupFromPoolWorkerRunsInline)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&] {
        TaskGroup g(&pool);
        for (int i = 0; i < 10; ++i)
            g.spawn([&] { ++count; });
        g.sync();
    });
    pool.wait();
    EXPECT_EQ(count.load(), 10);
}

TEST(TaskGroup, InTaskReflectsContext)
{
    ThreadPool pool(2);
    EXPECT_FALSE(TaskGroup::inTask());
    TaskGroup group(&pool);
    std::atomic<bool> inside{false};
    group.spawn([&] { inside = TaskGroup::inTask(); });
    group.sync();
    EXPECT_TRUE(inside.load());
    EXPECT_FALSE(TaskGroup::inTask());
}

TEST(TaskGroup, ManyTasksManyWorkersStress)
{
    ThreadPool pool(8);
    TaskGroup group(&pool);
    constexpr size_t kN = 2000;
    std::vector<std::atomic<int>> hits(kN);
    for (size_t i = 0; i < kN; ++i)
        group.spawn([&hits, i] { ++hits[i]; });
    group.sync();
    size_t total = 0;
    for (const auto &h : hits)
        total += static_cast<size_t>(h.load());
    EXPECT_EQ(total, kN);
}

TEST(TaskGroup, DestructorSyncsOutstandingTasks)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    {
        TaskGroup group(&pool);
        for (int i = 0; i < 100; ++i)
            group.spawn([&] { ++count; });
    }
    EXPECT_EQ(count.load(), 100);
}

} // namespace
} // namespace afsb
