/**
 * @file
 * Unit and property tests for the monotone cubic interpolator.
 */

#include <gtest/gtest.h>

#include "util/interp.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace afsb {
namespace {

TEST(MonotoneCubic, PassesThroughControlPoints)
{
    const MonotoneCubic f({0.0, 1.0, 3.0, 7.0},
                          {2.0, 5.0, 5.5, 40.0});
    EXPECT_NEAR(f(0.0), 2.0, 1e-12);
    EXPECT_NEAR(f(1.0), 5.0, 1e-12);
    EXPECT_NEAR(f(3.0), 5.5, 1e-12);
    EXPECT_NEAR(f(7.0), 40.0, 1e-12);
}

TEST(MonotoneCubic, PreservesMonotonicity)
{
    // Increasing control data must yield an increasing curve with
    // no Runge-style overshoot between points.
    const MonotoneCubic f({0, 150, 300, 621, 935, 1135},
                          {0.5, 2.0, 8.0, 79.3, 506.0, 644.0});
    double prev = f(0.0);
    for (double x = 1.0; x <= 1135.0; x += 1.0) {
        const double y = f(x);
        ASSERT_GE(y, prev - 1e-9) << "at x=" << x;
        prev = y;
    }
}

TEST(MonotoneCubic, LinearDataReproducedExactly)
{
    const MonotoneCubic f({0.0, 1.0, 2.0, 3.0},
                          {1.0, 3.0, 5.0, 7.0});
    for (double x = 0.0; x <= 3.0; x += 0.125)
        EXPECT_NEAR(f(x), 1.0 + 2.0 * x, 1e-9);
}

TEST(MonotoneCubic, ExtrapolatesLinearly)
{
    const MonotoneCubic f({0.0, 1.0}, {0.0, 2.0});
    EXPECT_NEAR(f(2.0), 4.0, 1e-9);
    EXPECT_NEAR(f(-1.0), -2.0, 1e-9);
}

TEST(MonotoneCubic, HandlesFlatSegments)
{
    const MonotoneCubic f({0.0, 1.0, 2.0, 3.0},
                          {1.0, 1.0, 1.0, 5.0});
    EXPECT_NEAR(f(0.5), 1.0, 1e-9);
    EXPECT_NEAR(f(1.5), 1.0, 1e-9);
    EXPECT_GT(f(2.5), 1.0);
}

TEST(MonotoneCubic, RejectsBadInput)
{
    EXPECT_THROW(MonotoneCubic({1.0}, {1.0}), FatalError);
    EXPECT_THROW(MonotoneCubic({1.0, 1.0}, {1.0, 2.0}), FatalError);
    EXPECT_THROW(MonotoneCubic({2.0, 1.0}, {1.0, 2.0}), FatalError);
    EXPECT_THROW(MonotoneCubic({1.0, 2.0}, {1.0}), FatalError);
}

TEST(MonotoneCubic, RandomMonotoneDataStaysMonotone)
{
    // Property sweep: random increasing control points never
    // produce a decreasing interpolant.
    Rng rng(31337);
    for (int trial = 0; trial < 25; ++trial) {
        std::vector<double> xs = {0.0}, ys = {0.0};
        for (int i = 0; i < 8; ++i) {
            xs.push_back(xs.back() + 0.5 + rng.nextDouble() * 10.0);
            ys.push_back(ys.back() + rng.nextDouble() * 100.0);
        }
        const MonotoneCubic f(xs, ys);
        double prev = f(xs.front());
        for (double x = xs.front(); x <= xs.back();
             x += (xs.back() - xs.front()) / 500.0) {
            const double y = f(x);
            ASSERT_GE(y, prev - 1e-9)
                << "trial " << trial << " x=" << x;
            prev = y;
        }
    }
}

} // namespace
} // namespace afsb
