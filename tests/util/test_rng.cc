/**
 * @file
 * Unit and statistical property tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <set>

#include "util/rng.hh"

namespace afsb {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.nextBounded(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    std::set<int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const int64_t v = r.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(11);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        const double d = r.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
        sum += d;
    }
    EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, GaussianMoments)
{
    Rng r(13);
    double sum = 0.0, sq = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double g = r.nextGaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, WeightedRespectsWeights)
{
    Rng r(17);
    std::vector<double> w = {1.0, 0.0, 3.0};
    int counts[3] = {0, 0, 0};
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        ++counts[r.nextWeighted(w)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
    EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(21);
    Rng child = a.fork();
    // The child stream should not replay the parent stream.
    Rng parentCopy(21);
    parentCopy.next(); // advance past the fork draw
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += child.next() == parentCopy.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, BernoulliProbability)
{
    Rng r(23);
    int hits = 0;
    const int n = 30000;
    for (int i = 0; i < n; ++i)
        hits += r.nextBool(0.2);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.2, 0.02);
}

} // namespace
} // namespace afsb
