/**
 * @file
 * Unit tests for the worker pool.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "util/threadpool.hh"

namespace afsb {
namespace {

TEST(ThreadPool, RunsAllSubmittedTasks)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ZeroThreadsPromotedToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
    std::atomic<int> x{0};
    pool.submit([&] { x = 42; });
    pool.wait();
    EXPECT_EQ(x.load(), 42);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce)
{
    ThreadPool pool(6);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(1000, [&](size_t i) { ++hits[i]; });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange)
{
    ThreadPool pool(2);
    bool touched = false;
    pool.parallelFor(0, [&](size_t) { touched = true; });
    EXPECT_FALSE(touched);
}

TEST(ThreadPool, ParallelBlocksPartitionIsContiguousAndComplete)
{
    ThreadPool pool(3);
    std::mutex m;
    std::vector<std::pair<size_t, size_t>> ranges;
    pool.parallelBlocks(100, [&](size_t, size_t b, size_t e) {
        std::lock_guard lock(m);
        ranges.emplace_back(b, e);
    });
    std::sort(ranges.begin(), ranges.end());
    size_t expect = 0;
    for (auto [b, e] : ranges) {
        EXPECT_EQ(b, expect);
        EXPECT_GT(e, b);
        expect = e;
    }
    EXPECT_EQ(expect, 100u);
}

TEST(ThreadPool, WaitIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> sum{0};
    pool.parallelFor(10, [&](size_t i) { sum += static_cast<int>(i); });
    EXPECT_EQ(sum.load(), 45);
    pool.parallelFor(5, [&](size_t i) { sum += static_cast<int>(i); });
    EXPECT_EQ(sum.load(), 55);
}

TEST(ThreadPool, MoreWorkersThanItems)
{
    ThreadPool pool(16);
    std::atomic<int> count{0};
    pool.parallelFor(3, [&](size_t) { ++count; });
    EXPECT_EQ(count.load(), 3);
}

} // namespace
} // namespace afsb
