/**
 * @file
 * Unit tests for the worker pool.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <thread>
#include <utility>
#include <vector>

#include "util/task.hh"
#include "util/threadpool.hh"

namespace afsb {
namespace {

TEST(ThreadPool, RunsAllSubmittedTasks)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ZeroThreadsPromotedToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
    std::atomic<int> x{0};
    pool.submit([&] { x = 42; });
    pool.wait();
    EXPECT_EQ(x.load(), 42);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce)
{
    ThreadPool pool(6);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(1000, [&](size_t i) { ++hits[i]; });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange)
{
    ThreadPool pool(2);
    bool touched = false;
    pool.parallelFor(0, [&](size_t) { touched = true; });
    EXPECT_FALSE(touched);
}

TEST(ThreadPool, ParallelBlocksPartitionIsContiguousAndComplete)
{
    ThreadPool pool(3);
    std::mutex m;
    std::vector<std::pair<size_t, size_t>> ranges;
    pool.parallelBlocks(100, [&](size_t, size_t b, size_t e) {
        std::lock_guard lock(m);
        ranges.emplace_back(b, e);
    });
    std::sort(ranges.begin(), ranges.end());
    size_t expect = 0;
    for (auto [b, e] : ranges) {
        EXPECT_EQ(b, expect);
        EXPECT_GT(e, b);
        expect = e;
    }
    EXPECT_EQ(expect, 100u);
}

TEST(ThreadPool, WaitIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> sum{0};
    pool.parallelFor(10, [&](size_t i) { sum += static_cast<int>(i); });
    EXPECT_EQ(sum.load(), 45);
    pool.parallelFor(5, [&](size_t i) { sum += static_cast<int>(i); });
    EXPECT_EQ(sum.load(), 55);
}

TEST(ThreadPool, MoreWorkersThanItems)
{
    ThreadPool pool(16);
    std::atomic<int> count{0};
    pool.parallelFor(3, [&](size_t) { ++count; });
    EXPECT_EQ(count.load(), 3);
}

// --- chunked parallelFor ------------------------------------------------

TEST(ThreadPool, ChunkedCoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    for (size_t n : {0u, 1u, 7u, 100u, 1001u}) {
        for (size_t grain : {1u, 3u, 16u, 1000u, 5000u}) {
            std::vector<std::atomic<int>> hits(n);
            pool.parallelFor(n, grain, [&](size_t b, size_t e) {
                ASSERT_LE(b, e);
                ASSERT_LE(e, n);
                for (size_t i = b; i < e; ++i)
                    ++hits[i];
            });
            for (size_t i = 0; i < n; ++i)
                ASSERT_EQ(hits[i].load(), 1)
                    << "n=" << n << " grain=" << grain
                    << " i=" << i;
        }
    }
}

TEST(ThreadPool, ChunkedBlocksAlignToGrain)
{
    // Every block must start at a multiple of the grain (the GEMM
    // row-pairing contract) and be at most grain long.
    ThreadPool pool(3);
    constexpr size_t kGrain = 7;
    std::mutex m;
    std::vector<std::pair<size_t, size_t>> blocks;
    pool.parallelFor(95, kGrain, [&](size_t b, size_t e) {
        std::lock_guard lock(m);
        blocks.emplace_back(b, e);
    });
    for (auto [b, e] : blocks) {
        EXPECT_EQ(b % kGrain, 0u);
        EXPECT_LE(e - b, kGrain);
    }
    EXPECT_EQ(blocks.size(), (95 + kGrain - 1) / kGrain);
}

TEST(ThreadPool, ChunkedAutoGrainCoversRange)
{
    ThreadPool pool(4);
    std::atomic<size_t> total{0};
    pool.parallelFor(1000, 0, [&](size_t b, size_t e) {
        total += e - b;
    });
    EXPECT_EQ(total.load(), 1000u);
}

TEST(ThreadPool, ChunkedSingleWorkerRunsInline)
{
    ThreadPool pool(1);
    const auto caller = std::this_thread::get_id();
    std::vector<std::thread::id> seen;
    pool.parallelFor(10, 2, [&](size_t, size_t) {
        seen.push_back(std::this_thread::get_id());
    });
    ASSERT_FALSE(seen.empty());
    for (const auto &id : seen)
        EXPECT_EQ(id, caller);
}

TEST(ThreadPool, ChunkedNestedDispatchDoesNotDeadlock)
{
    // A pool worker re-entering parallelFor must run the nested
    // range inline instead of submitting (and then waiting on) the
    // pool it is itself part of.
    ThreadPool pool(2);
    std::atomic<size_t> inner{0};
    pool.parallelFor(4, 1, [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i)
            pool.parallelFor(8, 2, [&](size_t ib, size_t ie) {
                inner += ie - ib;
            });
    });
    EXPECT_EQ(inner.load(), 4u * 8u);
}

TEST(ThreadPool, ChunkedNestedParallelBlocksDoesNotDeadlock)
{
    ThreadPool pool(2);
    std::atomic<size_t> inner{0};
    pool.parallelFor(4, 1, [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i)
            pool.parallelBlocks(6, [&](size_t, size_t ib,
                                       size_t ie) {
                inner += ie - ib;
            });
    });
    EXPECT_EQ(inner.load(), 4u * 6u);
}

TEST(ThreadPool, ChunkedDispatchFromTaskGroupTaskRunsInline)
{
    // Regression: the nested-dispatch guard must cover TaskGroup
    // reentry, not just pool workers.  A task running on the *owner*
    // thread is not a pool worker, so before the TaskGroup::inTask()
    // leg, parallelFor from such a task would enqueue blocks and
    // block in wait() while every pool worker sat in the group's own
    // participant loops — deadlock.
    ThreadPool pool(2);
    TaskGroup group(&pool);
    std::atomic<size_t> covered{0};
    for (int t = 0; t < 4; ++t)
        group.spawn([&] {
            pool.parallelFor(64, 8, [&](size_t b, size_t e) {
                covered += e - b;
            });
            pool.parallelBlocks(6, [&](size_t, size_t b, size_t e) {
                covered += e - b;
            });
        });
    group.sync();
    EXPECT_EQ(covered.load(), 4u * (64u + 6u));
}

TEST(ThreadPool, ChunkedStealingAndLegacyCoverIdentically)
{
    // Both engines must produce the exact same block partition; only
    // the executing threads differ.
    ThreadPool pool(4);
    for (bool stealing : {true, false}) {
        pool.setChunkedStealing(stealing);
        std::mutex m;
        std::vector<std::pair<size_t, size_t>> blocks;
        pool.parallelFor(95, 7, [&](size_t b, size_t e) {
            std::lock_guard lock(m);
            blocks.emplace_back(b, e);
        });
        std::sort(blocks.begin(), blocks.end());
        ASSERT_EQ(blocks.size(), (95u + 6u) / 7u) << stealing;
        size_t expect = 0;
        for (auto [b, e] : blocks) {
            EXPECT_EQ(b, expect);
            EXPECT_EQ(b % 7, 0u);
            expect = e;
        }
        EXPECT_EQ(expect, 95u);
    }
    pool.setChunkedStealing(true);
}

} // namespace
} // namespace afsb
