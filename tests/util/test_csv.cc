/**
 * @file
 * Unit tests for the CSV writer (RFC-4180 quoting).
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "util/csv.hh"
#include "util/logging.hh"

namespace afsb {
namespace {

TEST(Csv, RendersHeaderAndRows)
{
    CsvWriter csv;
    csv.setHeader({"a", "b"});
    csv.addRow({"1", "2"});
    csv.addRow({"3", "4"});
    EXPECT_EQ(csv.render(), "a,b\n1,2\n3,4\n");
    EXPECT_EQ(csv.rowCount(), 2u);
}

TEST(Csv, NoHeaderEmitsRowsOnly)
{
    CsvWriter csv;
    csv.addRow({"x"});
    EXPECT_EQ(csv.render(), "x\n");
}

TEST(Csv, QuotesFieldsWithSeparatorsAndQuotes)
{
    CsvWriter csv;
    csv.addRow({"plain", "has,comma", "has\"quote", "has\nnewline"});
    EXPECT_EQ(csv.render(),
              "plain,\"has,comma\",\"has\"\"quote\","
              "\"has\nnewline\"\n");
}

TEST(Csv, EmptyFieldsSurviveRoundTrip)
{
    CsvWriter csv;
    csv.setHeader({"a", "b", "c"});
    csv.addRow({"", "mid", ""});
    EXPECT_EQ(csv.render(), "a,b,c\n,mid,\n");
}

TEST(Csv, WriteFileRoundTrips)
{
    CsvWriter csv;
    csv.setHeader({"k", "v"});
    csv.addRow({"x", "1,2"});
    const std::string path = "test_csv_roundtrip.tmp.csv";
    csv.writeFile(path);

    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[256] = {};
    const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    std::remove(path.c_str());
    EXPECT_EQ(std::string(buf, n), csv.render());
}

TEST(Csv, WriteFileToBadPathIsFatal)
{
    CsvWriter csv;
    csv.addRow({"x"});
    EXPECT_THROW(csv.writeFile("/nonexistent-dir/out.csv"),
                 FatalError);
}

} // namespace
} // namespace afsb
