/**
 * @file
 * Unit tests for the JSON parser and writer.
 */

#include <gtest/gtest.h>

#include "util/json.hh"
#include "util/logging.hh"

namespace afsb {
namespace {

TEST(Json, ParsesScalars)
{
    EXPECT_TRUE(parseJson("null").isNull());
    EXPECT_TRUE(parseJson("true").asBool());
    EXPECT_FALSE(parseJson("false").asBool());
    EXPECT_DOUBLE_EQ(parseJson("3.5").asNumber(), 3.5);
    EXPECT_DOUBLE_EQ(parseJson("-42").asNumber(), -42.0);
    EXPECT_DOUBLE_EQ(parseJson("1e3").asNumber(), 1000.0);
    EXPECT_EQ(parseJson("\"hi\"").asString(), "hi");
}

TEST(Json, ParsesNestedStructure)
{
    const auto v = parseJson(R"({
        "name": "2PV7",
        "sequences": [
            {"protein": {"id": "A", "sequence": "MKV"}},
            {"protein": {"id": "B", "sequence": "MKV"}}
        ],
        "modelSeeds": [1, 2, 3]
    })");
    EXPECT_EQ(v.at("name").asString(), "2PV7");
    EXPECT_EQ(v.at("sequences").size(), 2u);
    EXPECT_EQ(v.at("sequences").at(0).at("protein").at("id").asString(),
              "A");
    EXPECT_EQ(v.at("modelSeeds").at(2).asInt(), 3);
}

TEST(Json, ParsesEscapes)
{
    const auto v = parseJson(R"("a\nb\t\"q\" \\ A")");
    EXPECT_EQ(v.asString(), "a\nb\t\"q\" \\ A");
}

TEST(Json, ParsesUnicodeEscapeToUtf8)
{
    const auto v = parseJson(R"("é")");
    EXPECT_EQ(v.asString(), "\xc3\xa9");
}

TEST(Json, RoundTripsThroughDump)
{
    const std::string doc =
        R"({"a":[1,2.5,true,null,"x"],"b":{"c":-3},"d":""})";
    const auto v = parseJson(doc);
    const auto v2 = parseJson(v.dump());
    EXPECT_TRUE(v == v2);
}

TEST(Json, PrettyDumpParsesBack)
{
    const auto v = parseJson(R"({"k":[{"a":1},{"b":[2,3]}]})");
    const auto v2 = parseJson(v.dumpPretty());
    EXPECT_TRUE(v == v2);
}

TEST(Json, RejectsMalformedInput)
{
    EXPECT_THROW(parseJson(""), FatalError);
    EXPECT_THROW(parseJson("{"), FatalError);
    EXPECT_THROW(parseJson("[1,]"), FatalError);
    EXPECT_THROW(parseJson("{\"a\" 1}"), FatalError);
    EXPECT_THROW(parseJson("tru"), FatalError);
    EXPECT_THROW(parseJson("\"unterminated"), FatalError);
    EXPECT_THROW(parseJson("1 2"), FatalError);
    EXPECT_THROW(parseJson("\"bad\x01ctl\""), FatalError);
}

TEST(Json, TypeMismatchIsFatal)
{
    const auto v = parseJson("[1]");
    EXPECT_THROW(v.asObject(), FatalError);
    EXPECT_THROW(v.at("x"), FatalError);
    EXPECT_THROW(v.at(5), FatalError);
}

TEST(Json, GetWithFallback)
{
    const auto v = parseJson(R"({"a":1})");
    const JsonValue dflt(99);
    EXPECT_EQ(v.get("a", dflt).asInt(), 1);
    EXPECT_EQ(v.get("zz", dflt).asInt(), 99);
}

TEST(Json, BuildsDocumentsProgrammatically)
{
    auto obj = JsonValue::makeObject();
    obj["name"] = JsonValue("promo");
    auto arr = JsonValue::makeArray();
    arr.push(JsonValue(1));
    arr.push(JsonValue(2));
    obj["seeds"] = arr;
    const auto round = parseJson(obj.dump());
    EXPECT_EQ(round.at("name").asString(), "promo");
    EXPECT_EQ(round.at("seeds").size(), 2u);
}

TEST(Json, IntegersSerializeWithoutDecimalPoint)
{
    EXPECT_EQ(JsonValue(42).dump(), "42");
    EXPECT_EQ(JsonValue(-7).dump(), "-7");
    EXPECT_EQ(JsonValue(2.5).dump(), "2.5");
}

} // namespace
} // namespace afsb
