/**
 * @file
 * Unit tests for the JSON parser and writer.
 */

#include <gtest/gtest.h>

#include "util/json.hh"
#include "util/logging.hh"

namespace afsb {
namespace {

TEST(Json, ParsesScalars)
{
    EXPECT_TRUE(parseJson("null").isNull());
    EXPECT_TRUE(parseJson("true").asBool());
    EXPECT_FALSE(parseJson("false").asBool());
    EXPECT_DOUBLE_EQ(parseJson("3.5").asNumber(), 3.5);
    EXPECT_DOUBLE_EQ(parseJson("-42").asNumber(), -42.0);
    EXPECT_DOUBLE_EQ(parseJson("1e3").asNumber(), 1000.0);
    EXPECT_EQ(parseJson("\"hi\"").asString(), "hi");
}

TEST(Json, ParsesNestedStructure)
{
    const auto v = parseJson(R"({
        "name": "2PV7",
        "sequences": [
            {"protein": {"id": "A", "sequence": "MKV"}},
            {"protein": {"id": "B", "sequence": "MKV"}}
        ],
        "modelSeeds": [1, 2, 3]
    })");
    EXPECT_EQ(v.at("name").asString(), "2PV7");
    EXPECT_EQ(v.at("sequences").size(), 2u);
    EXPECT_EQ(v.at("sequences").at(0).at("protein").at("id").asString(),
              "A");
    EXPECT_EQ(v.at("modelSeeds").at(2).asInt(), 3);
}

TEST(Json, ParsesEscapes)
{
    const auto v = parseJson(R"("a\nb\t\"q\" \\ A")");
    EXPECT_EQ(v.asString(), "a\nb\t\"q\" \\ A");
}

TEST(Json, ParsesUnicodeEscapeToUtf8)
{
    const auto v = parseJson(R"("é")");
    EXPECT_EQ(v.asString(), "\xc3\xa9");
}

TEST(Json, UnicodeEscapesCoverAllUtf8Widths)
{
    // 1-byte (ASCII), 2-byte (é), and 3-byte (snowman) code points.
    EXPECT_EQ(parseJson(R"("A")").asString(), "A");
    EXPECT_EQ(parseJson(R"("é")").asString(), "\xc3\xa9");
    EXPECT_EQ(parseJson(R"("☃")").asString(),
              "\xe2\x98\x83");
    // Hex digits are case-insensitive.
    EXPECT_EQ(parseJson(R"("é")").asString(), "\xc3\xa9");
    // Escaped and adjacent literal text compose.
    EXPECT_EQ(parseJson(R"("a☃b")").asString(),
              "a\xe2\x98\x83" "b");
}

TEST(Json, RejectsMalformedUnicodeEscapes)
{
    EXPECT_THROW(parseJson(R"("\u12")"), FatalError);   // short
    EXPECT_THROW(parseJson(R"("\u12g4")"), FatalError); // non-hex
    EXPECT_THROW(parseJson(R"("\u")"), FatalError);     // empty
    EXPECT_THROW(parseJson("\"\\u123"), FatalError);    // truncated
}

TEST(Json, RoundTripsThroughDump)
{
    const std::string doc =
        R"({"a":[1,2.5,true,null,"x"],"b":{"c":-3},"d":""})";
    const auto v = parseJson(doc);
    const auto v2 = parseJson(v.dump());
    EXPECT_TRUE(v == v2);
}

TEST(Json, PrettyDumpParsesBack)
{
    const auto v = parseJson(R"({"k":[{"a":1},{"b":[2,3]}]})");
    const auto v2 = parseJson(v.dumpPretty());
    EXPECT_TRUE(v == v2);
}

TEST(Json, RejectsMalformedInput)
{
    EXPECT_THROW(parseJson(""), FatalError);
    EXPECT_THROW(parseJson("{"), FatalError);
    EXPECT_THROW(parseJson("[1,]"), FatalError);
    EXPECT_THROW(parseJson("{\"a\" 1}"), FatalError);
    EXPECT_THROW(parseJson("tru"), FatalError);
    EXPECT_THROW(parseJson("\"unterminated"), FatalError);
    EXPECT_THROW(parseJson("1 2"), FatalError);
    EXPECT_THROW(parseJson("\"bad\x01ctl\""), FatalError);
}

TEST(Json, TypeMismatchIsFatal)
{
    const auto v = parseJson("[1]");
    EXPECT_THROW(v.asObject(), FatalError);
    EXPECT_THROW(v.at("x"), FatalError);
    EXPECT_THROW(v.at(5), FatalError);
}

TEST(Json, GetWithFallback)
{
    const auto v = parseJson(R"({"a":1})");
    const JsonValue dflt(99);
    EXPECT_EQ(v.get("a", dflt).asInt(), 1);
    EXPECT_EQ(v.get("zz", dflt).asInt(), 99);
}

TEST(Json, BuildsDocumentsProgrammatically)
{
    auto obj = JsonValue::makeObject();
    obj["name"] = JsonValue("promo");
    auto arr = JsonValue::makeArray();
    arr.push(JsonValue(1));
    arr.push(JsonValue(2));
    obj["seeds"] = arr;
    const auto round = parseJson(obj.dump());
    EXPECT_EQ(round.at("name").asString(), "promo");
    EXPECT_EQ(round.at("seeds").size(), 2u);
}

TEST(Json, BenchSchemaRoundTrips)
{
    // The `{"benchmarks": [{"name", "ns_per_op", "counters"}]}`
    // shape every bench --json writer emits and tools/bench_check
    // consumes, including a trend-file wrapper around it.
    auto rec = JsonValue::makeObject();
    rec["name"] = JsonValue("ServeCluster/pools:4x2");
    rec["iterations"] = JsonValue(static_cast<int64_t>(1));
    rec["ns_per_op"] = JsonValue(10176672090570.549);
    auto counters = JsonValue::makeObject();
    counters["completed"] = JsonValue(static_cast<uint64_t>(68));
    counters["cache_hit_rate"] = JsonValue(0.30882352941176472);
    rec["counters"] = counters;
    auto benches = JsonValue::makeArray();
    benches.push(rec);
    auto doc = JsonValue::makeObject();
    doc["benchmarks"] = benches;

    auto entry = JsonValue::makeObject();
    entry["label"] = JsonValue("seed");
    entry["benchmarks"] = doc.at("benchmarks");
    auto entries = JsonValue::makeArray();
    entries.push(entry);
    auto trend = JsonValue::makeObject();
    trend["entries"] = entries;

    for (const JsonValue *v : {&doc, &trend}) {
        const auto compact = parseJson(v->dump());
        const auto pretty = parseJson(v->dumpPretty());
        EXPECT_TRUE(compact == *v);
        EXPECT_TRUE(pretty == *v);
    }
    const auto back = parseJson(trend.dump());
    const auto &b =
        back.at("entries").at(0).at("benchmarks").at(0);
    EXPECT_EQ(b.at("name").asString(), "ServeCluster/pools:4x2");
    // Doubles survive the writer's round-trip-precision format.
    EXPECT_DOUBLE_EQ(b.at("ns_per_op").asNumber(),
                     10176672090570.549);
    EXPECT_DOUBLE_EQ(
        b.at("counters").at("cache_hit_rate").asNumber(),
        0.30882352941176472);
}

TEST(Json, IntegersSerializeWithoutDecimalPoint)
{
    EXPECT_EQ(JsonValue(42).dump(), "42");
    EXPECT_EQ(JsonValue(-7).dump(), "-7");
    EXPECT_EQ(JsonValue(2.5).dump(), "2.5");
}

} // namespace
} // namespace afsb
