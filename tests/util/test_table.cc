/**
 * @file
 * Unit tests for TextTable and CsvWriter.
 */

#include <gtest/gtest.h>

#include "util/csv.hh"
#include "util/table.hh"

namespace afsb {
namespace {

TEST(TextTable, AlignsColumns)
{
    TextTable t;
    t.setHeader({"Sample", "Len"});
    t.addRow({"2PV7", "484"});
    t.addRow({"promo", "857"});
    const auto out = t.render();
    EXPECT_NE(out.find("Sample | Len"), std::string::npos);
    EXPECT_NE(out.find("2PV7   | 484"), std::string::npos);
    EXPECT_NE(out.find("promo  | 857"), std::string::npos);
}

TEST(TextTable, TitleAndSeparators)
{
    TextTable t("TABLE II");
    t.setHeader({"a"});
    t.addRow({"1"});
    t.addSeparator();
    t.addRow({"2"});
    const auto out = t.render();
    EXPECT_EQ(out.rfind("TABLE II", 0), 0u);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(TextTable, RaggedRowsArePadded)
{
    TextTable t;
    t.setHeader({"a", "b", "c"});
    t.addRow({"1"});
    EXPECT_NO_THROW(t.render());
}

TEST(Csv, QuotesSpecialFields)
{
    CsvWriter w;
    w.setHeader({"name", "note"});
    w.addRow({"x,y", "say \"hi\""});
    w.addRow({"plain", "line\nbreak"});
    const auto out = w.render();
    EXPECT_NE(out.find("\"x,y\""), std::string::npos);
    EXPECT_NE(out.find("\"say \"\"hi\"\"\""), std::string::npos);
    EXPECT_NE(out.find("\"line\nbreak\""), std::string::npos);
    EXPECT_EQ(w.rowCount(), 2u);
}

TEST(Csv, PlainFieldsUnquoted)
{
    CsvWriter w;
    w.addRow({"a", "b"});
    EXPECT_EQ(w.render(), "a,b\n");
}

} // namespace
} // namespace afsb
