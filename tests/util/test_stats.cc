/**
 * @file
 * Unit tests for the statistics helpers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/histogram.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace afsb {
namespace {

TEST(RunningStats, BasicMoments)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, CvMatchesDefinition)
{
    RunningStats s;
    s.add(10.0);
    s.add(12.0);
    s.add(8.0);
    EXPECT_NEAR(s.cv(), s.stddev() / s.mean(), 1e-12);
}

TEST(RunningStats, EmptyIsSafe)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.cv(), 0.0);
}

TEST(RunningStats, MergeEqualsCombinedStream)
{
    RunningStats a, b, all;
    for (int i = 0; i < 50; ++i) {
        const double x = 0.37 * i - 3.0;
        (i % 2 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Stats, MeanMedianGeomean)
{
    EXPECT_DOUBLE_EQ(meanOf({1, 2, 3, 4}), 2.5);
    EXPECT_DOUBLE_EQ(medianOf({5, 1, 3}), 3.0);
    EXPECT_DOUBLE_EQ(medianOf({4, 1, 3, 2}), 2.5);
    EXPECT_NEAR(geomean({1.0, 8.0}), std::sqrt(8.0), 1e-12);
    EXPECT_THROW(geomean({1.0, 0.0}), FatalError);
}

TEST(Percentile, LinearInterpolationMatchesHandValues)
{
    std::vector<double> xs;
    for (int i = 1; i <= 100; ++i)
        xs.push_back(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 100.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 50.5);
    EXPECT_NEAR(percentile(xs, 95.0), 95.05, 1e-12);
    EXPECT_NEAR(percentile(xs, 99.0), 99.01, 1e-12);
}

TEST(Percentile, InputOrderDoesNotMatter)
{
    const std::vector<double> shuffled = {7, 1, 9, 3, 5};
    const std::vector<double> sorted = {1, 3, 5, 7, 9};
    for (double p : {0.0, 25.0, 50.0, 90.0, 100.0})
        EXPECT_DOUBLE_EQ(percentile(shuffled, p),
                         percentile(sorted, p));
}

TEST(Percentile, EdgeCases)
{
    const std::vector<double> empty;
    const std::vector<double> one = {42.0};
    EXPECT_DOUBLE_EQ(percentile(empty, 50.0), 0.0);
    EXPECT_DOUBLE_EQ(percentile(one, 1.0), 42.0);
    EXPECT_DOUBLE_EQ(percentile(one, 99.0), 42.0);
    EXPECT_THROW(percentile(one, -1.0), FatalError);
    EXPECT_THROW(percentile(one, 100.5), FatalError);
}

TEST(Percentile, PercentilesOfBundlesAllThree)
{
    std::vector<double> xs;
    for (int i = 1; i <= 1000; ++i)
        xs.push_back(static_cast<double>(i));
    const auto p = percentilesOf(xs);
    EXPECT_DOUBLE_EQ(p.p50, percentile(xs, 50.0));
    EXPECT_DOUBLE_EQ(p.p95, percentile(xs, 95.0));
    EXPECT_DOUBLE_EQ(p.p99, percentile(xs, 99.0));
    EXPECT_LT(p.p50, p.p95);
    EXPECT_LT(p.p95, p.p99);
}

TEST(Stats, SpeedupSeries)
{
    const auto s = speedupSeries({100.0, 50.0, 25.0, 30.0});
    ASSERT_EQ(s.size(), 4u);
    EXPECT_DOUBLE_EQ(s[0], 1.0);
    EXPECT_DOUBLE_EQ(s[1], 2.0);
    EXPECT_DOUBLE_EQ(s[2], 4.0);
    EXPECT_NEAR(s[3], 100.0 / 30.0, 1e-12);
}

TEST(Stats, EfficiencySeries)
{
    const auto e = efficiencySeries({100.0, 55.0, 30.0},
                                    {1, 2, 4});
    ASSERT_EQ(e.size(), 3u);
    EXPECT_DOUBLE_EQ(e[0], 1.0);
    EXPECT_NEAR(e[1], (100.0 / 55.0) / 2.0, 1e-12);
    EXPECT_NEAR(e[2], (100.0 / 30.0) / 4.0, 1e-12);
    EXPECT_THROW(efficiencySeries({1.0}, {1, 2}), FatalError);
}

TEST(Histogram, CountsAndQuantiles)
{
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 100; ++i)
        h.add(static_cast<double>(i % 10) + 0.5);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    for (size_t b = 0; b < 10; ++b)
        EXPECT_EQ(h.bucketCount(b), 10u);
    EXPECT_NEAR(h.mean(), 5.0, 1e-12);
    EXPECT_NEAR(h.quantile(0.5), 5.5, 1.0);
}

TEST(Histogram, OutOfRangeGoesToOverflowBins)
{
    Histogram h(0.0, 1.0, 4);
    h.add(-5.0);
    h.add(2.0);
    h.add(0.5);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.count(), 3u);
}

} // namespace
} // namespace afsb
