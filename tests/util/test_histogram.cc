/**
 * @file
 * Unit tests for the fixed-bucket histogram.
 */

#include <gtest/gtest.h>

#include "util/histogram.hh"

namespace afsb {
namespace {

TEST(Histogram, BucketsSamplesByValue)
{
    Histogram h(0.0, 10.0, 5); // width 2
    h.add(0.0);
    h.add(1.9);
    h.add(2.0);
    h.add(9.9);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.buckets(), 5u);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(4), 1u);
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, OutOfRangeGoesToOverflowBins)
{
    Histogram h(0.0, 10.0, 5);
    h.add(-0.1);
    h.add(10.0); // upper bound is exclusive
    h.add(1e9);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    for (size_t i = 0; i < h.buckets(); ++i)
        EXPECT_EQ(h.bucketCount(i), 0u);
}

TEST(Histogram, BucketEdgesAreLinear)
{
    Histogram h(10.0, 20.0, 4);
    EXPECT_DOUBLE_EQ(h.bucketLo(0), 10.0);
    EXPECT_DOUBLE_EQ(h.bucketLo(1), 12.5);
    EXPECT_DOUBLE_EQ(h.bucketLo(3), 17.5);
}

TEST(Histogram, MeanIsExactOverAllSamples)
{
    Histogram h(0.0, 100.0, 10);
    h.add(10.0);
    h.add(20.0);
    h.add(1000.0); // overflow still contributes to the mean
    EXPECT_NEAR(h.mean(), (10.0 + 20.0 + 1000.0) / 3.0, 1e-12);
}

TEST(Histogram, QuantileApproximatesFromMidpoints)
{
    Histogram h(0.0, 100.0, 100); // width-1 buckets
    for (int i = 0; i < 100; ++i)
        h.add(static_cast<double>(i));
    // Midpoint resolution is +-0.5 with width-1 buckets.
    EXPECT_NEAR(h.quantile(0.5), 50.0, 1.0);
    EXPECT_NEAR(h.quantile(0.99), 99.0, 1.0);
    EXPECT_NEAR(h.quantile(0.0), 0.5, 1.0);
}

TEST(Histogram, EmptyHistogramIsSafe)
{
    Histogram h(0.0, 1.0, 4);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
    EXPECT_FALSE(h.summary().empty());
}

TEST(Histogram, SummaryMentionsCount)
{
    Histogram h(0.0, 10.0, 5);
    h.add(5.0);
    h.add(5.0);
    const std::string s = h.summary();
    EXPECT_NE(s.find("2"), std::string::npos);
}

} // namespace
} // namespace afsb
