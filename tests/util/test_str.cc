/**
 * @file
 * Unit tests for string and unit-formatting helpers.
 */

#include <gtest/gtest.h>

#include "util/str.hh"
#include "util/units.hh"

namespace afsb {
namespace {

TEST(Str, Format)
{
    EXPECT_EQ(strformat("%d-%s", 7, "x"), "7-x");
    EXPECT_EQ(strformat("%.2f", 1.234), "1.23");
    EXPECT_EQ(strformat("empty"), "empty");
}

TEST(Str, Split)
{
    const auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(parts[3], "c");
    EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(Str, TrimAndCase)
{
    EXPECT_EQ(trim("  hi \t\n"), "hi");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(toLower("AbC1"), "abc1");
}

TEST(Str, PrefixSuffix)
{
    EXPECT_TRUE(startsWith("promo.json", "promo"));
    EXPECT_FALSE(startsWith("a", "ab"));
    EXPECT_TRUE(endsWith("promo.json", ".json"));
    EXPECT_FALSE(endsWith("x", "xy"));
}

TEST(Str, JoinRepeatPad)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ","), "");
    EXPECT_EQ(repeat("ab", 3), "ababab");
    EXPECT_EQ(padLeft("7", 3), "  7");
    EXPECT_EQ(padRight("7", 3), "7  ");
    EXPECT_EQ(padLeft("1234", 3), "1234");
}

TEST(Units, FormatBytes)
{
    EXPECT_EQ(formatBytes(uint64_t{512}), "512 B");
    EXPECT_EQ(formatBytes(uint64_t{2048}), "2.00 KiB");
    EXPECT_EQ(formatBytes(79.3 * static_cast<double>(GiB)), "79.30 GiB");
    EXPECT_EQ(formatBytes(1.5 * static_cast<double>(TiB)), "1.50 TiB");
}

TEST(Units, FormatSeconds)
{
    EXPECT_EQ(formatSeconds(0.0035), "3.50 ms");
    EXPECT_EQ(formatSeconds(2.0), "2.00 s");
    EXPECT_EQ(formatSeconds(222.0), "3m42s");
    EXPECT_EQ(formatSeconds(4.2e-7), "420.0 ns");
}

TEST(Units, FormatRate)
{
    EXPECT_EQ(formatRate(3.1e9), "3.10 GB/s");
    EXPECT_EQ(formatRate(2.5e6), "2.50 MB/s");
}

} // namespace
} // namespace afsb
