/**
 * @file
 * Unit tests for the shared grain-size policy.
 */

#include <gtest/gtest.h>

#include "util/grain.hh"

namespace afsb {
namespace {

TEST(Grain, ForFlopsMatchesBudget)
{
    // Cheap units pack many iterations per task...
    EXPECT_EQ(grain::forFlops(1), grain::kFlopsPerTask);
    EXPECT_EQ(grain::forFlops(1024), grain::kFlopsPerTask / 1024);
    // ...expensive units degrade to one iteration, never zero.
    EXPECT_EQ(grain::forFlops(grain::kFlopsPerTask), 1u);
    EXPECT_EQ(grain::forFlops(grain::kFlopsPerTask * 10), 1u);
    EXPECT_EQ(grain::forFlops(0), grain::kFlopsPerTask);
}

TEST(Grain, ForFlopsIsWorkerCountIndependent)
{
    // The determinism contract: the same problem yields the same
    // grain no matter what pool executes it.  forFlops takes no
    // worker count at all; this pins the per-flop values so a future
    // "scale by pool size" change has to break a test.
    EXPECT_EQ(grain::forFlops(2 * 64 * 64), 32u);
    EXPECT_EQ(grain::forFlops(2 * 128 * 128), 8u);
}

TEST(Grain, ForFlopsAlignedRoundsUp)
{
    // Alignment preserves the 2-row GEMM pairing: blocks must never
    // split an even/odd row pair.
    EXPECT_EQ(grain::forFlopsAligned(grain::kFlopsPerTask, 2), 2u);
    EXPECT_EQ(grain::forFlopsAligned(1 << 17, 2), 2u);
    EXPECT_EQ(grain::forFlopsAligned(100, 2) % 2, 0u);
    EXPECT_EQ(grain::forFlopsAligned(1000, 16) % 16, 0u);
    // Already-aligned grains pass through unchanged.
    EXPECT_EQ(grain::forFlopsAligned(1 << 16, 2), 4u);
}

TEST(Grain, ForScanTargetsEightBlocksPerWorker)
{
    EXPECT_EQ(grain::forScan(800, 4), 25u);
    EXPECT_EQ(grain::forScan(64, 8), 1u);
    // Small scans never produce a zero grain.
    EXPECT_EQ(grain::forScan(3, 8), 1u);
    EXPECT_EQ(grain::forScan(0, 4), 1u);
    // Zero workers is promoted rather than dividing by zero.
    EXPECT_EQ(grain::forScan(80, 0), 10u);
}

} // namespace
} // namespace afsb
