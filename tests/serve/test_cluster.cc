/**
 * @file
 * End-to-end tests for the serving-cluster simulation.
 *
 * All tests share one small 2PV7-only workload so the per-sample MSA
 * characterization run (the only expensive part) happens on a single
 * cheap sample; the event loop itself is effectively free.
 */

#include <gtest/gtest.h>

#include "core/workspace.hh"
#include "serve/cluster.hh"
#include "serve/report.hh"

namespace afsb::serve {
namespace {

/** Cheap config: few threads, coarse trace, one jackhmmer pass. */
ClusterConfig
fastConfig()
{
    ClusterConfig cfg;
    cfg.msaWorkers = 2;
    cfg.gpuWorkers = 1;
    cfg.msaThreadsPerWorker = 2;
    cfg.msaOptions.traceStride = 16;
    cfg.msaOptions.jackhmmerIterations = 1;
    return cfg;
}

std::vector<Request>
smallWorkload(uint32_t variants = 2)
{
    WorkloadSpec spec;
    spec.requestsPerSecond = 0.02;
    spec.durationSeconds = 6000.0;
    spec.seed = 777;
    spec.mix = parseMix("2PV7");
    spec.variantsPerSample = variants;
    return generateRequests(spec);
}

TEST(Cluster, LatencyDecomposesAndTimestampsAreMonotonic)
{
    const auto requests = smallWorkload();
    const auto result =
        simulateCluster(sys::serverPlatform(),
                        core::Workspace::shared(), requests,
                        fastConfig());
    ASSERT_EQ(result.records.size(), requests.size());
    EXPECT_GT(result.completed, 0u);
    for (const auto &rec : result.records) {
        if (rec.outcome != Outcome::Completed)
            continue;
        EXPECT_GE(rec.msaStartSeconds,
                  rec.request.arrivalSeconds - 1e-9);
        EXPECT_GE(rec.msaEndSeconds, rec.msaStartSeconds);
        EXPECT_GE(rec.gpuStartSeconds, rec.msaEndSeconds - 1e-9);
        EXPECT_GT(rec.finishSeconds, rec.gpuStartSeconds);
        EXPECT_NEAR(rec.latencySeconds(),
                    rec.queueSeconds() + rec.serviceSeconds(),
                    1e-9);
        EXPECT_GE(rec.queueSeconds(), -1e-9);
        EXPECT_GT(rec.serviceSeconds(), 0.0);
    }
}

TEST(Cluster, SameInputsAreBitIdentical)
{
    const auto requests = smallWorkload();
    const auto a = simulateCluster(sys::serverPlatform(),
                                   core::Workspace::shared(),
                                   requests, fastConfig());
    const auto b = simulateCluster(sys::serverPlatform(),
                                   core::Workspace::shared(),
                                   requests, fastConfig());
    ASSERT_EQ(a.records.size(), b.records.size());
    EXPECT_EQ(a.makespanSeconds, b.makespanSeconds);
    for (size_t i = 0; i < a.records.size(); ++i) {
        EXPECT_EQ(a.records[i].outcome, b.records[i].outcome);
        EXPECT_EQ(a.records[i].msaCacheHit,
                  b.records[i].msaCacheHit);
        EXPECT_EQ(a.records[i].msaStartSeconds,
                  b.records[i].msaStartSeconds);
        EXPECT_EQ(a.records[i].finishSeconds,
                  b.records[i].finishSeconds);
    }
}

TEST(Cluster, MsaCacheCutsLatencyOnRepeatedQueries)
{
    // One distinct query per sample: every arrival after the first
    // is a repeat, so the cache should absorb the MSA stage.
    const auto requests = smallWorkload(1);
    ASSERT_GT(requests.size(), 2u);

    auto cached = fastConfig();
    cached.msaCacheBudgetBytes = 512ull << 20;
    auto uncached = fastConfig();
    uncached.msaCacheBudgetBytes = 0;

    const auto warm = simulateCluster(sys::serverPlatform(),
                                      core::Workspace::shared(),
                                      requests, cached);
    const auto cold = simulateCluster(sys::serverPlatform(),
                                      core::Workspace::shared(),
                                      requests, uncached);

    EXPECT_GT(warm.cacheStats.hits, 0u);
    EXPECT_EQ(cold.cacheStats.hits, 0u);
    EXPECT_GE(warm.completed, cold.completed);

    const auto meanLatency = [](const ClusterResult &r) {
        double sum = 0.0;
        for (double x : r.completedLatencies())
            sum += x;
        return sum / static_cast<double>(
                         r.completedLatencies().size());
    };
    EXPECT_LT(meanLatency(warm), meanLatency(cold));
}

TEST(Cluster, AccountingIsConsistent)
{
    const auto requests = smallWorkload();
    const auto result =
        simulateCluster(sys::serverPlatform(),
                        core::Workspace::shared(), requests,
                        fastConfig());
    EXPECT_EQ(result.offered, requests.size());
    EXPECT_EQ(result.completed + result.shed, result.offered);
    EXPECT_GE(result.msaUtilization(), 0.0);
    EXPECT_LE(result.msaUtilization(), 1.0 + 1e-9);
    EXPECT_GE(result.gpuUtilization(), 0.0);
    EXPECT_LE(result.gpuUtilization(), 1.0 + 1e-9);
    EXPECT_EQ(result.completedLatencies().size(),
              result.completed);
    for (const auto &rec : result.records) {
        if (rec.outcome == Outcome::Completed) {
            EXPECT_LE(rec.finishSeconds,
                      result.makespanSeconds + 1e-9);
        }
    }
    EXPECT_EQ(result.msaSecondsBySample.size(), 1u);
    EXPECT_GT(result.msaSecondsBySample.at("2PV7"), 0.0);
}

TEST(Cluster, TinyAdmissionCapacitySheds)
{
    const auto requests = smallWorkload();
    ASSERT_GT(requests.size(), 1u);
    auto cfg = fastConfig();
    cfg.admissionCapacity = 1;
    const auto result =
        simulateCluster(sys::serverPlatform(),
                        core::Workspace::shared(), requests, cfg);
    EXPECT_GT(result.shed, 0u);
    EXPECT_GT(result.completed, 0u);
    EXPECT_LE(result.maxInSystem, 1u);
    for (const auto &rec : result.records) {
        if (rec.outcome == Outcome::Shed) {
            EXPECT_EQ(rec.finishSeconds,
                      rec.request.arrivalSeconds);
        }
    }
}

TEST(Cluster, SimilarityTierServesNearDuplicates)
{
    // Near-duplicate traffic (1% point mutation) always misses the
    // exact content-addressed cache; only the similarity tier can
    // recover it as delta re-searches.
    WorkloadSpec spec;
    spec.requestsPerSecond = 0.02;
    spec.durationSeconds = 6000.0;
    spec.seed = 777;
    spec.mix = parseMix("2PV7");
    spec.variantsPerSample = 1;
    spec.mutationRate = 0.01;
    const auto requests = generateRequests(spec);
    ASSERT_GT(requests.size(), 3u);

    auto sim = fastConfig();
    sim.msaCacheBudgetBytes = 512ull << 20;
    sim.simCacheThreshold = 0.6;
    auto exact = fastConfig();
    exact.msaCacheBudgetBytes = 512ull << 20;

    const auto a = simulateCluster(sys::serverPlatform(),
                                   core::Workspace::shared(),
                                   requests, sim);
    const auto b = simulateCluster(sys::serverPlatform(),
                                   core::Workspace::shared(),
                                   requests, exact);

    EXPECT_TRUE(a.simCacheEnabled);
    EXPECT_GT(a.approxHits, 0u);
    EXPECT_GT(a.deltaSecondsSaved, 0.0);
    bool sawApproxRecord = false;
    for (const auto &rec : a.records)
        sawApproxRecord |= rec.approxHit;
    EXPECT_TRUE(sawApproxRecord);

    // The exact-only run misses everything after the first arrival.
    EXPECT_FALSE(b.simCacheEnabled);
    EXPECT_EQ(b.approxHits, 0u);
    EXPECT_EQ(b.cacheStats.hits, 0u);
}

TEST(Cluster, SimilarityTierOffIsByteIdenticalToBaseline)
{
    // simCacheThreshold 0 must leave the simulator — and its
    // canonical report — exactly as the pre-similarity code.
    const auto requests = smallWorkload();
    auto off = fastConfig();
    off.simCacheThreshold = 0.0;
    const auto a = simulateCluster(sys::serverPlatform(),
                                   core::Workspace::shared(),
                                   requests, off);
    const auto b = simulateCluster(sys::serverPlatform(),
                                   core::Workspace::shared(),
                                   requests, fastConfig());
    EXPECT_FALSE(a.simCacheEnabled);
    const auto textA = canonicalSloText(buildSloReport(a));
    EXPECT_EQ(textA, canonicalSloText(buildSloReport(b)));
    EXPECT_EQ(textA.find("sim_cache_threshold"), std::string::npos);
}

TEST(Cluster, SjfPolicyCompletesSameRequestSet)
{
    const auto requests = smallWorkload();
    auto cfg = fastConfig();
    cfg.policy = SchedPolicy::Sjf;
    const auto result =
        simulateCluster(sys::serverPlatform(),
                        core::Workspace::shared(), requests, cfg);
    EXPECT_EQ(result.completed + result.shed, result.offered);
    EXPECT_GT(result.completed, 0u);
}

} // namespace
} // namespace afsb::serve
