/**
 * @file
 * Tests for admission control and dispatch-queue policies.
 */

#include <gtest/gtest.h>

#include "serve/scheduler.hh"
#include "util/logging.hh"

namespace afsb::serve {
namespace {

Request
req(uint64_t id, size_t tokens)
{
    Request r;
    r.id = id;
    r.tokens = tokens;
    return r;
}

TEST(Scheduler, FifoPopsInArrivalOrder)
{
    DispatchQueue q(SchedPolicy::Fifo);
    q.push(req(0, 900));
    q.push(req(1, 100));
    q.push(req(2, 500));
    EXPECT_EQ(q.pop().id, 0u);
    EXPECT_EQ(q.pop().id, 1u);
    EXPECT_EQ(q.pop().id, 2u);
    EXPECT_TRUE(q.empty());
}

TEST(Scheduler, SjfPopsShortestFirstTiesById)
{
    DispatchQueue q(SchedPolicy::Sjf);
    q.push(req(0, 900));
    q.push(req(1, 100));
    q.push(req(2, 100));
    q.push(req(3, 500));
    EXPECT_EQ(q.pop().id, 1u); // shortest, earliest id wins the tie
    EXPECT_EQ(q.pop().id, 2u);
    EXPECT_EQ(q.pop().id, 3u);
    EXPECT_EQ(q.pop().id, 0u);
}

TEST(Scheduler, TracksMaxDepth)
{
    DispatchQueue q(SchedPolicy::Fifo);
    q.push(req(0, 1));
    q.push(req(1, 1));
    q.pop();
    q.push(req(2, 1));
    EXPECT_EQ(q.maxDepth(), 2u);
    EXPECT_EQ(q.depth(), 2u);
}

TEST(Scheduler, PopOnEmptyIsFatal)
{
    DispatchQueue q(SchedPolicy::Fifo);
    EXPECT_THROW(q.pop(), FatalError);
}

TEST(Scheduler, PolicyNamesRoundTrip)
{
    EXPECT_EQ(policyByName("fifo"), SchedPolicy::Fifo);
    EXPECT_EQ(policyByName("sjf"), SchedPolicy::Sjf);
    EXPECT_STREQ(policyName(SchedPolicy::Fifo), "fifo");
    EXPECT_STREQ(policyName(SchedPolicy::Sjf), "sjf");
    EXPECT_THROW(policyByName("lifo"), FatalError);
}

TEST(Admission, ShedsBeyondCapacityUntilReleases)
{
    AdmissionController adm(2);
    EXPECT_TRUE(adm.tryAdmit());
    EXPECT_TRUE(adm.tryAdmit());
    EXPECT_FALSE(adm.tryAdmit());
    EXPECT_EQ(adm.shedCount(), 1u);
    EXPECT_EQ(adm.inSystem(), 2u);
    adm.release();
    EXPECT_TRUE(adm.tryAdmit());
    EXPECT_EQ(adm.maxInSystem(), 2u);
    EXPECT_EQ(adm.capacity(), 2u);
}

} // namespace
} // namespace afsb::serve
