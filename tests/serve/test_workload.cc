/**
 * @file
 * Tests for the open-loop workload generator.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "bio/samples.hh"
#include "serve/workload.hh"
#include "util/logging.hh"

namespace afsb::serve {
namespace {

WorkloadSpec
smallSpec()
{
    WorkloadSpec spec;
    spec.requestsPerSecond = 0.1;
    spec.durationSeconds = 2000.0;
    spec.seed = 1234;
    return spec;
}

TEST(Workload, SameSeedIsBitIdentical)
{
    const auto a = generateRequests(smallSpec());
    const auto b = generateRequests(smallSpec());
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id);
        EXPECT_EQ(a[i].sample, b[i].sample);
        EXPECT_EQ(a[i].variant, b[i].variant);
        EXPECT_EQ(a[i].tokens, b[i].tokens);
        EXPECT_EQ(a[i].contentHash, b[i].contentHash);
        EXPECT_DOUBLE_EQ(a[i].arrivalSeconds, b[i].arrivalSeconds);
    }
}

TEST(Workload, DifferentSeedsDiffer)
{
    auto spec = smallSpec();
    const auto a = generateRequests(spec);
    spec.seed = 4321;
    const auto b = generateRequests(spec);
    ASSERT_FALSE(a.empty());
    ASSERT_FALSE(b.empty());
    // Arrival processes from independent seeds should not coincide.
    bool differs = a.size() != b.size();
    for (size_t i = 0; !differs && i < a.size(); ++i)
        differs = a[i].arrivalSeconds != b[i].arrivalSeconds;
    EXPECT_TRUE(differs);
}

TEST(Workload, PoissonRateIsApproximatelyHonored)
{
    WorkloadSpec spec;
    spec.requestsPerSecond = 0.5;
    spec.durationSeconds = 10000.0;
    spec.seed = 99;
    const auto requests = generateRequests(spec);
    const double expected =
        spec.requestsPerSecond * spec.durationSeconds;
    // 5000 expected arrivals; +-5 sigma ~= +-354.
    EXPECT_NEAR(static_cast<double>(requests.size()), expected,
                5.0 * std::sqrt(expected));
}

TEST(Workload, ArrivalsSortedWithinWindowAndIdsSequential)
{
    const auto requests = generateRequests(smallSpec());
    ASSERT_FALSE(requests.empty());
    for (size_t i = 0; i < requests.size(); ++i) {
        EXPECT_EQ(requests[i].id, i);
        EXPECT_GE(requests[i].arrivalSeconds, 0.0);
        EXPECT_LT(requests[i].arrivalSeconds,
                  smallSpec().durationSeconds);
        if (i > 0) {
            EXPECT_GE(requests[i].arrivalSeconds,
                      requests[i - 1].arrivalSeconds);
        }
        EXPECT_GT(requests[i].tokens, 0u);
    }
}

TEST(Workload, MixRestrictsSamplesAndWeightsSkew)
{
    auto spec = smallSpec();
    spec.durationSeconds = 20000.0;
    spec.mix = parseMix("2PV7=10,promo=1");
    const auto requests = generateRequests(spec);
    size_t small = 0, large = 0;
    for (const auto &r : requests) {
        ASSERT_TRUE(r.sample == "2PV7" || r.sample == "promo");
        (r.sample == "2PV7" ? small : large)++;
    }
    EXPECT_GT(small, large);
}

TEST(Workload, SingleVariantMakesAllRequestsRepeats)
{
    auto spec = smallSpec();
    spec.mix = parseMix("2PV7");
    spec.variantsPerSample = 1;
    const auto requests = generateRequests(spec);
    ASSERT_GT(requests.size(), 1u);
    for (const auto &r : requests) {
        EXPECT_EQ(r.variant, 0u);
        EXPECT_EQ(r.contentHash, requests[0].contentHash);
    }
}

TEST(Workload, ParseMixValidates)
{
    const auto mix = parseMix("2PV7=3,promo=1");
    ASSERT_EQ(mix.size(), 2u);
    EXPECT_EQ(mix[0].sample, "2PV7");
    EXPECT_DOUBLE_EQ(mix[0].weight, 3.0);
    EXPECT_DOUBLE_EQ(mix[1].weight, 1.0);

    const auto equal = parseMix("2PV7,promo");
    EXPECT_DOUBLE_EQ(equal[0].weight, equal[1].weight);

    EXPECT_THROW(parseMix("NOPE=1"), FatalError);
    EXPECT_THROW(parseMix("2PV7=0"), FatalError);
    EXPECT_THROW(parseMix("2PV7=-2"), FatalError);
    EXPECT_THROW(parseMix(""), FatalError);
}

TEST(Workload, ContentHashSeparatesVariantsAndSamples)
{
    const auto a = bio::makeSample("2PV7");
    const auto b = bio::makeSample("promo");
    EXPECT_EQ(queryContentHash(a.complex, 0),
              queryContentHash(a.complex, 0));
    EXPECT_NE(queryContentHash(a.complex, 0),
              queryContentHash(a.complex, 1));
    EXPECT_NE(queryContentHash(a.complex, 0),
              queryContentHash(b.complex, 0));
}

TEST(Workload, MutationSameSeedIsBitIdentical)
{
    auto spec = smallSpec();
    spec.mix = parseMix("2PV7");
    spec.mutationRate = 0.02;
    const auto a = generateRequests(spec);
    const auto b = generateRequests(spec);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].contentHash, b[i].contentHash);
        EXPECT_EQ(a[i].sketch.minhash, b[i].sketch.minhash);
        EXPECT_DOUBLE_EQ(a[i].arrivalSeconds, b[i].arrivalSeconds);
    }
}

TEST(Workload, NoMutationNoSketchLeavesRequestsUntouched)
{
    // The pre-similarity generator: sketches stay empty, and the
    // stream matches a plain spec byte for byte.
    const auto plain = generateRequests(smallSpec());
    auto spec = smallSpec();
    spec.mutationRate = 0.0;
    spec.sketchQueries = false;
    const auto off = generateRequests(spec);
    ASSERT_EQ(off.size(), plain.size());
    for (size_t i = 0; i < off.size(); ++i) {
        EXPECT_TRUE(off[i].sketch.empty());
        EXPECT_EQ(off[i].contentHash, plain[i].contentHash);
        EXPECT_DOUBLE_EQ(off[i].arrivalSeconds,
                         plain[i].arrivalSeconds);
    }
}

TEST(Workload, SketchWithoutMutationSketchesBaseQueries)
{
    auto spec = smallSpec();
    spec.mix = parseMix("2PV7");
    spec.variantsPerSample = 2;
    spec.sketchQueries = true;
    const auto requests = generateRequests(spec);
    ASSERT_FALSE(requests.empty());
    for (const auto &r : requests)
        EXPECT_FALSE(r.sketch.empty());
    // Repeats of one (sample, variant) share the identical sketch.
    for (size_t i = 1; i < requests.size(); ++i)
        for (size_t j = 0; j < i; ++j)
            if (requests[i].variant == requests[j].variant)
                EXPECT_EQ(requests[i].sketch.minhash,
                          requests[j].sketch.minhash);
}

TEST(Workload, MutationKeepsTokensButDivergesContent)
{
    auto spec = smallSpec();
    spec.mix = parseMix("2PV7");
    spec.variantsPerSample = 1;
    spec.mutationRate = 0.02;
    const auto requests = generateRequests(spec);
    ASSERT_GT(requests.size(), 10u);

    const auto sample = bio::makeSample("2PV7");
    const uint64_t baseHash = queryContentHash(sample.complex, 0);
    size_t diverged = 0;
    for (const auto &r : requests) {
        // Substitution-only mutation: workload character (token
        // count) is preserved while content diverges.
        EXPECT_EQ(r.tokens, sample.complex.totalResidues());
        EXPECT_FALSE(r.sketch.empty());
        diverged += r.contentHash != baseHash;
    }
    EXPECT_GT(diverged, requests.size() / 2);
    // Near-duplicates are not literal repeats of each other either.
    EXPECT_NE(requests[0].contentHash, requests[1].contentHash);
}

TEST(Workload, MutationRateValidates)
{
    auto spec = smallSpec();
    spec.mutationRate = -0.1;
    EXPECT_THROW(generateRequests(spec), FatalError);
    spec.mutationRate = 1.0;
    EXPECT_THROW(generateRequests(spec), FatalError);
}

} // namespace
} // namespace afsb::serve
