/**
 * @file
 * Multi-node serving-topology tests: the nodes=1 byte-identity
 * anchor, seed determinism at N > 1, cross-node cache traffic,
 * whole-node-kill conservation, and comm-trace integrity.
 *
 * All tests share one MsaServiceOracle so the expensive per-sample
 * MSA characterization runs once for the whole file.
 */

#include <gtest/gtest.h>

#include "core/workspace.hh"
#include "fault/fault.hh"
#include "net/comm_trace.hh"
#include "serve/cluster.hh"
#include "serve/report.hh"

namespace afsb::serve {
namespace {

/** Cheap engine settings shared by every test here (and the shared
 *  oracle — do not change per test). */
ClusterConfig
fastConfig()
{
    ClusterConfig cfg;
    cfg.msaWorkers = 2;
    cfg.gpuWorkers = 1;
    cfg.msaThreadsPerWorker = 2;
    cfg.msaOptions.traceStride = 16;
    cfg.msaOptions.jackhmmerIterations = 1;
    return cfg;
}

std::vector<Request>
smallWorkload(double durationSeconds = 2500.0, uint32_t variants = 2)
{
    WorkloadSpec spec;
    spec.requestsPerSecond = 0.02;
    spec.durationSeconds = durationSeconds;
    spec.seed = 777;
    spec.mix = parseMix("2PV7");
    spec.variantsPerSample = variants;
    return generateRequests(spec);
}

ClusterResult
runFast(const std::vector<Request> &requests, ClusterConfig cfg)
{
    static MsaServiceOracle oracle;
    cfg.msaOracle = &oracle;
    return simulateCluster(sys::serverPlatform(),
                           core::Workspace::shared(), requests,
                           cfg);
}

void
expectConservation(const ClusterResult &r)
{
    EXPECT_EQ(r.completed + r.degraded + r.failed + r.shed,
              r.offered);
}

TEST(Multinode, SingleNodeTopologyIsByteIdenticalToDefault)
{
    const auto requests = smallWorkload();
    const auto base = runFast(requests, fastConfig());

    // An explicit 1-node topology — even on expensive links — must
    // reproduce the default run byte for byte: no message ever
    // crosses a node boundary, so no modeled transfer can perturb
    // the event order.
    auto cfg = fastConfig();
    cfg.topology = net::commodityTopology(1);
    const auto r = runFast(requests, cfg);

    EXPECT_FALSE(r.multiNode);
    EXPECT_EQ(r.comm.messages, 0u);
    EXPECT_TRUE(r.commTrace.empty());
    EXPECT_EQ(canonicalSloText(buildSloReport(r)),
              canonicalSloText(buildSloReport(base)));
    ASSERT_EQ(r.records.size(), base.records.size());
    for (size_t i = 0; i < r.records.size(); ++i) {
        EXPECT_EQ(r.records[i].outcome, base.records[i].outcome);
        EXPECT_EQ(r.records[i].finishSeconds,
                  base.records[i].finishSeconds);
        EXPECT_EQ(r.records[i].node, 0u);
        EXPECT_FALSE(r.records[i].remoteCache);
    }
}

TEST(Multinode, SameSeedsAreByteIdenticalAcrossNodes)
{
    const auto requests = smallWorkload();
    auto cfg = fastConfig();
    cfg.topology = net::datacenterTopology(4);

    const auto a = runFast(requests, cfg);
    const auto b = runFast(requests, cfg);
    EXPECT_TRUE(a.multiNode);
    EXPECT_FALSE(a.commTrace.empty());
    EXPECT_EQ(a.commTrace, b.commTrace);
    EXPECT_EQ(canonicalSloText(buildSloReport(a)),
              canonicalSloText(buildSloReport(b)));
    ASSERT_EQ(a.records.size(), b.records.size());
    for (size_t i = 0; i < a.records.size(); ++i) {
        EXPECT_EQ(a.records[i].node, b.records[i].node);
        EXPECT_EQ(a.records[i].finishSeconds,
                  b.records[i].finishSeconds);
    }
}

TEST(Multinode, RoutingSpreadsLoadAndReportCarriesNetSection)
{
    const auto requests = smallWorkload();
    auto cfg = fastConfig();
    cfg.topology = net::datacenterTopology(3);
    const auto r = runFast(requests, cfg);

    expectConservation(r);
    EXPECT_EQ(r.nodes, 3u);
    EXPECT_GT(r.comm.messages, 0u);
    ASSERT_EQ(r.nodeStats.size(), 3u);
    uint64_t routed = 0;
    for (const auto &n : r.nodeStats) {
        EXPECT_GT(n.routed, 0u); // round-robin reaches every node
        routed += n.routed;
    }
    EXPECT_EQ(routed, r.offered - r.shed);
    for (const auto &rec : r.records)
        EXPECT_LT(rec.node, 3u);

    const auto rep = buildSloReport(r);
    EXPECT_TRUE(rep.multiNode);
    EXPECT_EQ(rep.net.nodes, 3u);
    EXPECT_EQ(rep.net.perNode.size(), 3u);
    EXPECT_FALSE(rep.net.links.empty());
    const std::string text = canonicalSloText(rep);
    EXPECT_NE(text.find("nodes=3\n"), std::string::npos);
    EXPECT_NE(text.find("comm_messages="), std::string::npos);
    EXPECT_NE(text.find("node_0_routed="), std::string::npos);
}

TEST(Multinode, RemoteCacheShardsServeRepeatQueries)
{
    // Repeat-heavy workload on 4 nodes: 3 of 4 repeat lookups land
    // on a remote shard (contentHash % nodes) and ship the cached
    // MSA over the fabric.
    const auto requests = smallWorkload(4000.0, 1);
    auto cfg = fastConfig();
    cfg.topology = net::datacenterTopology(4);
    const auto r = runFast(requests, cfg);

    expectConservation(r);
    EXPECT_GT(r.remoteCacheLookups, 0u);
    EXPECT_GT(r.remoteCacheHits, 0u);
    EXPECT_GT(r.cacheStats.hits, 0u);
    bool sawRemoteHit = false;
    for (const auto &rec : r.records)
        sawRemoteHit |= rec.remoteCache && rec.msaCacheHit;
    EXPECT_TRUE(sawRemoteHit);
}

TEST(Multinode, RemoteShardsAnswerSimilarityProbes)
{
    // Near-duplicate traffic sharded over 4 nodes: exact lookups
    // miss, the sketch probe broadcasts to every shard, and most
    // accepted candidates live on a remote shard (which ships its
    // survivor set over the fabric).
    WorkloadSpec spec;
    spec.requestsPerSecond = 0.02;
    spec.durationSeconds = 6000.0;
    spec.seed = 777;
    spec.mix = parseMix("2PV7");
    spec.variantsPerSample = 1;
    spec.mutationRate = 0.01;
    const auto requests = generateRequests(spec);

    auto cfg = fastConfig();
    cfg.topology = net::datacenterTopology(4);
    cfg.msaCacheBudgetBytes = 512ull << 20;
    cfg.simCacheThreshold = 0.6;
    const auto r = runFast(requests, cfg);

    expectConservation(r);
    EXPECT_TRUE(r.simCacheEnabled);
    EXPECT_GT(r.remoteApproxProbes, 0u);
    EXPECT_GT(r.remoteApproxHits, 0u);
    EXPECT_GT(r.approxHits, 0u);
    bool sawRemoteApprox = false;
    for (const auto &rec : r.records)
        sawRemoteApprox |= rec.remoteCache && rec.approxHit;
    EXPECT_TRUE(sawRemoteApprox);

    // The round-trip report carries the remote counters.
    const auto rep = buildSloReport(r);
    EXPECT_EQ(rep.sim.remoteApproxProbes, r.remoteApproxProbes);
    EXPECT_EQ(rep.sim.remoteApproxHits, r.remoteApproxHits);
    const std::string text = canonicalSloText(rep);
    EXPECT_NE(text.find("sim_remote_probes="), std::string::npos);
    EXPECT_EQ(canonicalSloText(parseSloText(text)), text);
}

TEST(Multinode, NodeKillConservesEveryAdmittedRequest)
{
    const auto requests = smallWorkload();
    auto cfg = fastConfig();
    cfg.topology = net::datacenterTopology(4);
    fault::NodeKill kill;
    kill.atSeconds = 600.0;
    kill.node = 1;
    cfg.faultPlan.seed = 0xdead;
    cfg.faultPlan.nodeKills.push_back(kill);
    const auto r = runFast(requests, cfg);

    expectConservation(r);
    EXPECT_TRUE(r.faultsEnabled);
    EXPECT_EQ(r.nodeKills, 1u);
    EXPECT_EQ(r.nodeRebuilds, 0u);
    EXPECT_GT(
        r.faultsByKind[static_cast<size_t>(
            fault::FaultKind::NodeFailure)],
        0u);
    // Retry + degradation stay on: the kill may degrade requests
    // but must not lose or hard-fail them.
    EXPECT_EQ(r.failed, 0u);
    // Nothing lands on the dead node after the kill.
    for (const auto &rec : r.records) {
        if (rec.request.arrivalSeconds > kill.atSeconds &&
            rec.outcome != Outcome::Shed) {
            EXPECT_NE(rec.node, 1u);
        }
    }
}

TEST(Multinode, NodeRebuildRestoresServingCapacity)
{
    const auto requests = smallWorkload();
    auto cfgDown = fastConfig();
    cfgDown.topology = net::datacenterTopology(2);
    fault::NodeKill kill;
    kill.atSeconds = 600.0;
    kill.node = 1;
    cfgDown.faultPlan.seed = 0xdead;
    cfgDown.faultPlan.nodeKills.push_back(kill);

    auto cfgBack = cfgDown;
    cfgBack.faultPlan.nodeKills[0].rebuildSeconds = 200.0;

    const auto down = runFast(requests, cfgDown);
    const auto back = runFast(requests, cfgBack);
    expectConservation(down);
    expectConservation(back);
    EXPECT_EQ(down.nodeRebuilds, 0u);
    EXPECT_EQ(back.nodeRebuilds, 1u);
    // The rebuilt node serves again.
    bool servedAfterRebuild = false;
    for (const auto &rec : back.records)
        servedAfterRebuild |=
            rec.node == 1 &&
            rec.request.arrivalSeconds > kill.atSeconds + 200.0 &&
            rec.outcome == Outcome::Completed;
    EXPECT_TRUE(servedAfterRebuild);
}

TEST(Multinode, KillNeverTakesTheLastLiveNode)
{
    const auto requests = smallWorkload();
    auto cfg = fastConfig();
    cfg.topology = net::datacenterTopology(2);
    fault::NodeKill first;
    first.atSeconds = 400.0;
    first.node = 0;
    fault::NodeKill second; // would leave zero live nodes: ignored
    second.atSeconds = 800.0;
    second.node = 1;
    cfg.faultPlan.seed = 1;
    cfg.faultPlan.nodeKills.push_back(first);
    cfg.faultPlan.nodeKills.push_back(second);
    const auto r = runFast(requests, cfg);

    expectConservation(r);
    EXPECT_EQ(r.nodeKills, 1u);
    EXPECT_GT(r.completed + r.degraded, 0u);
}

TEST(Multinode, CommTraceParsesAndRespectsCausality)
{
    const auto requests = smallWorkload();
    auto cfg = fastConfig();
    cfg.topology = net::datacenterTopology(4);
    const auto r = runFast(requests, cfg);

    const auto events = net::parseCommTrace(r.commTrace);
    ASSERT_EQ(events.size(), r.comm.messages);
    const uint32_t endpoints = cfg.topology.endpoints();
    for (const auto &e : events) {
        EXPECT_GE(e.arriveTime, e.sendTime);
        EXPECT_LT(e.src, endpoints);
        EXPECT_LT(e.dst, endpoints);
        EXPECT_NE(e.src, e.dst);
    }
}

} // namespace
} // namespace afsb::serve
