/**
 * @file
 * Tests for the content-addressed MSA result cache.
 */

#include <gtest/gtest.h>

#include "serve/msa_cache.hh"

namespace afsb::serve {
namespace {

TEST(MsaCache, MissThenHit)
{
    MsaResultCache cache(1 << 20);
    EXPECT_FALSE(cache.lookup(0xabc));
    cache.insert(0xabc, 1000);
    EXPECT_TRUE(cache.lookup(0xabc));
    EXPECT_EQ(cache.stats().lookups, 2u);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses(), 1u);
    EXPECT_DOUBLE_EQ(cache.stats().hitRate(), 0.5);
    EXPECT_EQ(cache.entries(), 1u);
    EXPECT_EQ(cache.bytesInUse(), 1000u);
}

TEST(MsaCache, EvictsLeastRecentlyUsedUnderBudget)
{
    MsaResultCache cache(300);
    cache.insert(1, 100);
    cache.insert(2, 100);
    cache.insert(3, 100);
    // Touch 1 so 2 becomes the LRU victim.
    EXPECT_TRUE(cache.lookup(1));
    cache.insert(4, 100);
    EXPECT_TRUE(cache.lookup(1));
    EXPECT_FALSE(cache.lookup(2));
    EXPECT_TRUE(cache.lookup(3));
    EXPECT_TRUE(cache.lookup(4));
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_LE(cache.bytesInUse(), cache.budgetBytes());
}

TEST(MsaCache, RejectsEntriesLargerThanBudget)
{
    MsaResultCache cache(100);
    cache.insert(7, 101);
    EXPECT_FALSE(cache.lookup(7));
    EXPECT_EQ(cache.stats().rejected, 1u);
    EXPECT_EQ(cache.entries(), 0u);
    EXPECT_EQ(cache.bytesInUse(), 0u);
}

TEST(MsaCache, ZeroBudgetDisablesStorage)
{
    MsaResultCache cache(0);
    cache.insert(1, 1);
    EXPECT_FALSE(cache.lookup(1));
    EXPECT_EQ(cache.entries(), 0u);
}

TEST(MsaCache, ReinsertRefreshesWithoutDuplicating)
{
    MsaResultCache cache(250);
    cache.insert(1, 100);
    cache.insert(2, 100);
    cache.insert(1, 100); // refresh: 2 is now the LRU victim
    EXPECT_EQ(cache.entries(), 2u);
    EXPECT_EQ(cache.bytesInUse(), 200u);
    cache.insert(3, 100);
    EXPECT_TRUE(cache.lookup(1));
    EXPECT_FALSE(cache.lookup(2));
    EXPECT_TRUE(cache.lookup(3));
}

TEST(MsaCache, EvictsMultipleToFitLargeEntry)
{
    MsaResultCache cache(300);
    cache.insert(1, 100);
    cache.insert(2, 100);
    cache.insert(3, 100);
    cache.insert(4, 250);
    EXPECT_FALSE(cache.lookup(1));
    EXPECT_FALSE(cache.lookup(2));
    EXPECT_FALSE(cache.lookup(3));
    EXPECT_TRUE(cache.lookup(4));
    EXPECT_EQ(cache.stats().evictions, 3u);
    EXPECT_LE(cache.bytesInUse(), cache.budgetBytes());
}

} // namespace
} // namespace afsb::serve
