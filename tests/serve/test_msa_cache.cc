/**
 * @file
 * Tests for the content-addressed MSA result cache.
 */

#include <gtest/gtest.h>

#include <random>

#include "serve/msa_cache.hh"

namespace afsb::serve {
namespace {

/** Deterministic sketch over random codes; @p mutation perturbs a
 *  fraction of residues so two sketches are near-duplicates. */
msa::QuerySketch
testSketch(uint32_t seed, double mutation = 0.0)
{
    std::mt19937 rng(seed);
    std::vector<uint8_t> codes(600);
    for (auto &c : codes)
        c = static_cast<uint8_t>(rng() % 20);
    if (mutation > 0.0) {
        std::mt19937 mrng(seed + 7777);
        std::uniform_real_distribution<double> u(0.0, 1.0);
        for (auto &c : codes)
            if (u(mrng) < mutation)
                c = static_cast<uint8_t>(mrng() % 20);
    }
    return msa::sketchCodes(codes, 0);
}

TEST(MsaCache, MissThenHit)
{
    MsaResultCache cache(1 << 20);
    EXPECT_EQ(cache.lookup(0xabc), MsaResultCache::Lookup::Miss);
    cache.insert(0xabc, 1000);
    EXPECT_EQ(cache.lookup(0xabc), MsaResultCache::Lookup::Hit);
    EXPECT_EQ(cache.stats().lookups, 2u);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses(), 1u);
    EXPECT_DOUBLE_EQ(cache.stats().hitRate(), 0.5);
    EXPECT_EQ(cache.entries(), 1u);
    EXPECT_EQ(cache.bytesInUse(), 1000u);
}

TEST(MsaCache, EvictsLeastRecentlyUsedUnderBudget)
{
    MsaResultCache cache(300);
    cache.insert(1, 100);
    cache.insert(2, 100);
    cache.insert(3, 100);
    // Touch 1 so 2 becomes the LRU victim.
    EXPECT_EQ(cache.lookup(1), MsaResultCache::Lookup::Hit);
    cache.insert(4, 100);
    EXPECT_EQ(cache.lookup(1), MsaResultCache::Lookup::Hit);
    EXPECT_EQ(cache.lookup(2), MsaResultCache::Lookup::Miss);
    EXPECT_EQ(cache.lookup(3), MsaResultCache::Lookup::Hit);
    EXPECT_EQ(cache.lookup(4), MsaResultCache::Lookup::Hit);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_LE(cache.bytesInUse(), cache.budgetBytes());
}

TEST(MsaCache, RejectsEntriesLargerThanBudget)
{
    MsaResultCache cache(100);
    cache.insert(7, 101);
    EXPECT_EQ(cache.lookup(7), MsaResultCache::Lookup::Miss);
    EXPECT_EQ(cache.stats().rejected, 1u);
    EXPECT_EQ(cache.entries(), 0u);
    EXPECT_EQ(cache.bytesInUse(), 0u);
}

TEST(MsaCache, ZeroBudgetDisablesStorage)
{
    MsaResultCache cache(0);
    cache.insert(1, 1);
    EXPECT_EQ(cache.lookup(1), MsaResultCache::Lookup::Miss);
    EXPECT_EQ(cache.entries(), 0u);
}

TEST(MsaCache, ReinsertRefreshesWithoutDuplicating)
{
    MsaResultCache cache(250);
    cache.insert(1, 100);
    cache.insert(2, 100);
    cache.insert(1, 100); // refresh: 2 is now the LRU victim
    EXPECT_EQ(cache.entries(), 2u);
    EXPECT_EQ(cache.bytesInUse(), 200u);
    cache.insert(3, 100);
    EXPECT_EQ(cache.lookup(1), MsaResultCache::Lookup::Hit);
    EXPECT_EQ(cache.lookup(2), MsaResultCache::Lookup::Miss);
    EXPECT_EQ(cache.lookup(3), MsaResultCache::Lookup::Hit);
}

TEST(MsaCache, EvictsMultipleToFitLargeEntry)
{
    MsaResultCache cache(300);
    cache.insert(1, 100);
    cache.insert(2, 100);
    cache.insert(3, 100);
    cache.insert(4, 250);
    EXPECT_EQ(cache.lookup(1), MsaResultCache::Lookup::Miss);
    EXPECT_EQ(cache.lookup(2), MsaResultCache::Lookup::Miss);
    EXPECT_EQ(cache.lookup(3), MsaResultCache::Lookup::Miss);
    EXPECT_EQ(cache.lookup(4), MsaResultCache::Lookup::Hit);
    EXPECT_EQ(cache.stats().evictions, 3u);
    EXPECT_LE(cache.bytesInUse(), cache.budgetBytes());
}

TEST(MsaCache, CorruptedEntryIsDetectedAndDropped)
{
    MsaResultCache cache(1 << 20);
    cache.insert(1, 100);
    cache.insert(2, 100);
    cache.corrupt(1);
    EXPECT_EQ(cache.lookup(1), MsaResultCache::Lookup::Corrupt);
    EXPECT_EQ(cache.stats().corrupted, 1u);
    // The corrupted entry is gone (its bytes reclaimed); a healthy
    // sibling is untouched, and re-inserting the key heals it.
    EXPECT_EQ(cache.entries(), 1u);
    EXPECT_EQ(cache.bytesInUse(), 100u);
    EXPECT_EQ(cache.lookup(2), MsaResultCache::Lookup::Hit);
    EXPECT_EQ(cache.lookup(1), MsaResultCache::Lookup::Miss);
    cache.insert(1, 100);
    EXPECT_EQ(cache.lookup(1), MsaResultCache::Lookup::Hit);
}

TEST(MsaCache, CorruptOnMissingKeyIsNoOp)
{
    MsaResultCache cache(1 << 20);
    cache.corrupt(42);
    EXPECT_EQ(cache.lookup(42), MsaResultCache::Lookup::Miss);
    EXPECT_EQ(cache.stats().corrupted, 0u);
}

TEST(MsaCache, ApproxLookupFindsNearDuplicate)
{
    MsaResultCache cache(1 << 20);
    cache.insert(0x111, 100, testSketch(1));
    cache.insert(0x222, 100, testSketch(2));
    EXPECT_EQ(cache.sketchedEntries(), 2u);

    // A 2%-mutated copy of entry 1's query: misses the exact key
    // but collides in the LSH bands and clears the threshold.
    const auto probe = testSketch(1, 0.02);
    const auto r = cache.approxLookup(probe, 0.5);
    EXPECT_TRUE(r.candidate);
    EXPECT_TRUE(r.accepted);
    EXPECT_EQ(r.key, 0x111u);
    EXPECT_GT(r.jaccard, 0.5);
    EXPECT_EQ(cache.stats().approxLookups, 1u);
    EXPECT_EQ(cache.stats().approxHits, 1u);

    // An unrelated probe finds nothing (or nothing acceptable).
    const auto miss = cache.approxLookup(testSketch(99), 0.5);
    EXPECT_FALSE(miss.accepted);
    EXPECT_EQ(cache.stats().approxLookups, 2u);
    EXPECT_EQ(cache.stats().approxHits, 1u);
}

TEST(MsaCache, ApproxThresholdGatesAcceptance)
{
    MsaResultCache cache(1 << 20);
    cache.insert(0x111, 100, testSketch(1));
    const auto probe = testSketch(1, 0.02);
    const auto loose = cache.approxLookup(probe, 0.1);
    ASSERT_TRUE(loose.candidate);
    EXPECT_TRUE(loose.accepted);
    // Same probe against an impossible threshold: candidate found,
    // not accepted.
    const auto strict = cache.approxLookup(probe, 0.999);
    EXPECT_TRUE(strict.candidate);
    EXPECT_FALSE(strict.accepted);
}

TEST(MsaCache, CorruptEntryDropsItsSketch)
{
    MsaResultCache cache(1 << 20);
    cache.insert(0x111, 100, testSketch(1));
    const auto probe = testSketch(1, 0.02);
    ASSERT_TRUE(cache.approxLookup(probe, 0.5).accepted);

    cache.corrupt(0x111);
    EXPECT_EQ(cache.lookup(0x111), MsaResultCache::Lookup::Corrupt);
    // The integrity failure evicted the sketch and its band
    // registrations along with the entry.
    EXPECT_EQ(cache.sketchedEntries(), 0u);
    const auto r = cache.approxLookup(probe, 0.5);
    EXPECT_FALSE(r.candidate);
    EXPECT_FALSE(r.accepted);
}

TEST(MsaCache, EvictionDropsSketchAndBands)
{
    MsaResultCache cache(250);
    cache.insert(1, 100, testSketch(1));
    cache.insert(2, 100, testSketch(2));
    EXPECT_EQ(cache.sketchedEntries(), 2u);
    // Key 1 is the LRU victim.
    cache.insert(3, 100, testSketch(3));
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.sketchedEntries(), 2u);
    const auto r = cache.approxLookup(testSketch(1, 0.02), 0.5);
    EXPECT_FALSE(r.candidate); // evicted entry left no bands behind
    // Survivors are still probe-able.
    EXPECT_TRUE(cache.approxLookup(testSketch(2, 0.02), 0.5).accepted);
}

TEST(MsaCache, AcceptedApproxProbeRefreshesLru)
{
    MsaResultCache cache(250);
    cache.insert(1, 100, testSketch(1));
    cache.insert(2, 100, testSketch(2));
    // Probe-refresh key 1 so key 2 becomes the LRU victim.
    ASSERT_TRUE(cache.approxLookup(testSketch(1, 0.02), 0.5).accepted);
    cache.insert(3, 100);
    EXPECT_EQ(cache.lookup(1), MsaResultCache::Lookup::Hit);
    EXPECT_EQ(cache.lookup(2), MsaResultCache::Lookup::Miss);
}

TEST(MsaCache, OverBudgetSketchedInsertLeavesNoResidue)
{
    MsaResultCache cache(100);
    cache.insert(1, 101, testSketch(1));
    EXPECT_EQ(cache.stats().rejected, 1u);
    EXPECT_EQ(cache.entries(), 0u);
    EXPECT_EQ(cache.sketchedEntries(), 0u);
    EXPECT_FALSE(cache.approxLookup(testSketch(1, 0.02), 0.5)
                     .candidate);
}

TEST(MsaCache, EmptySketchDegradesToExactInsert)
{
    MsaResultCache cache(1 << 20);
    cache.insert(1, 100, msa::QuerySketch{});
    EXPECT_EQ(cache.entries(), 1u);
    EXPECT_EQ(cache.sketchedEntries(), 0u);
    EXPECT_EQ(cache.lookup(1), MsaResultCache::Lookup::Hit);
}

} // namespace
} // namespace afsb::serve
