/**
 * @file
 * Tests for the content-addressed MSA result cache.
 */

#include <gtest/gtest.h>

#include "serve/msa_cache.hh"

namespace afsb::serve {
namespace {

TEST(MsaCache, MissThenHit)
{
    MsaResultCache cache(1 << 20);
    EXPECT_EQ(cache.lookup(0xabc), MsaResultCache::Lookup::Miss);
    cache.insert(0xabc, 1000);
    EXPECT_EQ(cache.lookup(0xabc), MsaResultCache::Lookup::Hit);
    EXPECT_EQ(cache.stats().lookups, 2u);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses(), 1u);
    EXPECT_DOUBLE_EQ(cache.stats().hitRate(), 0.5);
    EXPECT_EQ(cache.entries(), 1u);
    EXPECT_EQ(cache.bytesInUse(), 1000u);
}

TEST(MsaCache, EvictsLeastRecentlyUsedUnderBudget)
{
    MsaResultCache cache(300);
    cache.insert(1, 100);
    cache.insert(2, 100);
    cache.insert(3, 100);
    // Touch 1 so 2 becomes the LRU victim.
    EXPECT_EQ(cache.lookup(1), MsaResultCache::Lookup::Hit);
    cache.insert(4, 100);
    EXPECT_EQ(cache.lookup(1), MsaResultCache::Lookup::Hit);
    EXPECT_EQ(cache.lookup(2), MsaResultCache::Lookup::Miss);
    EXPECT_EQ(cache.lookup(3), MsaResultCache::Lookup::Hit);
    EXPECT_EQ(cache.lookup(4), MsaResultCache::Lookup::Hit);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_LE(cache.bytesInUse(), cache.budgetBytes());
}

TEST(MsaCache, RejectsEntriesLargerThanBudget)
{
    MsaResultCache cache(100);
    cache.insert(7, 101);
    EXPECT_EQ(cache.lookup(7), MsaResultCache::Lookup::Miss);
    EXPECT_EQ(cache.stats().rejected, 1u);
    EXPECT_EQ(cache.entries(), 0u);
    EXPECT_EQ(cache.bytesInUse(), 0u);
}

TEST(MsaCache, ZeroBudgetDisablesStorage)
{
    MsaResultCache cache(0);
    cache.insert(1, 1);
    EXPECT_EQ(cache.lookup(1), MsaResultCache::Lookup::Miss);
    EXPECT_EQ(cache.entries(), 0u);
}

TEST(MsaCache, ReinsertRefreshesWithoutDuplicating)
{
    MsaResultCache cache(250);
    cache.insert(1, 100);
    cache.insert(2, 100);
    cache.insert(1, 100); // refresh: 2 is now the LRU victim
    EXPECT_EQ(cache.entries(), 2u);
    EXPECT_EQ(cache.bytesInUse(), 200u);
    cache.insert(3, 100);
    EXPECT_EQ(cache.lookup(1), MsaResultCache::Lookup::Hit);
    EXPECT_EQ(cache.lookup(2), MsaResultCache::Lookup::Miss);
    EXPECT_EQ(cache.lookup(3), MsaResultCache::Lookup::Hit);
}

TEST(MsaCache, EvictsMultipleToFitLargeEntry)
{
    MsaResultCache cache(300);
    cache.insert(1, 100);
    cache.insert(2, 100);
    cache.insert(3, 100);
    cache.insert(4, 250);
    EXPECT_EQ(cache.lookup(1), MsaResultCache::Lookup::Miss);
    EXPECT_EQ(cache.lookup(2), MsaResultCache::Lookup::Miss);
    EXPECT_EQ(cache.lookup(3), MsaResultCache::Lookup::Miss);
    EXPECT_EQ(cache.lookup(4), MsaResultCache::Lookup::Hit);
    EXPECT_EQ(cache.stats().evictions, 3u);
    EXPECT_LE(cache.bytesInUse(), cache.budgetBytes());
}

TEST(MsaCache, CorruptedEntryIsDetectedAndDropped)
{
    MsaResultCache cache(1 << 20);
    cache.insert(1, 100);
    cache.insert(2, 100);
    cache.corrupt(1);
    EXPECT_EQ(cache.lookup(1), MsaResultCache::Lookup::Corrupt);
    EXPECT_EQ(cache.stats().corrupted, 1u);
    // The corrupted entry is gone (its bytes reclaimed); a healthy
    // sibling is untouched, and re-inserting the key heals it.
    EXPECT_EQ(cache.entries(), 1u);
    EXPECT_EQ(cache.bytesInUse(), 100u);
    EXPECT_EQ(cache.lookup(2), MsaResultCache::Lookup::Hit);
    EXPECT_EQ(cache.lookup(1), MsaResultCache::Lookup::Miss);
    cache.insert(1, 100);
    EXPECT_EQ(cache.lookup(1), MsaResultCache::Lookup::Hit);
}

TEST(MsaCache, CorruptOnMissingKeyIsNoOp)
{
    MsaResultCache cache(1 << 20);
    cache.corrupt(42);
    EXPECT_EQ(cache.lookup(42), MsaResultCache::Lookup::Miss);
    EXPECT_EQ(cache.stats().corrupted, 0u);
}

} // namespace
} // namespace afsb::serve
