/**
 * @file
 * Chaos soak and determinism tests for the fault-injection and
 * recovery machinery in the serving cluster.
 *
 * The virtual clock makes chaos testing exact instead of flaky:
 * every test here asserts hard invariants — conservation (every
 * admitted request reaches a terminal outcome), byte-identical
 * fault logs and reports for identical seeds, and byte-identical
 * fault-free reports against the committed baseline — rather than
 * "usually recovers" statistics.
 *
 * All chaos tests share one MsaServiceOracle so the expensive
 * per-sample MSA characterization runs once for the whole file.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/workspace.hh"
#include "fault/fault.hh"
#include "serve/cluster.hh"
#include "serve/report.hh"

namespace afsb::serve {
namespace {

/** Cheap engine settings shared by every chaos test (and the
 *  shared oracle — do not change per test). */
ClusterConfig
fastConfig()
{
    ClusterConfig cfg;
    cfg.msaWorkers = 2;
    cfg.gpuWorkers = 1;
    cfg.msaThreadsPerWorker = 2;
    cfg.msaOptions.traceStride = 16;
    cfg.msaOptions.jackhmmerIterations = 1;
    return cfg;
}

std::vector<Request>
smallWorkload(double durationSeconds = 2500.0, uint32_t variants = 2)
{
    WorkloadSpec spec;
    spec.requestsPerSecond = 0.02;
    spec.durationSeconds = durationSeconds;
    spec.seed = 777;
    spec.mix = parseMix("2PV7");
    spec.variantsPerSample = variants;
    return generateRequests(spec);
}

/** One oracle for the whole file: fastConfig engine settings on the
 *  server platform. */
ClusterResult
runFast(const std::vector<Request> &requests, ClusterConfig cfg)
{
    static MsaServiceOracle oracle;
    cfg.msaOracle = &oracle;
    return simulateCluster(sys::serverPlatform(),
                           core::Workspace::shared(), requests,
                           cfg);
}

/** A moderately violent plan: every fault kind is live. */
fault::Plan
chaosPlan(uint64_t seed)
{
    fault::Plan plan;
    plan.seed = seed;
    plan.msaCrashProb = 0.15;
    plan.gpuCrashProb = 0.10;
    plan.permanentProb = 0.20;
    plan.storageErrorProb = 0.05;
    plan.storageSpikeProb = 0.05;
    plan.cacheCorruptProb = 0.20;
    return plan;
}

void
expectConservation(const ClusterResult &r)
{
    EXPECT_EQ(r.completed + r.degraded + r.failed + r.shed,
              r.offered);
    uint64_t completed = 0, degraded = 0, failed = 0, shed = 0;
    for (const auto &rec : r.records) {
        switch (rec.outcome) {
        case Outcome::Completed:
            ++completed;
            break;
        case Outcome::Degraded:
            ++degraded;
            break;
        case Outcome::Failed:
            ++failed;
            break;
        case Outcome::Shed:
            ++shed;
            break;
        }
    }
    EXPECT_EQ(completed, r.completed);
    EXPECT_EQ(degraded, r.degraded);
    EXPECT_EQ(failed, r.failed);
    EXPECT_EQ(shed, r.shed);
}

TEST(Fault, InjectorDecisionStreamsAreIndependent)
{
    const auto plan = chaosPlan(42);
    fault::Injector pure(plan);
    fault::Injector interleaved(plan);

    for (int i = 0; i < 200; ++i) {
        const auto a = pure.msaService();
        // Draws at other sites must not perturb the MSA stream.
        (void)interleaved.gpuService();
        (void)interleaved.cacheInsertCorrupted();
        const auto b = interleaved.msaService();
        EXPECT_EQ(a.crash, b.crash) << "decision " << i;
        EXPECT_EQ(a.permanent, b.permanent);
        EXPECT_EQ(a.storageError, b.storageError);
        EXPECT_EQ(a.latencyFactor, b.latencyFactor);
        EXPECT_EQ(a.failFraction, b.failFraction);
    }
}

TEST(Fault, InjectorScriptedFaultFiresAtExactOrdinal)
{
    fault::Plan plan; // all probabilities zero
    plan.script.push_back(
        {fault::FaultKind::MsaWorkerCrash, 2, true});
    fault::Injector inj(plan);
    EXPECT_FALSE(plan.empty());

    EXPECT_FALSE(inj.msaService().failed()); // ordinal 0
    EXPECT_FALSE(inj.msaService().failed()); // ordinal 1
    const auto hit = inj.msaService();       // ordinal 2
    EXPECT_TRUE(hit.crash);
    EXPECT_TRUE(hit.permanent);
    EXPECT_FALSE(inj.msaService().failed()); // ordinal 3
}

TEST(Fault, SameSeedsAreByteIdentical)
{
    const auto requests = smallWorkload();
    auto cfg = fastConfig();
    cfg.faultPlan = chaosPlan(0xc4a05);

    const auto a = runFast(requests, cfg);
    const auto b = runFast(requests, cfg);

    EXPECT_FALSE(a.faultLog.empty());
    EXPECT_EQ(a.faultLog, b.faultLog); // byte-identical chaos
    EXPECT_EQ(canonicalSloText(buildSloReport(a)),
              canonicalSloText(buildSloReport(b)));
    EXPECT_EQ(a.makespanSeconds, b.makespanSeconds);
    ASSERT_EQ(a.records.size(), b.records.size());
    for (size_t i = 0; i < a.records.size(); ++i) {
        EXPECT_EQ(a.records[i].outcome, b.records[i].outcome);
        EXPECT_EQ(a.records[i].msaAttempts,
                  b.records[i].msaAttempts);
        EXPECT_EQ(a.records[i].gpuAttempts,
                  b.records[i].gpuAttempts);
        EXPECT_EQ(a.records[i].faultsSeen,
                  b.records[i].faultsSeen);
        EXPECT_EQ(a.records[i].finishSeconds,
                  b.records[i].finishSeconds);
    }
}

TEST(Fault, DifferentFaultSeedsProduceDifferentChaos)
{
    const auto requests = smallWorkload();
    auto cfgA = fastConfig();
    cfgA.faultPlan = chaosPlan(1);
    auto cfgB = fastConfig();
    cfgB.faultPlan = chaosPlan(2);
    const auto a = runFast(requests, cfgA);
    const auto b = runFast(requests, cfgB);
    EXPECT_NE(a.faultLog, b.faultLog);
}

TEST(Fault, ConservationHoldsAcross200SeedChaosSweep)
{
    const auto requests = smallWorkload();
    uint64_t totalFaults = 0;
    uint64_t totalDegraded = 0;
    for (uint64_t seed = 0; seed < 200; ++seed) {
        auto cfg = fastConfig();
        cfg.faultPlan = chaosPlan(seed);
        const auto r = runFast(requests, cfg);
        expectConservation(r);
        // Retries + degradation are on: nothing may fail hard, and
        // nothing may be silently lost.
        EXPECT_EQ(r.failed, 0u) << "fault seed " << seed;
        ASSERT_EQ(r.records.size(), requests.size());
        EXPECT_EQ(r.servedLatencies().size(),
                  r.completed + r.degraded);
        totalFaults += r.faultsInjected;
        totalDegraded += r.degraded;
        if (::testing::Test::HasFailure())
            break; // one seed's diagnosis is enough
    }
    // The acceptance bar: a sweep injecting well over 50 faults in
    // which every admitted request completed or visibly degraded.
    EXPECT_GE(totalFaults, 50u);
    EXPECT_GT(totalDegraded, 0u);
}

TEST(Fault, AllMsaCrashesDegradeEveryAdmittedRequest)
{
    const auto requests = smallWorkload(1500.0);
    auto cfg = fastConfig();
    cfg.faultPlan.msaCrashProb = 1.0; // no MSA attempt survives
    const auto r = runFast(requests, cfg);
    expectConservation(r);
    EXPECT_EQ(r.completed, 0u);
    EXPECT_EQ(r.failed, 0u);
    EXPECT_EQ(r.degraded, r.offered - r.shed);
    EXPECT_GT(r.msaRespawns, 0u);
    EXPECT_GT(r.retries, 0u);
    EXPECT_GT(r.lostServiceSeconds, 0.0);
    for (const auto &rec : r.records)
        if (rec.outcome == Outcome::Degraded) {
            EXPECT_TRUE(rec.degradedPath);
            EXPECT_EQ(rec.msaAttempts,
                      cfg.recovery.maxAttemptsPerStage);
            EXPECT_GT(rec.finishSeconds,
                      rec.request.arrivalSeconds);
        }
}

TEST(Fault, FailsHardWhenDegradationDisabled)
{
    const auto requests = smallWorkload(1500.0);
    auto cfg = fastConfig();
    cfg.faultPlan.msaCrashProb = 1.0;
    cfg.recovery.degradeOnExhaustion = false;
    const auto r = runFast(requests, cfg);
    expectConservation(r);
    EXPECT_EQ(r.completed, 0u);
    EXPECT_EQ(r.degraded, 0u);
    EXPECT_EQ(r.failed, r.offered - r.shed);
}

TEST(Fault, RetryBudgetZeroGoesStraightToDegrade)
{
    const auto requests = smallWorkload(1500.0);
    auto cfg = fastConfig();
    cfg.faultPlan.msaCrashProb = 1.0;
    cfg.recovery.retryBudget = 0;
    const auto r = runFast(requests, cfg);
    expectConservation(r);
    EXPECT_EQ(r.retries, 0u);
    EXPECT_EQ(r.degraded, r.offered - r.shed);
    for (const auto &rec : r.records)
        if (rec.outcome == Outcome::Degraded) {
            EXPECT_EQ(rec.msaAttempts, 1u);
        }
}

TEST(Fault, PermanentCrashesNeverStrandTheLastWorker)
{
    const auto requests = smallWorkload();
    auto cfg = fastConfig();
    cfg.gpuWorkers = 2;
    cfg.faultPlan.gpuCrashProb = 0.5;
    cfg.faultPlan.permanentProb = 1.0; // every crash wants to kill
    const auto r = runFast(requests, cfg);
    expectConservation(r);
    // The pool shrank, but the supervisor kept the last replica
    // alive, so everything still finished.
    EXPECT_LE(r.permanentWorkerLosses, 1u);
    EXPECT_GT(r.completed + r.degraded, 0u);
    EXPECT_EQ(r.failed, 0u);
}

TEST(Fault, GpuCrashBurnsServiceAndRespawns)
{
    const auto requests = smallWorkload();
    auto base = fastConfig();
    auto faulty = base;
    faulty.faultPlan.script.push_back(
        {fault::FaultKind::GpuWorkerCrash, 0, false});

    const auto clean = runFast(requests, base);
    const auto r = runFast(requests, faulty);
    expectConservation(r);
    EXPECT_EQ(
        r.faultsByKind[static_cast<size_t>(
            fault::FaultKind::GpuWorkerCrash)],
        1u);
    EXPECT_EQ(r.gpuRespawns, 1u);
    EXPECT_GT(r.lostServiceSeconds, 0.0);
    // The victim retried, completed, and paid for the aborted
    // attempt, the backoff, and the respawn wait in latency. (Pool
    // busy seconds are NOT a valid proxy: the respawned worker's
    // re-init is modeled as respawn delay, not service, so the
    // burned fraction of attempt one can net out smaller than the
    // init phase the clean run's first request paid in-service.)
    bool sawRetry = false;
    for (size_t i = 0; i < r.records.size(); ++i)
        if (r.records[i].gpuAttempts > 1) {
            sawRetry = true;
            EXPECT_EQ(r.records[i].outcome, Outcome::Completed);
            EXPECT_GT(r.records[i].finishSeconds,
                      clean.records[i].finishSeconds);
        }
    EXPECT_TRUE(sawRetry);
}

TEST(Fault, StorageSpikeStretchesMsaService)
{
    const auto requests = smallWorkload();
    auto cfg = fastConfig();
    cfg.faultPlan.storageSpikeFactor = 8.0;
    cfg.faultPlan.script.push_back(
        {fault::FaultKind::StorageLatencySpike, 0, false});
    const auto r = runFast(requests, cfg);
    expectConservation(r);
    EXPECT_EQ(
        r.faultsByKind[static_cast<size_t>(
            fault::FaultKind::StorageLatencySpike)],
        1u);
    // The first MSA service attempt belongs to the first arrival;
    // its (successful) service ran 8x long.
    const auto &rec = r.records.front();
    ASSERT_EQ(rec.outcome, Outcome::Completed);
    EXPECT_EQ(rec.faultsSeen, 1u);
    double cleanSeconds = 0.0;
    for (const auto &other : r.records)
        if (other.outcome == Outcome::Completed &&
            !other.msaCacheHit && other.faultsSeen == 0) {
            cleanSeconds =
                other.msaEndSeconds - other.msaStartSeconds;
            break;
        }
    ASSERT_GT(cleanSeconds, 0.0);
    EXPECT_NEAR(rec.msaEndSeconds - rec.msaStartSeconds,
                8.0 * cleanSeconds, 1e-6);
}

TEST(Fault, CacheCorruptionForcesRederive)
{
    // One variant: every arrival after the first would be a cache
    // hit — but every insertion is corrupted, so each repeat
    // detects the corruption and re-runs the MSA stage.
    const auto requests = smallWorkload(2500.0, 1);
    auto cfg = fastConfig();
    cfg.faultPlan.cacheCorruptProb = 1.0;
    const auto r = runFast(requests, cfg);
    expectConservation(r);
    EXPECT_EQ(r.cacheStats.hits, 0u);
    EXPECT_GT(r.cacheStats.corrupted, 0u);
    EXPECT_GT(
        r.faultsByKind[static_cast<size_t>(
            fault::FaultKind::CacheCorruption)],
        0u);
    for (const auto &rec : r.records)
        EXPECT_FALSE(rec.msaCacheHit);
}

TEST(Fault, DeadlineTimeoutsDegradeButComplete)
{
    const auto requests = smallWorkload(1500.0);
    auto cfg = fastConfig();
    // MSA service takes minutes; a 1 s deadline dooms every
    // attempt, and the degraded fallback (deadline-exempt) is the
    // only way through.
    cfg.recovery.msaDeadlineSeconds = 1.0;
    const auto r = runFast(requests, cfg);
    expectConservation(r);
    EXPECT_TRUE(r.faultsEnabled);
    EXPECT_GT(r.timeouts, 0u);
    EXPECT_EQ(r.completed, 0u);
    EXPECT_EQ(r.failed, 0u);
    EXPECT_EQ(r.degraded, r.offered - r.shed);
    EXPECT_GT(
        r.faultsByKind[static_cast<size_t>(
            fault::FaultKind::RequestTimeout)],
        0u);
}

TEST(Fault, EmptyPlanKeepsFaultMachineryInert)
{
    const auto requests = smallWorkload();
    const auto r = runFast(requests, fastConfig());
    EXPECT_FALSE(r.faultsEnabled);
    EXPECT_EQ(r.faultsInjected, 0u);
    EXPECT_TRUE(r.faultLog.empty());
    EXPECT_EQ(r.retries, 0u);
    EXPECT_EQ(r.degraded, 0u);
    EXPECT_EQ(r.failed, 0u);
    EXPECT_EQ(r.msaRespawns + r.gpuRespawns, 0u);
    EXPECT_DOUBLE_EQ(r.lostServiceSeconds, 0.0);
    const std::string text = canonicalSloText(buildSloReport(r));
    EXPECT_EQ(text.find("faults_injected"), std::string::npos);
}

#ifdef AFSB_REPO_ROOT
TEST(Fault, EmptyPlanMatchesCommittedBaseline)
{
    // Mirrors the committed generation command exactly:
    //   afsysbench serve --platform server --mix 2PV7 --rps 0.005
    //     --duration 2000 --msa-workers 1 --gpu-workers 1
    //     --report-out bench/baselines/serve_slo.txt
    WorkloadSpec spec;
    spec.requestsPerSecond = 0.005;
    spec.durationSeconds = 2000.0;
    spec.seed = 0x5e7eaf3b;
    spec.variantsPerSample = 4;
    spec.mix = parseMix("2PV7");

    ClusterConfig cfg; // CLI defaults, but a 1x1 cluster
    cfg.msaWorkers = 1;
    cfg.gpuWorkers = 1;

    const auto result = simulateCluster(
        sys::serverPlatform(), core::Workspace::shared(),
        generateRequests(spec), cfg);
    const std::string text =
        canonicalSloText(buildSloReport(result));

    const std::string path = std::string(AFSB_REPO_ROOT) +
                             "/bench/baselines/serve_slo.txt";
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "missing baseline: " << path;
    std::stringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(text, golden.str())
        << "fault-free serving report drifted from the committed "
           "baseline; regenerate with the command above if the "
           "change is intentional";
}
#endif

} // namespace
} // namespace afsb::serve
