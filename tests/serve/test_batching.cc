/**
 * @file
 * Tests for the continuous-batching former on the GPU serving path:
 * singleton equivalence to solo dispatch, burst coalescing, the
 * batch-wait timer, VRAM capacity splits, data-parallel fan-out,
 * and request conservation when faults hit a batch mid-flight.
 *
 * Requests are hand-built with explicit arrival times so queue
 * depth at dispatch is a test input, not a race against the
 * workload generator.
 */

#include <gtest/gtest.h>

#include "core/workspace.hh"
#include "serve/cluster.hh"

namespace afsb::serve {
namespace {

/** Cheap config: few threads, coarse trace, one jackhmmer pass. */
ClusterConfig
fastConfig(uint32_t msaWorkers = 4)
{
    ClusterConfig cfg;
    cfg.msaWorkers = msaWorkers;
    cfg.gpuWorkers = 1;
    cfg.msaThreadsPerWorker = 2;
    cfg.msaOptions.traceStride = 16;
    cfg.msaOptions.jackhmmerIterations = 1;
    return cfg;
}

/** One oracle per platform (sample characterization is memoized,
 *  and an oracle must not span platforms). */
MsaServiceOracle &
serverOracle()
{
    static MsaServiceOracle oracle;
    return oracle;
}

MsaServiceOracle &
desktopOracle()
{
    static MsaServiceOracle oracle;
    return oracle;
}

/** @p n distinct 2PV7 queries arriving @p spacing seconds apart. */
std::vector<Request>
burst(size_t n, double spacing = 0.0)
{
    std::vector<Request> requests;
    for (size_t i = 0; i < n; ++i) {
        Request r;
        r.id = i;
        r.sample = "2PV7";
        r.variant = static_cast<uint32_t>(i);
        r.tokens = 484;
        r.contentHash = 0x9000 + i;
        r.arrivalSeconds = spacing * static_cast<double>(i);
        requests.push_back(r);
    }
    return requests;
}

void
expectConservation(const ClusterResult &r)
{
    EXPECT_EQ(r.offered,
              r.completed + r.degraded + r.failed + r.shed);
    for (const auto &rec : r.records) {
        if (rec.outcome == Outcome::Completed) {
            EXPECT_GT(rec.finishSeconds, 0.0);
        }
    }
}

TEST(Batching, SparseArrivalsMatchSoloDispatchExactly)
{
    // Arrivals spaced far beyond the end-to-end latency: the batch
    // former only ever sees a queue of one, and a singleton batch
    // must reproduce solo dispatch bit-identically.
    const auto requests = burst(3, 5000.0);
    auto solo = fastConfig();
    solo.msaOracle = &serverOracle();
    auto batched = solo;
    batched.batchMax = 4;

    const auto a = simulateCluster(sys::serverPlatform(),
                                   core::Workspace::shared(),
                                   requests, solo);
    const auto b = simulateCluster(sys::serverPlatform(),
                                   core::Workspace::shared(),
                                   requests, batched);
    EXPECT_FALSE(a.batchingEnabled);
    EXPECT_TRUE(b.batchingEnabled);
    ASSERT_EQ(a.records.size(), b.records.size());
    for (size_t i = 0; i < a.records.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.records[i].gpuStartSeconds,
                         b.records[i].gpuStartSeconds);
        EXPECT_DOUBLE_EQ(a.records[i].finishSeconds,
                         b.records[i].finishSeconds);
        EXPECT_DOUBLE_EQ(a.records[i].compileSeconds,
                         b.records[i].compileSeconds);
        EXPECT_EQ(a.records[i].batchSize, 0u); // solo path
        EXPECT_EQ(b.records[i].batchSize, 1u); // singleton batch
    }
    EXPECT_DOUBLE_EQ(a.makespanSeconds, b.makespanSeconds);
    EXPECT_EQ(b.batchesFormed, 3u);
    EXPECT_EQ(b.maxBatchOccupancy, 1u);
    EXPECT_DOUBLE_EQ(b.paddingWasteFraction(), 0.0); // unpadded
}

TEST(Batching, SimultaneousBurstFormsOneFullBatch)
{
    // Four queries at t=0 on four MSA workers finish their (equal)
    // MSA stage at the same instant, so the single GPU worker sees
    // a queue of four and dispatches them as one batch.
    const auto requests = burst(4);
    auto cfg = fastConfig(4);
    cfg.msaOracle = &serverOracle();
    cfg.batchMax = 4;
    const auto r = simulateCluster(sys::serverPlatform(),
                                   core::Workspace::shared(),
                                   requests, cfg);
    expectConservation(r);
    EXPECT_EQ(r.completed, 4u);
    EXPECT_EQ(r.batchesFormed, 1u);
    EXPECT_EQ(r.batchedRequests, 4u);
    EXPECT_EQ(r.maxBatchOccupancy, 4u);
    EXPECT_DOUBLE_EQ(r.meanBatchOccupancy(), 4.0);
    // One shared compile covered all four members.
    EXPECT_EQ(r.batchCompiles, 1u);
    EXPECT_EQ(r.compileSharedRequests, 4u);
    EXPECT_DOUBLE_EQ(r.compileAmortizationFactor(), 4.0);
    EXPECT_GT(r.batchUsefulFlops, 0.0);
    // 484-token members padded to the 511-token bucket edge.
    EXPECT_GT(r.paddingWasteFraction(), 0.0);
    EXPECT_LT(r.paddingWasteFraction(), 1.0);
    double finish = 0.0;
    for (const auto &rec : r.records) {
        EXPECT_EQ(rec.batchSize, 4u);
        EXPECT_GT(rec.compileSeconds, 0.0); // the shared compile
        finish = finish == 0.0 ? rec.finishSeconds : finish;
        EXPECT_DOUBLE_EQ(rec.finishSeconds, finish);
    }
}

TEST(Batching, BatchWaitCoalescesStaggeredArrivals)
{
    // Staggered MSA completions: with no wait the head dispatches
    // alone and the stragglers batch behind it; with a wait budget
    // the head holds until the batch fills.
    const auto requests = burst(4, 5.0);
    auto noWait = fastConfig(4);
    noWait.msaOracle = &serverOracle();
    noWait.batchMax = 4;
    auto withWait = noWait;
    withWait.batchWaitSeconds = 300.0;

    const auto eager = simulateCluster(sys::serverPlatform(),
                                       core::Workspace::shared(),
                                       requests, noWait);
    const auto held = simulateCluster(sys::serverPlatform(),
                                      core::Workspace::shared(),
                                      requests, withWait);
    expectConservation(eager);
    expectConservation(held);
    EXPECT_EQ(held.batchesFormed, 1u);
    EXPECT_EQ(held.maxBatchOccupancy, 4u);
    EXPECT_GT(eager.batchesFormed, held.batchesFormed);
    EXPECT_GT(held.meanBatchOccupancy(),
              eager.meanBatchOccupancy());
}

TEST(Batching, WaitTimerDispatchesLoneHead)
{
    // A head with no co-batchees in sight must not wait forever:
    // the batch-wait timer fires and it dispatches alone, exactly
    // batchWaitSeconds after entering the GPU queue.
    const auto requests = burst(1);
    auto cfg = fastConfig(2);
    cfg.msaOracle = &serverOracle();
    cfg.batchMax = 4;
    cfg.batchWaitSeconds = 50.0;
    const auto r = simulateCluster(sys::serverPlatform(),
                                   core::Workspace::shared(),
                                   requests, cfg);
    expectConservation(r);
    EXPECT_EQ(r.completed, 1u);
    EXPECT_EQ(r.batchesFormed, 1u);
    EXPECT_EQ(r.maxBatchOccupancy, 1u);
    const auto &rec = r.records[0];
    EXPECT_NEAR(rec.gpuStartSeconds, rec.msaEndSeconds + 50.0,
                1e-9);
}

TEST(Batching, VramCapacityGateSplitsOversizedBatches)
{
    // On the 16 GiB desktop the 511-token bucket only fits 6
    // members beside the weights, so an 8-deep queue splits: one
    // capped batch, the remainder queued for the next dispatch.
    const auto requests = burst(8);
    auto cfg = fastConfig(8);
    cfg.msaOracle = &desktopOracle();
    cfg.batchMax = 8;
    const auto r = simulateCluster(sys::desktopPlatform(),
                                   core::Workspace::shared(),
                                   requests, cfg);
    expectConservation(r);
    EXPECT_EQ(r.completed, 8u);
    EXPECT_GE(r.vramBatchSplits, 1u);
    EXPECT_EQ(r.maxBatchOccupancy, 6u);
    EXPECT_EQ(r.batchesFormed, 2u);
    EXPECT_EQ(r.batchedRequests, 8u);
}

TEST(Batching, DataParallelGpusFinishTheBatchSooner)
{
    const auto requests = burst(4);
    auto one = fastConfig(4);
    one.msaOracle = &serverOracle();
    one.batchMax = 4;
    auto four = one;
    four.gpusPerNode = 4;

    const auto g1 = simulateCluster(sys::serverPlatform(),
                                    core::Workspace::shared(),
                                    requests, one);
    const auto g4 = simulateCluster(sys::serverPlatform(),
                                    core::Workspace::shared(),
                                    requests, four);
    expectConservation(g1);
    expectConservation(g4);
    EXPECT_EQ(g1.gpusPerNode, 1u);
    EXPECT_EQ(g4.gpusPerNode, 4u);
    // Same host phases, GPU phase sharded over four devices.
    EXPECT_LT(g4.makespanSeconds, g1.makespanSeconds);
}

TEST(Batching, GpuCrashMidBatchRefundsEveryMember)
{
    // Every non-degraded dispatch crashes: all members of the
    // doomed batches must flow through retry into degradation, and
    // every admitted request still reaches a terminal outcome.
    const auto requests = burst(8);
    auto cfg = fastConfig(8);
    cfg.msaOracle = &serverOracle();
    cfg.batchMax = 4;
    cfg.faultPlan.seed = 0xc0de;
    cfg.faultPlan.gpuCrashProb = 1.0;
    const auto r = simulateCluster(sys::serverPlatform(),
                                   core::Workspace::shared(),
                                   requests, cfg);
    expectConservation(r);
    EXPECT_TRUE(r.faultsEnabled);
    EXPECT_GE(r.faultsInjected, 1u);
    EXPECT_GT(r.retries, 0u);
    EXPECT_GE(r.gpuRespawns, 1u);
    // Nothing ever completes at full quality; the degraded
    // fallback (exempt from injection) absorbs the whole burst.
    EXPECT_EQ(r.completed, 0u);
    EXPECT_EQ(r.degraded, 8u);
    for (const auto &rec : r.records) {
        EXPECT_TRUE(rec.degradedPath);
        EXPECT_GT(rec.gpuAttempts, 1u);
    }
}

TEST(Batching, NodeKillWithBatchingConservesRequests)
{
    // A scripted node kill lands while batched dispatches are in
    // flight; the in-flight members are refunded into the retry
    // path and conservation holds.
    WorkloadSpec spec;
    spec.requestsPerSecond = 0.02;
    spec.durationSeconds = 6000.0;
    spec.seed = 777;
    spec.mix = parseMix("2PV7");
    spec.variantsPerSample = 1; // cache-hot: the GPU queue floods
    const auto requests = generateRequests(spec);

    auto cfg = fastConfig(2);
    cfg.msaOracle = &serverOracle();
    cfg.batchMax = 4;
    cfg.topology = net::datacenterTopology(2);
    fault::NodeKill kill;
    kill.atSeconds = 600.0;
    kill.node = 1;
    cfg.faultPlan.seed = 0xdead;
    cfg.faultPlan.nodeKills.push_back(kill);

    const auto r = simulateCluster(sys::serverPlatform(),
                                   core::Workspace::shared(),
                                   requests, cfg);
    expectConservation(r);
    EXPECT_TRUE(r.multiNode);
    EXPECT_EQ(r.nodeKills, 1u);
    EXPECT_GT(r.batchesFormed, 0u);
}

} // namespace
} // namespace afsb::serve
