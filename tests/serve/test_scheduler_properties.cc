/**
 * @file
 * Seeded property tests for the dispatch queue and the admission
 * controller: 200-seed sweeps asserting ordering and conservation
 * invariants over random workloads. Everything is driven by
 * util::Rng, so a failure reproduces from its seed.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "serve/scheduler.hh"
#include "util/rng.hh"

namespace afsb::serve {
namespace {

constexpr int kSeeds = 200;

std::vector<Request>
randomRequests(Rng &rng, size_t n)
{
    std::vector<Request> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        Request r;
        r.id = i;
        r.tokens = static_cast<size_t>(rng.nextBounded(50)) + 1;
        r.arrivalSeconds = rng.nextDouble() * 100.0;
        out.push_back(r);
    }
    return out;
}

TEST(SchedulerProperties, FifoPopsInPushOrder)
{
    for (int seed = 0; seed < kSeeds; ++seed) {
        Rng rng(static_cast<uint64_t>(seed));
        const size_t n = rng.nextBounded(40) + 1;
        const auto reqs = randomRequests(rng, n);
        DispatchQueue q(SchedPolicy::Fifo);
        for (const auto &r : reqs)
            q.push(r);
        EXPECT_EQ(q.maxDepth(), n);
        for (size_t i = 0; i < n; ++i)
            EXPECT_EQ(q.pop().id, reqs[i].id) << "seed " << seed;
        EXPECT_TRUE(q.empty());
    }
}

TEST(SchedulerProperties, SjfPopsShortestFirstWithIdTieBreak)
{
    for (int seed = 0; seed < kSeeds; ++seed) {
        Rng rng(static_cast<uint64_t>(seed) ^ 0x5f5u);
        const size_t n = rng.nextBounded(40) + 2;
        const auto reqs = randomRequests(rng, n);
        DispatchQueue q(SchedPolicy::Sjf);
        for (const auto &r : reqs)
            q.push(r);
        Request prev = q.pop();
        while (!q.empty()) {
            const Request next = q.pop();
            const bool ordered =
                prev.tokens < next.tokens ||
                (prev.tokens == next.tokens && prev.id < next.id);
            EXPECT_TRUE(ordered)
                << "seed " << seed << ": (" << prev.tokens << ","
                << prev.id << ") before (" << next.tokens << ","
                << next.id << ")";
            prev = next;
        }
    }
}

TEST(SchedulerProperties, PoliciesDrainTheSameMultiset)
{
    for (int seed = 0; seed < kSeeds; ++seed) {
        Rng rng(static_cast<uint64_t>(seed) ^ 0xabcdu);
        const auto reqs =
            randomRequests(rng, rng.nextBounded(30) + 1);
        std::vector<uint64_t> fifoIds, sjfIds;
        for (auto policy :
             {SchedPolicy::Fifo, SchedPolicy::Sjf}) {
            DispatchQueue q(policy);
            for (const auto &r : reqs)
                q.push(r);
            auto &ids = policy == SchedPolicy::Fifo ? fifoIds
                                                    : sjfIds;
            while (!q.empty())
                ids.push_back(q.pop().id);
        }
        std::sort(fifoIds.begin(), fifoIds.end());
        std::sort(sjfIds.begin(), sjfIds.end());
        EXPECT_EQ(fifoIds, sjfIds) << "seed " << seed;
    }
}

TEST(SchedulerProperties, AdmissionConservesAndBoundsPopulation)
{
    for (int seed = 0; seed < kSeeds; ++seed) {
        Rng rng(static_cast<uint64_t>(seed) ^ 0x7777u);
        const size_t cap = rng.nextBounded(8) + 1;
        AdmissionController adm(cap);
        uint64_t attempts = 0, admitted = 0, released = 0;
        for (int step = 0; step < 500; ++step) {
            if (adm.inSystem() > 0 && rng.nextBool(0.45)) {
                adm.release();
                ++released;
            } else {
                ++attempts;
                if (adm.tryAdmit())
                    ++admitted;
            }
            EXPECT_LE(adm.inSystem(), cap) << "seed " << seed;
        }
        EXPECT_EQ(admitted + adm.shedCount(), attempts)
            << "seed " << seed;
        EXPECT_EQ(admitted - released, adm.inSystem())
            << "seed " << seed;
        EXPECT_LE(adm.maxInSystem(), cap);
        // Drain: in-system population returns to zero.
        while (adm.inSystem() > 0)
            adm.release();
        EXPECT_EQ(adm.inSystem(), 0u);
    }
}

} // namespace
} // namespace afsb::serve
