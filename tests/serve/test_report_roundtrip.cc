/**
 * @file
 * SLO-report round-trip tests: canonicalSloText -> parseSloText ->
 * canonicalSloText must be the identity on bytes, for every section
 * combination (base, +fault, +net, +both). The %.3f rounding in the
 * canonical form is a fixed point, so the byte-compare is exact.
 */

#include <gtest/gtest.h>

#include "core/workspace.hh"
#include "fault/fault.hh"
#include "serve/cluster.hh"
#include "serve/report.hh"
#include "util/logging.hh"

namespace afsb::serve {
namespace {

ClusterConfig
fastConfig()
{
    ClusterConfig cfg;
    cfg.msaWorkers = 2;
    cfg.gpuWorkers = 1;
    cfg.msaThreadsPerWorker = 2;
    cfg.msaOptions.traceStride = 16;
    cfg.msaOptions.jackhmmerIterations = 1;
    return cfg;
}

std::vector<Request>
smallWorkload()
{
    WorkloadSpec spec;
    spec.requestsPerSecond = 0.02;
    spec.durationSeconds = 2000.0;
    spec.seed = 777;
    spec.mix = parseMix("2PV7");
    spec.variantsPerSample = 2;
    return generateRequests(spec);
}

std::string
runToText(ClusterConfig cfg)
{
    static MsaServiceOracle oracle;
    cfg.msaOracle = &oracle;
    const auto r = simulateCluster(sys::serverPlatform(),
                                   core::Workspace::shared(),
                                   smallWorkload(), cfg);
    return canonicalSloText(buildSloReport(r));
}

void
expectRoundTrip(const std::string &text)
{
    const SloReport parsed = parseSloText(text);
    EXPECT_EQ(canonicalSloText(parsed), text);
}

TEST(ReportRoundTrip, FaultFreeSingleNode)
{
    const std::string text = runToText(fastConfig());
    EXPECT_EQ(text.find("faults_injected"), std::string::npos);
    EXPECT_EQ(text.find("nodes="), std::string::npos);
    expectRoundTrip(text);
}

TEST(ReportRoundTrip, FaultSection)
{
    auto cfg = fastConfig();
    cfg.faultPlan.seed = 0xc4a05;
    cfg.faultPlan.msaCrashProb = 0.15;
    cfg.faultPlan.gpuCrashProb = 0.10;
    cfg.faultPlan.cacheCorruptProb = 0.20;
    const std::string text = runToText(cfg);
    EXPECT_NE(text.find("faults_injected="), std::string::npos);
    expectRoundTrip(text);
}

TEST(ReportRoundTrip, NetSection)
{
    auto cfg = fastConfig();
    cfg.topology = net::datacenterTopology(3);
    const std::string text = runToText(cfg);
    EXPECT_NE(text.find("nodes=3\n"), std::string::npos);
    EXPECT_NE(text.find("link_"), std::string::npos);
    expectRoundTrip(text);
}

TEST(ReportRoundTrip, FaultAndNetSections)
{
    auto cfg = fastConfig();
    cfg.topology = net::datacenterTopology(4);
    cfg.faultPlan.seed = 0xdead;
    cfg.faultPlan.msaCrashProb = 0.10;
    fault::NodeKill kill;
    kill.atSeconds = 600.0;
    kill.node = 2;
    kill.rebuildSeconds = 300.0;
    cfg.faultPlan.nodeKills.push_back(kill);
    const std::string text = runToText(cfg);
    EXPECT_NE(text.find("faults_injected="), std::string::npos);
    EXPECT_NE(text.find("node_kills=1\n"), std::string::npos);
    EXPECT_NE(text.find("node_rebuilds=1\n"), std::string::npos);
    expectRoundTrip(text);
}

TEST(ReportRoundTrip, BatchingSection)
{
    auto cfg = fastConfig();
    cfg.batchMax = 4;
    const std::string text = runToText(cfg);
    EXPECT_NE(text.find("batches_formed="), std::string::npos);
    EXPECT_NE(text.find("batch_gpus_per_node=1\n"),
              std::string::npos);
    expectRoundTrip(text);

    // Solo dispatch must not leak the section: its text stays
    // byte-identical to the pre-batching report.
    const std::string solo = runToText(fastConfig());
    EXPECT_EQ(solo.find("batches_formed"), std::string::npos);
}

TEST(ReportRoundTrip, BatchingWithFaultAndNetSections)
{
    auto cfg = fastConfig();
    cfg.batchMax = 4;
    cfg.gpusPerNode = 2;
    cfg.topology = net::datacenterTopology(2);
    cfg.faultPlan.seed = 0xbead;
    cfg.faultPlan.gpuCrashProb = 0.10;
    const std::string text = runToText(cfg);
    EXPECT_NE(text.find("batches_formed="), std::string::npos);
    EXPECT_NE(text.find("batch_gpus_per_node=2\n"),
              std::string::npos);
    EXPECT_NE(text.find("faults_injected="), std::string::npos);
    EXPECT_NE(text.find("nodes=2\n"), std::string::npos);
    expectRoundTrip(text);
}

TEST(ReportRoundTrip, SimilaritySection)
{
    WorkloadSpec spec;
    spec.requestsPerSecond = 0.02;
    spec.durationSeconds = 4000.0;
    spec.seed = 777;
    spec.mix = parseMix("2PV7");
    spec.variantsPerSample = 1;
    spec.mutationRate = 0.01;

    static MsaServiceOracle oracle;
    auto cfg = fastConfig();
    cfg.msaOracle = &oracle;
    cfg.msaCacheBudgetBytes = 512ull << 20;
    cfg.simCacheThreshold = 0.6;
    const auto r = simulateCluster(sys::serverPlatform(),
                                   core::Workspace::shared(),
                                   generateRequests(spec), cfg);
    const auto rep = buildSloReport(r);
    ASSERT_TRUE(rep.simCacheEnabled);
    const std::string text = canonicalSloText(rep);
    EXPECT_NE(text.find("sim_cache_threshold="), std::string::npos);
    EXPECT_NE(text.find("sim_approx_hits="), std::string::npos);
    expectRoundTrip(text);

    const auto parsed = parseSloText(text);
    EXPECT_TRUE(parsed.simCacheEnabled);
    EXPECT_EQ(parsed.sim.approxLookups, rep.sim.approxLookups);
    EXPECT_EQ(parsed.sim.approxHits, rep.sim.approxHits);
    EXPECT_EQ(parsed.sim.deltaFallbacks, rep.sim.deltaFallbacks);
    EXPECT_EQ(parsed.sim.remoteApproxProbes,
              rep.sim.remoteApproxProbes);
    EXPECT_EQ(parsed.sim.remoteApproxHits,
              rep.sim.remoteApproxHits);

    // Threshold off: no sim section leaks into the text.
    const std::string off = runToText(fastConfig());
    EXPECT_EQ(off.find("sim_cache_threshold"), std::string::npos);
}

TEST(ReportRoundTrip, ParsedBatchingFieldsMatchTheReport)
{
    static MsaServiceOracle oracle;
    auto cfg = fastConfig();
    cfg.msaOracle = &oracle;
    cfg.batchMax = 4;
    const auto r = simulateCluster(sys::serverPlatform(),
                                   core::Workspace::shared(),
                                   smallWorkload(), cfg);
    const auto rep = buildSloReport(r);
    ASSERT_TRUE(rep.batchingEnabled);
    const auto parsed = parseSloText(canonicalSloText(rep));
    EXPECT_TRUE(parsed.batchingEnabled);
    EXPECT_EQ(parsed.batch.batchesFormed, rep.batch.batchesFormed);
    EXPECT_EQ(parsed.batch.batchedRequests,
              rep.batch.batchedRequests);
    EXPECT_EQ(parsed.batch.maxOccupancy, rep.batch.maxOccupancy);
    EXPECT_EQ(parsed.batch.batchCompiles, rep.batch.batchCompiles);
    EXPECT_EQ(parsed.batch.vramSplits, rep.batch.vramSplits);
    EXPECT_EQ(parsed.batch.gpusPerNode, rep.batch.gpusPerNode);
    EXPECT_NEAR(parsed.batch.meanOccupancy,
                rep.batch.meanOccupancy, 5e-4);
}

TEST(ReportRoundTrip, ParsedFieldsMatchTheReport)
{
    static MsaServiceOracle oracle;
    auto cfg = fastConfig();
    cfg.msaOracle = &oracle;
    cfg.topology = net::datacenterTopology(2);
    const auto r = simulateCluster(sys::serverPlatform(),
                                   core::Workspace::shared(),
                                   smallWorkload(), cfg);
    const auto rep = buildSloReport(r);
    const auto parsed = parseSloText(canonicalSloText(rep));
    EXPECT_EQ(parsed.offered, rep.offered);
    EXPECT_EQ(parsed.completed, rep.completed);
    EXPECT_EQ(parsed.shed, rep.shed);
    EXPECT_TRUE(parsed.multiNode);
    EXPECT_EQ(parsed.net.nodes, rep.net.nodes);
    EXPECT_EQ(parsed.net.perNode.size(), rep.net.perNode.size());
    EXPECT_EQ(parsed.net.links.size(), rep.net.links.size());
    EXPECT_NEAR(parsed.latency.p99, rep.latency.p99, 5e-4);
}

TEST(ReportRoundTrip, ParseRejectsMalformedText)
{
    const std::string text = runToText(fastConfig());
    EXPECT_THROW(parseSloText("not a report"), FatalError);
    // Missing trailing newline.
    EXPECT_THROW(parseSloText(text.substr(0, text.size() - 1)),
                 FatalError);
    // A line without '='.
    EXPECT_THROW(parseSloText("offered\n"), FatalError);
    // Keys out of canonical order: swap the first two lines.
    const size_t firstEol = text.find('\n');
    const size_t secondEol = text.find('\n', firstEol + 1);
    const std::string swapped =
        text.substr(firstEol + 1, secondEol - firstEol) +
        text.substr(0, firstEol + 1) + text.substr(secondEol + 1);
    EXPECT_THROW(parseSloText(swapped), FatalError);
    // Trailing unknown key.
    EXPECT_THROW(parseSloText(text + "mystery=1\n"), FatalError);
}

} // namespace
} // namespace afsb::serve
