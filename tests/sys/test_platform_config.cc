/**
 * @file
 * Platform-as-data tests: JSON round-trips of every builtin spec,
 * strict rejection of malformed configs (unknown keys, bad
 * format/version, negative sizes), and loading of the three
 * committed configs under configs/platforms/.
 */

#include <string>

#include <gtest/gtest.h>

#include "sys/platform_config.hh"
#include "util/logging.hh"

using namespace afsb;

namespace {

std::string
configPath(const char *file)
{
    return std::string(AFSB_REPO_ROOT) + "/configs/platforms/" +
           file;
}

} // namespace

TEST(PlatformConfig, BuiltinSpecsRoundTripThroughJson)
{
    for (const auto &name : sys::builtinPlatformNames()) {
        const auto spec = sys::resolvePlatform(name);
        const auto doc = sys::platformToJson(spec);
        const auto back = sys::platformFromJson(doc, name);
        // PlatformSpec has no operator==; the canonical JSON dump
        // is the equality witness.
        EXPECT_EQ(sys::platformToJson(back).dumpPretty(),
                  doc.dumpPretty())
            << name;
        EXPECT_EQ(back.name, spec.name);
        EXPECT_EQ(back.cpu.cores, spec.cpu.cores);
        EXPECT_EQ(back.cpu.vectorFlopsPerCycle,
                  spec.cpu.vectorFlopsPerCycle);
        EXPECT_EQ(back.gpu.vramBytes, spec.gpu.vramBytes);
    }
}

TEST(PlatformConfig, TextualRoundTripSurvivesReparse)
{
    const auto spec = sys::serverPlatform();
    const std::string dumped =
        sys::platformToJson(spec).dumpPretty();
    const auto back =
        sys::platformFromJson(parseJson(dumped), "reparse");
    EXPECT_EQ(sys::platformToJson(back).dumpPretty(), dumped);
}

TEST(PlatformConfig, UnknownKeysAreHardErrors)
{
    auto doc = sys::platformToJson(sys::serverPlatform());
    doc["cpu"]["frequncy_ghz"] = JsonValue(3.0);  // typoed knob
    EXPECT_THROW(sys::platformFromJson(doc, "t"), FatalError);

    doc = sys::platformToJson(sys::serverPlatform());
    doc["acceleratorz"] = JsonValue::makeObject();
    EXPECT_THROW(sys::platformFromJson(doc, "t"), FatalError);

    doc = sys::platformToJson(sys::serverPlatform());
    doc["gpu"]["hbm"] = JsonValue(1.0);
    EXPECT_THROW(sys::platformFromJson(doc, "t"), FatalError);
}

TEST(PlatformConfig, HeaderAndValueViolationsAreHardErrors)
{
    auto doc = sys::platformToJson(sys::serverPlatform());
    doc["format"] = "afsb-toaster";
    EXPECT_THROW(sys::platformFromJson(doc, "t"), FatalError);

    doc = sys::platformToJson(sys::serverPlatform());
    doc["version"] = 2;
    EXPECT_THROW(sys::platformFromJson(doc, "t"), FatalError);

    doc = sys::platformToJson(sys::serverPlatform());
    doc["gpu"]["vram_bytes"] = -1;
    EXPECT_THROW(sys::platformFromJson(doc, "t"), FatalError);

    doc = sys::platformToJson(sys::serverPlatform());
    doc["cpu"]["cores"] = 0;
    EXPECT_THROW(sys::platformFromJson(doc, "t"), FatalError);

    doc = sys::platformToJson(sys::serverPlatform());
    doc["name"] = "";
    EXPECT_THROW(sys::platformFromJson(doc, "t"), FatalError);
}

TEST(PlatformConfig, CommittedConfigsLoadWithExpectedTraits)
{
    const auto riscv =
        sys::loadPlatformFile(configPath("riscv-cpu.json"));
    EXPECT_EQ(riscv.name, "RISCV-Vector");
    EXPECT_EQ(riscv.cpu.vendor, "riscv");
    // Unified SoC: the on-die engine sees all of DRAM, so the
    // inference path never spills.
    EXPECT_EQ(riscv.gpu.vramBytes, riscv.memory.dramBytes);
    EXPECT_EQ(riscv.cpu.vectorFlopsPerCycle, 16.0);

    const auto cxl =
        sys::loadPlatformFile(configPath("cxl-tiered.json"));
    EXPECT_EQ(cxl.name, "CXL-Tiered");
    EXPECT_GT(cxl.memory.cxlBytes, 0u);
    EXPECT_GT(cxl.memory.cxlLatencyFactor, 1.0);

    const auto small =
        sys::loadPlatformFile(configPath("small-vram.json"));
    EXPECT_EQ(small.name, "SmallVRAM");
    EXPECT_EQ(small.gpu.vramBytes, uint64_t{8} << 30);
    EXPECT_GT(small.gpu.unifiedMemPenalty, 1.0);
}

TEST(PlatformConfig, ResolveAcceptsBuiltinsAndPathsOnly)
{
    for (const auto &name : sys::builtinPlatformNames())
        EXPECT_NO_THROW(sys::resolvePlatform(name)) << name;
    EXPECT_EQ(sys::resolvePlatform("server").name,
              sys::serverPlatform().name);
    EXPECT_EQ(
        sys::resolvePlatform(configPath("small-vram.json")).name,
        "SmallVRAM");
    EXPECT_THROW(sys::resolvePlatform("toaster"), FatalError);
    EXPECT_THROW(sys::resolvePlatform("/no/such/file.json"),
                 FatalError);
}

TEST(PlatformConfig, MalformedFixtureFilesAreRejected)
{
    const std::string fixtures =
        std::string(AFSB_REPO_ROOT) + "/tests/data/platforms/";
    EXPECT_THROW(
        sys::loadPlatformFile(fixtures + "bad_unknown_key.json"),
        FatalError);
    EXPECT_THROW(
        sys::loadPlatformFile(fixtures + "bad_format.json"),
        FatalError);
    // Valid JSON object followed by trailing garbage: the strict
    // JSON parser must not silently accept the prefix.
    EXPECT_THROW(
        sys::loadPlatformFile(fixtures + "bad_trailing.json"),
        FatalError);
}
