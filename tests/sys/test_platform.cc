/**
 * @file
 * Tests that platform specs match the paper's Table I and that the
 * memory model reproduces the Section III-C capacity semantics.
 */

#include <gtest/gtest.h>

#include "msa/memory_model.hh"
#include "sys/memory_model.hh"
#include "sys/platform.hh"
#include "util/units.hh"

namespace afsb::sys {
namespace {

TEST(Platform, ServerMatchesTableI)
{
    const auto p = serverPlatform();
    EXPECT_EQ(p.name, "Server");
    EXPECT_EQ(p.cpu.vendor, "intel");
    EXPECT_EQ(p.cpu.cores, 16u);
    EXPECT_EQ(p.cpu.threads, 32u);
    EXPECT_DOUBLE_EQ(p.cpu.baseClockGhz, 2.0);
    EXPECT_DOUBLE_EQ(p.cpu.maxClockGhz, 4.0);
    EXPECT_EQ(p.cpu.llc.size, 30 * MiB);
    EXPECT_EQ(p.cpu.l2.size, 2 * MiB);
    EXPECT_EQ(p.memory.dramBytes, 512 * GiB);
    EXPECT_EQ(p.gpu.vramBytes, 80 * GiB);
}

TEST(Platform, DesktopMatchesTableI)
{
    const auto p = desktopPlatform();
    EXPECT_EQ(p.cpu.vendor, "amd");
    EXPECT_EQ(p.cpu.cores, 12u);
    EXPECT_EQ(p.cpu.threads, 24u);
    EXPECT_DOUBLE_EQ(p.cpu.baseClockGhz, 4.7);
    EXPECT_DOUBLE_EQ(p.cpu.maxClockGhz, 5.6);
    EXPECT_EQ(p.cpu.llc.size, 64 * MiB);
    EXPECT_EQ(p.cpu.l2.size, 1 * MiB);
    EXPECT_EQ(p.memory.dramBytes, 64 * GiB);
    EXPECT_EQ(p.gpu.vramBytes, 16 * GiB);
}

TEST(Platform, VariantsAdjustMemory)
{
    EXPECT_EQ(serverPlatformWithCxl().totalMemoryBytes(),
              768 * GiB);
    EXPECT_EQ(desktopPlatformUpgraded().memory.dramBytes,
              128 * GiB);
}

TEST(Platform, ClockTapersWithActiveCores)
{
    const auto p = desktopPlatform();
    EXPECT_DOUBLE_EQ(p.effectiveClockGhz(1), 5.6);
    EXPECT_DOUBLE_EQ(p.effectiveClockGhz(12), 5.1);
    EXPECT_DOUBLE_EQ(p.effectiveClockGhz(64), 5.1);
    EXPECT_GT(p.effectiveClockGhz(4), p.effectiveClockGhz(8));
    // Desktop clocks dominate Server clocks at every thread count.
    const auto s = serverPlatform();
    for (uint32_t t = 1; t <= 16; ++t)
        EXPECT_GT(p.effectiveClockGhz(t), s.effectiveClockGhz(t));
}

TEST(MemoryModel, ClassifiesTiers)
{
    MemoryModel m(serverPlatformWithCxl().memory);
    EXPECT_EQ(m.classify(100 * GiB), MemFit::FitsDram);
    EXPECT_EQ(m.classify(600 * GiB), MemFit::NeedsCxl);
    EXPECT_EQ(m.classify(800 * GiB), MemFit::Oom);
}

TEST(MemoryModel, Fig2PlacementsReproduce)
{
    // 644 GiB (1135-nt RNA) completes only with CXL; 1335-nt fails
    // even with it.
    MemoryModel noCxl(serverPlatform().memory);
    MemoryModel withCxl(serverPlatformWithCxl().memory);
    const uint64_t rna1135 = msa::nhmmerPeakMemoryBytes(1135);
    const uint64_t rna1335 = msa::nhmmerPeakMemoryBytes(1335);
    EXPECT_EQ(noCxl.classify(rna1135), MemFit::Oom);
    EXPECT_EQ(withCxl.classify(rna1135), MemFit::NeedsCxl);
    EXPECT_EQ(withCxl.classify(rna1335), MemFit::Oom);
    // 935-nt (506 GiB) still fits plain server DRAM.
    EXPECT_EQ(noCxl.classify(msa::nhmmerPeakMemoryBytes(935)),
              MemFit::FitsDram);
}

TEST(MemoryModel, AllocateTracksPeakAndOom)
{
    MemoryModel m(desktopPlatform().memory);  // 64 GiB, no CXL
    EXPECT_EQ(m.allocate(40 * GiB), MemFit::FitsDram);
    EXPECT_EQ(m.allocate(40 * GiB), MemFit::Oom);
    EXPECT_EQ(m.inUse(), 40 * GiB);  // OOM allocation not recorded
    m.release(10 * GiB);
    EXPECT_EQ(m.inUse(), 30 * GiB);
    EXPECT_EQ(m.peak(), 40 * GiB);
}

TEST(MemoryModel, CxlSpillRaisesLatencyFactor)
{
    MemoryModel m(serverPlatformWithCxl().memory);
    EXPECT_EQ(m.allocate(600 * GiB), MemFit::NeedsCxl);
    EXPECT_GT(m.cxlResident(), 0u);
    EXPECT_GT(m.latencyFactor(), 1.0);
    EXPECT_LT(m.latencyFactor(),
              m.spec().cxlLatencyFactor + 1e-9);
}

} // namespace
} // namespace afsb::sys
