/**
 * @file
 * Tests for the profiling toolkit.
 */

#include <gtest/gtest.h>

#include "prof/perf_report.hh"
#include "prof/phase_profiler.hh"
#include "prof/repetition.hh"
#include "util/memtrace.hh"

namespace afsb::prof {
namespace {

TEST(PhaseProfiler, RecordsAndShares)
{
    PhaseProfiler p;
    p.record("msa", 80.0);
    p.record("inference", 20.0);
    p.recordSub("inference", "xla_compile", 8.0);
    EXPECT_DOUBLE_EQ(p.totalSeconds(), 100.0);
    EXPECT_DOUBLE_EQ(p.share("msa"), 0.8);
    EXPECT_DOUBLE_EQ(p.seconds("xla_compile"), 8.0);
    // Repeated records accumulate.
    p.record("msa", 20.0);
    EXPECT_DOUBLE_EQ(p.seconds("msa"), 100.0);
    EXPECT_FALSE(p.render().empty());
}

TEST(PhaseProfiler, MissingPhaseIsZero)
{
    PhaseProfiler p;
    EXPECT_DOUBLE_EQ(p.seconds("nope"), 0.0);
    EXPECT_DOUBLE_EQ(p.share("nope"), 0.0);
    EXPECT_DOUBLE_EQ(p.totalSeconds(), 0.0);
}

TEST(PerfReport, SharesSumToHundred)
{
    std::vector<cachesim::FuncCounters> funcs(3);
    funcs[0].instructions = 1'000'000;
    funcs[0].accesses = 100'000;
    funcs[0].l1Misses = 5'000;
    funcs[0].l2Misses = 900;
    funcs[0].llcMisses = 400;
    funcs[1].instructions = 500'000;
    funcs[1].accesses = 80'000;
    funcs[1].l1Misses = 20'000;
    funcs[1].l2Misses = 15'000;
    funcs[1].llcMisses = 12'000;
    funcs[2].instructions = 100;

    const auto report = buildFunctionReport(
        funcs, sys::serverPlatform().cpu);
    double cyclesSum = 0.0, missSum = 0.0;
    for (const auto &row : report) {
        cyclesSum += row.cyclesPct;
        missSum += row.cacheMissPct;
    }
    EXPECT_NEAR(cyclesSum, 100.0, 1e-6);
    EXPECT_NEAR(missSum, 100.0, 1e-6);
}

TEST(PerfReport, MemoryBoundFunctionGainsCycleShare)
{
    // Two functions with equal instructions: the one with heavy
    // misses must get the larger cycle share.
    std::vector<cachesim::FuncCounters> funcs(2);
    funcs[0].instructions = 1'000'000;
    funcs[1].instructions = 1'000'000;
    funcs[1].l1Misses = 100'000;
    funcs[1].l2Misses = 90'000;
    funcs[1].llcMisses = 80'000;
    const auto report = buildFunctionReport(
        funcs, sys::desktopPlatform().cpu);
    ASSERT_EQ(report.size(), 2u);
    // Sorted descending: the memory-bound one leads.
    EXPECT_GT(report[0].cyclesPct, report[1].cyclesPct);
    EXPECT_GT(report[0].cacheMissPct, 99.0);
}

TEST(PerfReport, FindByName)
{
    // Use registered well-known names.
    const FuncId calc9 = wellknown::calcBand9();
    std::vector<cachesim::FuncCounters> funcs(calc9 + size_t{1});
    funcs[calc9].instructions = 100;
    const auto report = buildFunctionReport(
        funcs, sys::serverPlatform().cpu);
    EXPECT_NE(findFunction(report, "calc_band_9"), nullptr);
    EXPECT_EQ(findFunction(report, "no_such_symbol"), nullptr);
}

TEST(Repetition, CollectsStatsAndChecksCv)
{
    size_t calls = 0;
    const auto stable = repeatMeasurement(5, [&](size_t run) {
        ++calls;
        return 100.0 + static_cast<double>(run) * 0.1;
    });
    EXPECT_EQ(calls, 5u);
    EXPECT_EQ(stable.stats.count(), 5u);
    EXPECT_TRUE(stable.stable());

    const auto unstable = repeatMeasurement(
        5,
        [](size_t run) { return run % 2 ? 200.0 : 100.0; },
        0.01);
    EXPECT_FALSE(unstable.stable());
}

TEST(Repetition, KeepsSamplesAndReportsPercentiles)
{
    const auto rep = repeatMeasurement(5, [](size_t run) {
        return 10.0 + static_cast<double>(run);
    });
    ASSERT_EQ(rep.samples.size(), 5u);
    EXPECT_DOUBLE_EQ(rep.samples.front(), 10.0);
    EXPECT_DOUBLE_EQ(rep.samples.back(), 14.0);
    EXPECT_DOUBLE_EQ(rep.median(), 12.0);
    const auto p = rep.percentiles();
    EXPECT_DOUBLE_EQ(p.p50, 12.0);
    EXPECT_GE(p.p95, p.p50);
    EXPECT_GE(p.p99, p.p95);
    EXPECT_LE(p.p99, 14.0);
}

} // namespace
} // namespace afsb::prof
