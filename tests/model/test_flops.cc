/**
 * @file
 * Tests for the analytic FLOP/traffic model, including the scaling
 * shapes the paper reports (cubic triangle attention, Table VI
 * ratios, VRAM pressure at 6QNR scale).
 */

#include <gtest/gtest.h>

#include "model/flops.hh"
#include "util/units.hh"

namespace afsb::model {
namespace {

TEST(Flops, TriangleAttentionIsCubic)
{
    const auto cfg = paperConfig();
    const auto c1 =
        layerCost(LayerKind::TriangleAttnStarting, 500, cfg);
    const auto c2 =
        layerCost(LayerKind::TriangleAttnStarting, 1000, cfg);
    // Doubling N: the cubic term dominates at these sizes.
    EXPECT_GT(c2.flops / c1.flops, 6.0);
    EXPECT_LT(c2.flops / c1.flops, 8.5);
}

TEST(Flops, PairTransitionIsQuadratic)
{
    const auto cfg = paperConfig();
    const auto c1 = layerCost(LayerKind::PairTransition, 500, cfg);
    const auto c2 = layerCost(LayerKind::PairTransition, 1000, cfg);
    EXPECT_NEAR(c2.flops / c1.flops, 4.0, 0.01);
}

TEST(Flops, GraphCountsMatchArchitecture)
{
    const auto cfg = paperConfig();
    const auto graph = operatorGraph(850, cfg);
    uint32_t triangleAttnCount = 0;
    uint32_t globalAttnCount = 0;
    for (const auto &l : graph) {
        if (l.kind == LayerKind::TriangleAttnStarting ||
            l.kind == LayerKind::TriangleAttnEnding)
            triangleAttnCount += l.count;
        if (l.kind == LayerKind::GlobalAttention)
            globalAttnCount += l.count;
    }
    EXPECT_EQ(triangleAttnCount,
              2 * 48u * cfg.recyclingIterations);
    EXPECT_EQ(globalAttnCount,
              cfg.diffusionSteps * cfg.diffusionSamples);
}

TEST(Flops, PairformerDominatedByTriangleLayers)
{
    // Fig 9: triangle attention + mult update are the Pairformer
    // hotspots.
    const auto cfg = paperConfig();
    const auto graph = operatorGraph(484, cfg);
    double triangle = 0.0, pairformer = 0.0;
    for (const auto &l : graph) {
        if (!isPairformerLayer(l.kind))
            continue;
        pairformer += l.cost.flops * l.count;
        if (l.kind == LayerKind::TriangleAttnStarting ||
            l.kind == LayerKind::TriangleAttnEnding ||
            l.kind == LayerKind::TriangleMultOutgoing ||
            l.kind == LayerKind::TriangleMultIncoming)
            triangle += l.cost.flops * l.count;
    }
    EXPECT_GT(triangle / pairformer, 0.4);
}

TEST(Flops, GlobalAttentionDominatesDiffusion)
{
    // Fig 9: global attention is the largest Diffusion component
    // and its share grows with N.
    const auto cfg = paperConfig();
    auto shareAt = [&](size_t n) {
        const auto graph = operatorGraph(n, cfg);
        double global = 0.0, diffusion = 0.0;
        for (const auto &l : graph) {
            if (!isDiffusionLayer(l.kind))
                continue;
            diffusion += l.cost.flops * l.count;
            if (l.kind == LayerKind::GlobalAttention)
                global += l.cost.flops * l.count;
        }
        return global / diffusion;
    };
    EXPECT_GT(shareAt(857), shareAt(484));
    EXPECT_GT(shareAt(484), 0.25);
}

TEST(Flops, TotalGrowsSuperQuadratically)
{
    const auto cfg = paperConfig();
    const double f484 = totalFlops(operatorGraph(484, cfg));
    const double f857 = totalFlops(operatorGraph(857, cfg));
    const double lengthRatio = 857.0 / 484.0;  // 1.77x
    const double flopRatio = f857 / f484;
    EXPECT_GT(flopRatio, lengthRatio * lengthRatio);        // > 3.1x
    EXPECT_LT(flopRatio, lengthRatio * lengthRatio *
                             lengthRatio);                  // < 5.5x
}

TEST(Flops, ActivationsExceed4080VramFor6qnr)
{
    // Section III-B: 6QNR (1395 tokens) exceeded the RTX 4080's
    // 16 GB, requiring AF3's unified-memory fallback, while the
    // H100's 80 GB held it.
    const auto cfg = paperConfig();
    const uint64_t act6qnr = activationBytes(1395, cfg);
    EXPECT_GT(act6qnr + weightBytes(cfg), 16 * GiB);
    EXPECT_LT(act6qnr + weightBytes(cfg), 80 * GiB);
    // Mid-size inputs fit the 4080.
    EXPECT_LT(activationBytes(857, cfg) + weightBytes(cfg),
              16 * GiB);
}

TEST(Flops, LayerNamesAreUnique)
{
    const auto cfg = paperConfig();
    const auto graph = operatorGraph(100, cfg);
    std::vector<std::string> names;
    for (const auto &l : graph)
        names.push_back(layerKindName(l.kind));
    auto sorted = names;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                sorted.end());
}

TEST(Flops, KernelCountsPositive)
{
    const auto cfg = paperConfig();
    for (const auto &l : operatorGraph(300, cfg)) {
        EXPECT_GT(l.cost.kernels, 0u) << layerKindName(l.kind);
        EXPECT_GT(l.cost.flops, 0.0) << layerKindName(l.kind);
        EXPECT_GT(l.cost.bytes, 0.0) << layerKindName(l.kind);
    }
}

} // namespace
} // namespace afsb::model
