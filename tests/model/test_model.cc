/**
 * @file
 * Integration tests for the assembled mini AF3 model: embedder,
 * Pairformer stack, Diffusion module, and the layer profile.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "bio/samples.hh"
#include "bio/seqgen.hh"
#include "model/af3_model.hh"
#include "util/logging.hh"

namespace afsb::model {
namespace {

bio::Complex
smallComplex(size_t protein_len = 24, size_t dna_len = 8)
{
    bio::SequenceGenerator gen(55);
    bio::Complex c("test");
    c.addChain(
        gen.random("A", bio::MoleculeType::Protein, protein_len));
    c.addChain(gen.random("D", bio::MoleculeType::Dna, dna_len));
    return c;
}

TEST(Embedder, ShapesAndChainStructure)
{
    const auto cfg = miniConfig();
    Rng rng(1);
    const auto w = EmbedderWeights::init(cfg, rng);
    const auto complexInput = smallComplex();
    const auto state =
        embedInput(complexInput, MsaFeatures{}, w, cfg);
    const size_t n = complexInput.totalResidues();
    EXPECT_EQ(state.pair.shape(),
              (std::vector<size_t>{n, n, cfg.pairDim}));
    EXPECT_EQ(state.single.shape(),
              (std::vector<size_t>{n, cfg.singleDim}));
    EXPECT_FALSE(state.pair.hasNonFinite());

    // Same-chain pairs at equal offsets share an embedding row;
    // cross-chain pairs use the distinct bucket.
    bool sameChainEqual = true;
    for (size_t d = 0; d < cfg.pairDim; ++d)
        sameChainEqual &= state.pair.at(0, 1, d) ==
                          state.pair.at(1, 2, d);
    EXPECT_TRUE(sameChainEqual);
    double crossDiff = 0.0;
    for (size_t d = 0; d < cfg.pairDim; ++d)
        crossDiff += std::abs(state.pair.at(0, 1, d) -
                              state.pair.at(0, 25, d));
    EXPECT_GT(crossDiff, 1e-3);
}

TEST(Embedder, MsaDepthShiftsSingleRepresentation)
{
    const auto cfg = miniConfig();
    Rng rng(2);
    const auto w = EmbedderWeights::init(cfg, rng);
    const auto complexInput = smallComplex();
    MsaFeatures deep;
    deep.depthPerChain = {200, 0};
    const auto without =
        embedInput(complexInput, MsaFeatures{}, w, cfg);
    const auto with = embedInput(complexInput, deep, w, cfg);
    EXPECT_GT(tensor::meanAbsDiff(with.single, without.single),
              1e-4);
    EXPECT_THROW(embedInput(complexInput,
                            MsaFeatures{{1, 2, 3}}, w, cfg),
                 FatalError);
}

TEST(NoiseSchedule, GeometricDecay)
{
    const auto s = noiseSchedule(8, 160.0, 0.05);
    ASSERT_EQ(s.size(), 8u);
    EXPECT_DOUBLE_EQ(s.front(), 160.0);
    EXPECT_NEAR(s.back(), 0.05, 1e-9);
    for (size_t i = 1; i < s.size(); ++i) {
        EXPECT_LT(s[i], s[i - 1]);
        // Constant ratio.
        EXPECT_NEAR(s[i] / s[i - 1], s[1] / s[0], 1e-9);
    }
}

TEST(Af3Model, EndToEndInferenceProducesFiniteStructure)
{
    const auto cfg = miniConfig();
    Af3Model model(cfg, 42);
    const auto complexInput = smallComplex();
    const auto result = model.infer(complexInput, MsaFeatures{}, 1);
    EXPECT_EQ(result.structure.coords.shape(),
              (std::vector<size_t>{complexInput.totalResidues(), 3}));
    EXPECT_FALSE(result.structure.coords.hasNonFinite());
}

TEST(Af3Model, InferenceIsDeterministicPerSeed)
{
    const auto cfg = miniConfig();
    Af3Model model(cfg, 42);
    const auto complexInput = smallComplex();
    const auto r1 = model.infer(complexInput, MsaFeatures{}, 7);
    const auto r2 = model.infer(complexInput, MsaFeatures{}, 7);
    EXPECT_TRUE(r1.structure.coords == r2.structure.coords);
    const auto r3 = model.infer(complexInput, MsaFeatures{}, 8);
    EXPECT_GT(tensor::meanAbsDiff(r1.structure.coords,
                                  r3.structure.coords),
              1e-6);
}

TEST(Af3Model, DiffusionConvergesFromNoise)
{
    // Final coordinates should have far smaller magnitude than the
    // initial sigma_max-scaled noise.
    const auto cfg = miniConfig();
    Af3Model model(cfg, 42);
    const auto complexInput = smallComplex();
    const auto result = model.infer(complexInput, MsaFeatures{}, 1);
    double rms = 0.0;
    const auto &c = result.structure.coords;
    for (size_t i = 0; i < c.size(); ++i)
        rms += c[i] * c[i];
    rms = std::sqrt(rms / c.size());
    EXPECT_LT(rms, 80.0);  // started at sigma_max = 160
    EXPECT_GT(rms, 0.0);
}

TEST(Af3Model, ProfileCoversPairformerAndDiffusion)
{
    const auto cfg = miniConfig();
    Af3Model model(cfg, 42);
    const auto result =
        model.infer(smallComplex(), MsaFeatures{}, 1);
    EXPECT_GT(result.pairformerSeconds(), 0.0);
    EXPECT_GT(result.diffusionSeconds(), 0.0);
    EXPECT_TRUE(result.profile.count("triangle_attention_starting"));
    EXPECT_TRUE(result.profile.count("global_attention"));
    EXPECT_TRUE(result.profile.count("local_attention_encoder"));
    EXPECT_TRUE(result.profile.count("coordinate_update"));
}

TEST(Pairformer, WeightBytesScaleWithBlocks)
{
    auto cfg = miniConfig();
    Rng rngA(1);
    Pairformer one(
        [&] {
            auto c = cfg;
            c.pairformerBlocks = 1;
            return c;
        }(),
        rngA);
    Rng rngB(1);
    Pairformer four(
        [&] {
            auto c = cfg;
            c.pairformerBlocks = 4;
            return c;
        }(),
        rngB);
    EXPECT_EQ(4 * one.weightBytes(), four.weightBytes());
}

} // namespace
} // namespace afsb::model
