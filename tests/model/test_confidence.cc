/**
 * @file
 * Tests for the confidence head.
 */

#include <gtest/gtest.h>

#include "bio/seqgen.hh"
#include "model/af3_model.hh"
#include "model/confidence.hh"

namespace afsb::model {
namespace {

PairState
randomState(size_t n, const ModelConfig &cfg, uint64_t seed)
{
    Rng rng(seed);
    PairState s;
    s.pair = Tensor::randomNormal({n, n, cfg.pairDim}, rng);
    s.single = Tensor::randomNormal({n, cfg.singleDim}, rng);
    return s;
}

TEST(Confidence, OutputsBoundedAndConsistent)
{
    const auto cfg = miniConfig();
    Rng rng(1);
    const auto w = ConfidenceWeights::init(cfg, rng);
    const auto state = randomState(24, cfg, 2);
    const auto result = computeConfidence(state, w);

    ASSERT_EQ(result.plddt.size(), 24u);
    double sum = 0.0;
    size_t confident = 0;
    for (double p : result.plddt) {
        EXPECT_GE(p, 0.0);
        EXPECT_LE(p, 100.0);
        sum += p;
        confident += p >= 70.0;
    }
    EXPECT_NEAR(result.meanPlddt, sum / 24.0, 1e-9);
    EXPECT_NEAR(result.confidentFraction, confident / 24.0, 1e-9);
    EXPECT_GT(result.meanPae, 0.0);
}

TEST(Confidence, DifferentStatesGiveDifferentConfidence)
{
    const auto cfg = miniConfig();
    Rng rng(3);
    const auto w = ConfidenceWeights::init(cfg, rng);
    const auto a = computeConfidence(randomState(16, cfg, 4), w);
    const auto b = computeConfidence(randomState(16, cfg, 5), w);
    EXPECT_NE(a.meanPlddt, b.meanPlddt);
}

TEST(Confidence, IntegratedIntoInference)
{
    const auto cfg = miniConfig();
    Af3Model model(cfg, 42);
    bio::SequenceGenerator gen(9);
    bio::Complex c("t");
    c.addChain(gen.random("A", bio::MoleculeType::Protein, 20));
    const auto result = model.infer(c, MsaFeatures{}, 1);
    EXPECT_EQ(result.confidence.plddt.size(), 20u);
    EXPECT_GT(result.confidence.meanPlddt, 0.0);
    EXPECT_TRUE(result.profile.count("confidence_head"));
}

TEST(Confidence, DeterministicPerModelSeed)
{
    const auto cfg = miniConfig();
    Af3Model m1(cfg, 7), m2(cfg, 7);
    bio::SequenceGenerator gen(10);
    bio::Complex c("t");
    c.addChain(gen.random("A", bio::MoleculeType::Protein, 16));
    const auto r1 = m1.infer(c, MsaFeatures{}, 3);
    const auto r2 = m2.infer(c, MsaFeatures{}, 3);
    EXPECT_EQ(r1.confidence.plddt, r2.confidence.plddt);
}

} // namespace
} // namespace afsb::model
