/**
 * @file
 * Task-graph scheduler sweep (block_graph.cc): the TaskGroup-
 * scheduled Pairformer block and diffusion token stack must be
 * byte-identical to the fork-join fast path — same unit bodies,
 * same partitions, different thread scheduling — at every pool
 * size, with and without a workspace arena, and across repeated
 * runs.  Float equality here is exact (Tensor::operator==): the
 * contract is bit-identity, not tolerance.
 */

#include <gtest/gtest.h>

#include "model/block_graph.hh"
#include "model/diffusion.hh"
#include "model/pairformer.hh"
#include "tensor/arena.hh"
#include "util/rng.hh"
#include "util/threadpool.hh"

namespace afsb::model {
namespace {

/** Odd token count: exercises the 16-line block tail, the gemm
 *  pair-row tail, and the final partial token-row block. */
constexpr size_t kTokens = 13;

ModelConfig
testConfig()
{
    ModelConfig cfg = miniConfig();
    cfg.pairformerBlocks = 2;
    cfg.diffusionSteps = 2;
    return cfg;
}

PairState
makeState(const ModelConfig &cfg)
{
    Rng rng(907);
    PairState s;
    s.pair = Tensor::randomNormal({kTokens, kTokens, cfg.pairDim},
                                  rng, 0.5f);
    s.single =
        Tensor::randomNormal({kTokens, cfg.singleDim}, rng, 0.5f);
    return s;
}

TEST(TaskGraphSweep, PairformerMatchesForkJoinAtEveryPoolSize)
{
    ModelConfig cfg = testConfig();
    Rng wrng(11);
    tensor::Arena arena(16ull << 20);

    // Fork-join reference: same weights, taskGraph off.
    ThreadPool refPool(2);
    cfg.pool = &refPool;
    cfg.arena = &arena;
    cfg.taskGraph = false;
    const Pairformer model(cfg, wrng);
    PairState ref = makeState(cfg);
    model.forward(ref);

    for (size_t threads : {1u, 2u, 3u, 8u}) {
        ThreadPool pool(threads);
        ModelConfig run = cfg;
        run.pool = &pool;
        run.taskGraph = true;
        ASSERT_TRUE(graph::taskGraphEligible(run, false));
        PairState s = makeState(cfg);
        // Same weights as the reference model: reseed and reinit.
        Rng wrng2(11);
        const Pairformer graphModel(run, wrng2);
        graphModel.forward(s);
        EXPECT_TRUE(s.pair == ref.pair) << "threads=" << threads;
        EXPECT_TRUE(s.single == ref.single)
            << "threads=" << threads;
    }
}

TEST(TaskGraphSweep, PairformerRepeatedRunsAndNoArena)
{
    ModelConfig cfg = testConfig();
    ThreadPool pool(4);
    cfg.pool = &pool;
    cfg.taskGraph = true;

    Rng w1(23);
    const Pairformer model(cfg, w1);
    PairState a = makeState(cfg);
    model.forward(a);
    PairState b = makeState(cfg);
    model.forward(b);
    EXPECT_TRUE(a.pair == b.pair);
    EXPECT_TRUE(a.single == b.single);

    // Arena only moves scratch, never arithmetic.
    tensor::Arena arena(16ull << 20);
    ModelConfig withArena = cfg;
    withArena.arena = &arena;
    Rng w2(23);
    const Pairformer arenaModel(withArena, w2);
    PairState c = makeState(cfg);
    arenaModel.forward(c);
    EXPECT_TRUE(a.pair == c.pair);
    EXPECT_TRUE(a.single == c.single);
}

TEST(TaskGraphSweep, DiffusionMatchesForkJoinAtEveryPoolSize)
{
    ModelConfig cfg = testConfig();
    tensor::Arena arena(16ull << 20);

    ThreadPool refPool(2);
    cfg.pool = &refPool;
    cfg.arena = &arena;
    cfg.taskGraph = false;
    Rng wrng(31);
    const DiffusionModule ref(cfg, wrng);
    const PairState state = makeState(cfg);
    Rng sampleRng(77);
    const Structure want = ref.sample(state, sampleRng);

    for (size_t threads : {1u, 2u, 3u, 8u}) {
        ThreadPool pool(threads);
        ModelConfig run = cfg;
        run.pool = &pool;
        run.taskGraph = true;
        Rng wrng2(31);
        const DiffusionModule graphModel(run, wrng2);
        Rng sampleRng2(77);
        const Structure got = graphModel.sample(state, sampleRng2);
        EXPECT_TRUE(got.coords == want.coords)
            << "threads=" << threads;
    }
}

TEST(TaskGraphSweep, EligibilityGates)
{
    ModelConfig cfg = testConfig();
    EXPECT_FALSE(graph::taskGraphEligible(cfg, false));  // no pool

    ThreadPool pool(2);
    cfg.pool = &pool;
    EXPECT_TRUE(graph::taskGraphEligible(cfg, false));
    EXPECT_FALSE(graph::taskGraphEligible(cfg, true));  // hooked

    cfg.forceNaive = true;
    EXPECT_FALSE(graph::taskGraphEligible(cfg, false));
    cfg.forceNaive = false;

    cfg.taskGraph = false;
    EXPECT_FALSE(graph::taskGraphEligible(cfg, false));
}

} // namespace
} // namespace afsb::model
