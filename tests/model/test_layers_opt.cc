/**
 * @file
 * Equivalence and determinism tests for the GEMM-shaped kernel fast
 * paths against the naive reference loops.
 *
 * Contract under test (see layers.hh):
 *  - fast vs naive: <= 1e-4 max relative difference (the fast paths
 *    reorder summations and use fastExpf in the softmax);
 *  - fast path: bit-identical across pool sizes (each work unit is
 *    computed whole by one task) and with/without a workspace arena
 *    (the arena only moves scratch, never changes arithmetic).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "model/diffusion.hh"
#include "model/layers.hh"
#include "tensor/arena.hh"
#include "util/simd.hh"
#include "util/threadpool.hh"

namespace afsb::model {
namespace {

constexpr double kTol = 1e-4;

struct Shape
{
    size_t n;
    size_t heads;
    size_t dh;
};

/** Odd N (exercises the gemm pair-row tail), heads and head dims
 *  spanning the unroll boundaries. */
const Shape kShapes[] = {
    {9, 1, 8},
    {9, 4, 16},
    {13, 2, 8},
    {13, 4, 16},
};

TEST(FastExpf, TracksStdExp)
{
    for (float x = -30.0f; x <= 30.0f; x += 0.037f) {
        const float ref = std::exp(x);
        EXPECT_NEAR(fastExpf(x), ref, 1e-6f * std::max(1.0f, ref))
            << x;
    }
    EXPECT_EQ(fastExpf(-200.0f), fastExpf(-87.0f));  // clamped
    EXPECT_TRUE(std::isfinite(fastExpf(200.0f)));
}

TEST(TriangleAttentionOpt, MatchesNaive)
{
    for (const auto &s : kShapes) {
        const size_t hd = s.heads * s.dh;
        Rng rng(61);
        const Tensor q = Tensor::randomNormal({s.n, s.n, hd}, rng);
        const Tensor k = Tensor::randomNormal({s.n, s.n, hd}, rng);
        const Tensor v = Tensor::randomNormal({s.n, s.n, hd}, rng);
        const Tensor bias =
            Tensor::randomNormal({s.n, s.n, s.heads}, rng);
        for (bool starting : {true, false}) {
            const Tensor ref = triangleAttentionCore(
                q, k, v, bias, s.heads, s.dh, starting, true);
            const Tensor fast = triangleAttentionCore(
                q, k, v, bias, s.heads, s.dh, starting, false);
            EXPECT_LT(tensor::maxRelDiff(fast, ref), kTol)
                << "n=" << s.n << " heads=" << s.heads
                << " dh=" << s.dh << " starting=" << starting;

            ThreadPool pool(3);
            const Tensor pooled = triangleAttentionCore(
                q, k, v, bias, s.heads, s.dh, starting, false,
                &pool);
            EXPECT_LT(tensor::maxRelDiff(pooled, ref), kTol);
        }
    }
}

TEST(TriangleMultOpt, MatchesNaive)
{
    for (size_t n : {9u, 13u}) {
        for (size_t c : {8u, 16u}) {
            Rng rng(62);
            const Tensor a = Tensor::randomNormal({n, n, c}, rng);
            const Tensor b = Tensor::randomNormal({n, n, c}, rng);
            for (bool outgoing : {true, false}) {
                const Tensor ref =
                    triangleMultEinsum(a, b, outgoing, true);
                const Tensor fast =
                    triangleMultEinsum(a, b, outgoing, false);
                EXPECT_LT(tensor::maxRelDiff(fast, ref), kTol)
                    << "n=" << n << " c=" << c
                    << " outgoing=" << outgoing;

                ThreadPool pool(3);
                const Tensor pooled = triangleMultEinsum(
                    a, b, outgoing, false, &pool);
                EXPECT_LT(tensor::maxRelDiff(pooled, ref), kTol);
            }
        }
    }
}

TEST(SingleAttentionOpt, MatchesNaive)
{
    for (const auto &s : kShapes) {
        const size_t hd = s.heads * s.dh;
        Rng rng(63);
        const Tensor q = Tensor::randomNormal({s.n, hd}, rng);
        const Tensor k = Tensor::randomNormal({s.n, hd}, rng);
        const Tensor v = Tensor::randomNormal({s.n, hd}, rng);
        const Tensor bias =
            Tensor::randomNormal({s.n, s.n, s.heads}, rng);
        const Tensor ref = singleAttentionCore(q, k, v, bias,
                                               s.heads, s.dh, true);
        const Tensor fast = singleAttentionCore(
            q, k, v, bias, s.heads, s.dh, false);
        EXPECT_LT(tensor::maxRelDiff(fast, ref), kTol)
            << "n=" << s.n << " heads=" << s.heads
            << " dh=" << s.dh;

        ThreadPool pool(3);
        const Tensor pooled = singleAttentionCore(
            q, k, v, bias, s.heads, s.dh, false, &pool);
        EXPECT_LT(tensor::maxRelDiff(pooled, ref), kTol);
    }
}

TEST(TokenAttentionOpt, MatchesNaiveGlobalAndLocal)
{
    for (const auto &s : kShapes) {
        ModelConfig cfg = miniConfig();
        cfg.heads = s.heads;
        cfg.headDim = s.dh;
        const size_t ct = 24;
        Rng rng(64);
        const auto w = AttnBlockWeights::init(ct, cfg, rng);
        const Tensor h0 = Tensor::randomNormal({s.n, ct}, rng);
        for (size_t window : {size_t{0}, size_t{4}}) {
            Tensor ref = h0;
            ModelConfig naiveCfg = cfg;
            naiveCfg.forceNaive = true;
            tokenAttention(ref, w, naiveCfg, window);

            Tensor fast = h0;
            tokenAttention(fast, w, cfg, window);
            EXPECT_LT(tensor::maxRelDiff(fast, ref), kTol)
                << "n=" << s.n << " heads=" << s.heads
                << " dh=" << s.dh << " window=" << window;

            ThreadPool pool(3);
            ModelConfig pooled = cfg;
            pooled.pool = &pool;
            Tensor fastPool = h0;
            tokenAttention(fastPool, w, pooled, window);
            EXPECT_TRUE(fastPool == fast)
                << "pooled token attention diverged";
        }
    }
}

TEST(FastPathDeterminism, BitIdenticalAcrossPoolSizes)
{
    const size_t n = 13, heads = 4, dh = 16, hd = heads * dh;
    Rng rng(65);
    const Tensor q = Tensor::randomNormal({n, n, hd}, rng);
    const Tensor k = Tensor::randomNormal({n, n, hd}, rng);
    const Tensor v = Tensor::randomNormal({n, n, hd}, rng);
    const Tensor bias = Tensor::randomNormal({n, n, heads}, rng);
    const Tensor a = Tensor::randomNormal({n, n, 16}, rng);
    const Tensor b = Tensor::randomNormal({n, n, 16}, rng);

    const Tensor attnSerial = triangleAttentionCore(
        q, k, v, bias, heads, dh, true, false);
    const Tensor multSerial =
        triangleMultEinsum(a, b, false, false);
    for (size_t threads : {1u, 2u, 5u, 8u}) {
        ThreadPool pool(threads);
        EXPECT_TRUE(triangleAttentionCore(q, k, v, bias, heads, dh,
                                          true, false,
                                          &pool) == attnSerial)
            << threads << " threads";
        EXPECT_TRUE(triangleMultEinsum(a, b, false, false,
                                       &pool) == multSerial)
            << threads << " threads";
    }
}

TEST(FastPathDeterminism, BitIdenticalWithArena)
{
    const size_t n = 9, heads = 2, dh = 8, hd = heads * dh;
    Rng rng(66);
    const Tensor q = Tensor::randomNormal({n, n, hd}, rng);
    const Tensor k = Tensor::randomNormal({n, n, hd}, rng);
    const Tensor v = Tensor::randomNormal({n, n, hd}, rng);
    const Tensor bias = Tensor::randomNormal({n, n, heads}, rng);

    const Tensor noArena = triangleAttentionCore(
        q, k, v, bias, heads, dh, false, false);
    tensor::Arena arena;
    for (int round = 0; round < 2; ++round) {
        tensor::Arena::Scope scope(&arena);
        const Tensor withArena = triangleAttentionCore(
            q, k, v, bias, heads, dh, false, false, nullptr,
            &arena);
        EXPECT_TRUE(withArena == noArena) << "round " << round;
    }
}

TEST(LayerArena, FullLayersBitIdenticalWithArena)
{
    ModelConfig cfg = miniConfig();
    cfg.pairDim = 8;
    cfg.singleDim = 12;
    cfg.heads = 2;
    cfg.headDim = 4;
    Rng rng(67);
    const Tensor pair0 =
        Tensor::randomNormal({10, 10, cfg.pairDim}, rng);
    const Tensor single0 =
        Tensor::randomNormal({10, cfg.singleDim}, rng);
    const auto wMult = TriangleMultWeights::init(cfg, rng);
    const auto wAttn = TriangleAttnWeights::init(cfg, rng);
    const auto wTrans = TransitionWeights::init(cfg.pairDim, rng);
    const auto wSingle = SingleAttnWeights::init(cfg, rng);

    Tensor pairRef = pair0;
    Tensor singleRef = single0;
    triangleMultiplicativeUpdate(pairRef, wMult, cfg, true);
    triangleAttention(pairRef, wAttn, cfg, true);
    pairTransition(pairRef, wTrans);
    singleAttentionWithPairBias(singleRef, pairRef, wSingle, cfg);

    tensor::Arena arena;
    ModelConfig withArena = cfg;
    withArena.arena = &arena;
    Tensor pairA = pair0;
    Tensor singleA = single0;
    triangleMultiplicativeUpdate(pairA, wMult, withArena, true);
    triangleAttention(pairA, wAttn, withArena, true);
    pairTransition(pairA, wTrans, nullptr, &arena);
    singleAttentionWithPairBias(singleA, pairA, wSingle, withArena);

    EXPECT_TRUE(pairA == pairRef);
    EXPECT_TRUE(singleA == singleRef);
    // Every layer scope rewound: nothing may stay live.
    EXPECT_EQ(arena.liveFloats(), 0u);
    EXPECT_GT(arena.highWaterFloats(), 0u);
}

TEST(LayerArena, DiffusionSampleBitIdenticalWithArena)
{
    ModelConfig cfg = miniConfig();
    cfg.pairDim = 8;
    cfg.singleDim = 12;
    cfg.heads = 2;
    cfg.headDim = 4;
    cfg.diffusionTokenDim = 16;
    cfg.diffusionSteps = 2;
    cfg.diffusionBlocks = 1;
    cfg.globalBlocks = 1;
    Rng rngState(68);
    PairState state;
    state.pair = Tensor::randomNormal({10, 10, cfg.pairDim},
                                      rngState);
    state.single =
        Tensor::randomNormal({10, cfg.singleDim}, rngState);

    Rng rngInit(69);
    const DiffusionModule plain(cfg, rngInit);
    Rng noiseA(70);
    const auto ref = plain.sample(state, noiseA);

    tensor::Arena arena;
    ModelConfig withArena = cfg;
    withArena.arena = &arena;
    Rng rngInit2(69);
    const DiffusionModule arenaMod(withArena, rngInit2);
    Rng noiseB(70);
    const auto got = arenaMod.sample(state, noiseB);
    EXPECT_TRUE(got.coords == ref.coords);
    EXPECT_EQ(arena.liveFloats(), 0u);
}

} // namespace
} // namespace afsb::model
