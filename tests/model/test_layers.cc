/**
 * @file
 * Unit tests for Pairformer layers: shape preservation, update
 * semantics, and symmetry properties.
 */

#include <gtest/gtest.h>

#include "model/diffusion.hh"
#include "model/layers.hh"
#include "util/threadpool.hh"

namespace afsb::model {
namespace {

ModelConfig
tinyConfig()
{
    ModelConfig cfg = miniConfig();
    cfg.pairDim = 8;
    cfg.singleDim = 12;
    cfg.heads = 2;
    cfg.headDim = 4;
    return cfg;
}

struct LayerFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        cfg = tinyConfig();
        Rng rng(11);
        pair = Tensor::randomNormal({10, 10, cfg.pairDim}, rng);
        single = Tensor::randomNormal({10, cfg.singleDim}, rng);
    }

    ModelConfig cfg;
    Tensor pair;
    Tensor single;
};

TEST_F(LayerFixture, TriangleMultPreservesShapeAndChanges)
{
    Rng rng(21);
    const auto w = TriangleMultWeights::init(cfg, rng);
    const Tensor before = pair;
    triangleMultiplicativeUpdate(pair, w, cfg, true);
    EXPECT_EQ(pair.shape(), before.shape());
    EXPECT_GT(tensor::meanAbsDiff(pair, before), 1e-6);
    EXPECT_FALSE(pair.hasNonFinite());
}

TEST_F(LayerFixture, TriangleMultVariantsDiffer)
{
    Rng rng(22);
    const auto w = TriangleMultWeights::init(cfg, rng);
    Tensor outgoing = pair;
    Tensor incoming = pair;
    triangleMultiplicativeUpdate(outgoing, w, cfg, true);
    triangleMultiplicativeUpdate(incoming, w, cfg, false);
    EXPECT_GT(tensor::meanAbsDiff(outgoing, incoming), 1e-6);
}

TEST_F(LayerFixture, TriangleMultEinsum)
{
    // Residual property: a zero output projection must leave the
    // pair representation unchanged regardless of gates.
    Rng rng(23);
    auto w = TriangleMultWeights::init(cfg, rng);
    w.outProj.fill(0.0f);
    w.bias.fill(0.0f);
    const Tensor before = pair;
    triangleMultiplicativeUpdate(pair, w, cfg, true);
    EXPECT_LT(tensor::meanAbsDiff(pair, before), 1e-7);
}

TEST_F(LayerFixture, TriangleAttentionModesDiffer)
{
    Rng rng(24);
    const auto w = TriangleAttnWeights::init(cfg, rng);
    Tensor starting = pair;
    Tensor ending = pair;
    triangleAttention(starting, w, cfg, true);
    triangleAttention(ending, w, cfg, false);
    EXPECT_EQ(starting.shape(), pair.shape());
    EXPECT_GT(tensor::meanAbsDiff(starting, pair), 1e-6);
    EXPECT_GT(tensor::meanAbsDiff(starting, ending), 1e-6);
    EXPECT_FALSE(starting.hasNonFinite());
}

TEST_F(LayerFixture, PairTransitionIsResidualMlp)
{
    Rng rng(25);
    const auto w = TransitionWeights::init(cfg.pairDim, rng);
    const Tensor before = pair;
    pairTransition(pair, w);
    EXPECT_EQ(pair.shape(), before.shape());
    EXPECT_GT(tensor::meanAbsDiff(pair, before), 1e-6);
    // Zero weights => exact identity (pure residual).
    auto wZero = TransitionWeights::init(cfg.pairDim, rng);
    wZero.w2.fill(0.0f);
    wZero.b2.fill(0.0f);
    Tensor copy = before;
    pairTransition(copy, wZero);
    EXPECT_LT(tensor::meanAbsDiff(copy, before), 1e-7);
}

TEST_F(LayerFixture, SingleAttentionUsesPairBias)
{
    Rng rng(26);
    const auto w = SingleAttnWeights::init(cfg, rng);
    Tensor s1 = single;
    singleAttentionWithPairBias(s1, pair, w, cfg);
    EXPECT_EQ(s1.shape(), single.shape());
    EXPECT_GT(tensor::meanAbsDiff(s1, single), 1e-6);

    // Different pair tensors must change the attention output.
    Rng rng2(27);
    const Tensor otherPair =
        Tensor::randomNormal({10, 10, cfg.pairDim}, rng2, 2.0f);
    Tensor s2 = single;
    singleAttentionWithPairBias(s2, otherPair, w, cfg);
    EXPECT_GT(tensor::meanAbsDiff(s1, s2), 1e-6);
}

TEST_F(LayerFixture, LayersAreDeterministic)
{
    Rng rngA(31), rngB(31);
    const auto wa = TriangleAttnWeights::init(cfg, rngA);
    const auto wb = TriangleAttnWeights::init(cfg, rngB);
    Tensor a = pair, b = pair;
    triangleAttention(a, wa, cfg, true);
    triangleAttention(b, wb, cfg, true);
    EXPECT_TRUE(a == b);
}

TEST_F(LayerFixture, PoolResultsBitIdenticalToSerial)
{
    // Row-parallel layers own each output row statically: any pool
    // size must reproduce the serial result exactly, not just
    // within tolerance.
    Rng rng(32);
    const auto wMult = TriangleMultWeights::init(cfg, rng);
    const auto wAttn = TriangleAttnWeights::init(cfg, rng);
    const auto wTrans = TransitionWeights::init(cfg.pairDim, rng);
    const auto wSingle = SingleAttnWeights::init(cfg, rng);

    Tensor pairSerial = pair;
    Tensor singleSerial = single;
    triangleMultiplicativeUpdate(pairSerial, wMult, cfg, true);
    triangleAttention(pairSerial, wAttn, cfg, false);
    pairTransition(pairSerial, wTrans);
    singleAttentionWithPairBias(singleSerial, pairSerial, wSingle,
                                cfg);

    for (size_t threads : {2u, 5u}) {
        ThreadPool pool(threads);
        ModelConfig pooled = cfg;
        pooled.pool = &pool;
        Tensor pairPar = pair;
        Tensor singlePar = single;
        triangleMultiplicativeUpdate(pairPar, wMult, pooled, true);
        triangleAttention(pairPar, wAttn, pooled, false);
        pairTransition(pairPar, wTrans, &pool);
        singleAttentionWithPairBias(singlePar, pairPar, wSingle,
                                    pooled);
        EXPECT_TRUE(pairPar == pairSerial)
            << threads << " threads";
        EXPECT_TRUE(singlePar == singleSerial)
            << threads << " threads";
    }
}

TEST_F(LayerFixture, DiffusionSamplePoolMatchesSerial)
{
    // End-to-end through token attention and the denoising loop.
    ModelConfig dcfg = cfg;
    dcfg.diffusionTokenDim = 16;
    dcfg.diffusionSteps = 2;
    dcfg.diffusionBlocks = 1;
    dcfg.globalBlocks = 1;
    Rng rngInit(33);
    const DiffusionModule diffusion(dcfg, rngInit);
    PairState state;
    state.pair = pair;
    state.single = single;

    Rng noiseA(34);
    const auto serial = diffusion.sample(state, noiseA);

    ThreadPool pool(3);
    ModelConfig pooled = dcfg;
    pooled.pool = &pool;
    Rng rngInit2(33);
    const DiffusionModule diffusionPooled(pooled, rngInit2);
    Rng noiseB(34);
    const auto parallel = diffusionPooled.sample(state, noiseB);
    EXPECT_TRUE(parallel.coords == serial.coords);
}

} // namespace
} // namespace afsb::model
