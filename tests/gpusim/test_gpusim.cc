/**
 * @file
 * Tests for the GPU device model, XLA phase model, and the full
 * inference simulation (Fig 8/9, Table V/VI shapes).
 */

#include <gtest/gtest.h>

#include "gpusim/inference_sim.hh"
#include "gpusim/init_profile.hh"
#include "util/units.hh"

namespace afsb::gpusim {
namespace {

TEST(GpuDevice, RooflineRegimes)
{
    GpuDevice dev(sys::desktopPlatform().gpu);
    // Compute-bound: huge flops, tiny bytes.
    const double tCompute = dev.executeKernel(1e13, 1e6);
    EXPECT_GT(tCompute, 0.9 * 1e13 / dev.spec().peakFlops);
    // Bandwidth-bound: tiny flops, huge bytes.
    const double tMem = dev.executeKernel(1e6, 7.17e9);
    EXPECT_NEAR(tMem, 1e6 / dev.achievableFlops(1e6) < 0.01
                          ? 0.01 + dev.spec().kernelLaunchUs * 1e-6
                          : tMem,
                1.0);
    EXPECT_GT(tMem, 0.009);
}

TEST(GpuDevice, SmallKernelsAreLaunchBound)
{
    GpuDevice dev(sys::serverPlatform().gpu);
    // A kernel with negligible work costs about one launch plus
    // the ~2 us wave-quantization ramp.
    const double t = dev.executeKernel(1e3, 1e3);
    EXPECT_NEAR(t, dev.spec().kernelLaunchUs * 1e-6, 3e-6);
}

TEST(GpuDevice, EfficiencyRampsWithKernelSize)
{
    GpuDevice dev(sys::serverPlatform().gpu);
    EXPECT_LT(dev.achievableFlops(1e8), dev.achievableFlops(1e12));
    EXPECT_LT(dev.achievableFlops(1e12),
              dev.spec().peakFlops + 1.0);
}

TEST(GpuDevice, UnifiedMemoryPenalizesBandwidth)
{
    GpuDevice dev(sys::desktopPlatform().gpu);
    const double normal = dev.executeKernel(1e6, 1e9, false);
    const double spilled = dev.executeKernel(1e6, 1e9, true);
    EXPECT_GT(spilled, 3.0 * normal);
}

TEST(GpuDevice, StatsAccumulate)
{
    GpuDevice dev(sys::serverPlatform().gpu);
    dev.executeKernel(1e9, 1e6);
    dev.executeKernel(1e9, 1e6);
    EXPECT_EQ(dev.stats().kernelsLaunched, 2u);
    EXPECT_DOUBLE_EQ(dev.stats().flopsExecuted, 2e9);
}

TEST(XlaCache, CachesByShapeBucket)
{
    XlaCache cache;
    EXPECT_FALSE(cache.lookupOrInsert(
        model::LayerKind::GlobalAttention, 484));
    EXPECT_TRUE(cache.lookupOrInsert(
        model::LayerKind::GlobalAttention, 484));
    // Same bucket (484 and 500 are both bucket 7 at width 64).
    EXPECT_TRUE(cache.lookupOrInsert(
        model::LayerKind::GlobalAttention, 500));
    // Different layer or far-away shape misses.
    EXPECT_FALSE(cache.lookupOrInsert(
        model::LayerKind::PairTransition, 484));
    EXPECT_FALSE(cache.lookupOrInsert(
        model::LayerKind::GlobalAttention, 900));
}

TEST(XlaPhases, ServerHostPhasesSlowerThanDesktop)
{
    const auto graph =
        model::operatorGraph(484, model::paperConfig());
    XlaCache cs, cd;
    const auto server = evaluateXlaPhases(sys::serverPlatform(),
                                          graph, 484, cs);
    const auto desktop = evaluateXlaPhases(sys::desktopPlatform(),
                                           graph, 484, cd);
    EXPECT_GT(server.compileSeconds, desktop.compileSeconds);
    EXPECT_GT(server.initSeconds, desktop.initSeconds);
    // H100's 80 GB mapping alone makes init slower.
    EXPECT_GT(server.initSeconds, 1.5 * desktop.initSeconds / 2.0);
}

TEST(XlaPhases, WarmCacheSkipsCompilation)
{
    const auto graph =
        model::operatorGraph(484, model::paperConfig());
    XlaCache cache;
    const auto cold = evaluateXlaPhases(sys::serverPlatform(),
                                        graph, 484, cache);
    const auto warm = evaluateXlaPhases(sys::serverPlatform(),
                                        graph, 484, cache);
    EXPECT_GT(cold.compileSeconds, 10.0);
    EXPECT_DOUBLE_EQ(warm.compileSeconds, 0.0);
}

// --- Full inference simulation -----------------------------------------

TEST(InferenceSim, Fig8ServerOverheadDominatesShortInputs)
{
    // Paper: on Server, init + XLA compile consumed over 75% of
    // inference time for smaller inputs (2PV7).
    XlaCache cache;
    const auto r =
        simulateInference(sys::serverPlatform(), 484, cache);
    EXPECT_FALSE(r.oom);
    EXPECT_GT(r.overheadFraction(), 0.75);
}

TEST(InferenceSim, Fig8DesktopComputeDominates)
{
    // Paper: Desktop 2PV7 = 71 s GPU + 10 s XLA + 19 s init/final;
    // GPU compute share up to 83% for 1YY9/promo.
    XlaCache cache;
    const auto r2pv7 =
        simulateInference(sys::desktopPlatform(), 484, cache);
    EXPECT_GT(r2pv7.gpuComputeSeconds,
              0.5 * r2pv7.totalSeconds());
    XlaCache cache2;
    const auto rPromo =
        simulateInference(sys::desktopPlatform(), 857, cache2);
    EXPECT_GT(rPromo.gpuComputeSeconds / rPromo.totalSeconds(),
              0.65);
}

TEST(InferenceSim, DesktopGpuSlowerThanServerGpu)
{
    XlaCache c1, c2;
    const auto server =
        simulateInference(sys::serverPlatform(), 857, c1);
    const auto desktop =
        simulateInference(sys::desktopPlatform(), 857, c2);
    EXPECT_GT(desktop.gpuComputeSeconds,
              2.0 * server.gpuComputeSeconds);
}

TEST(InferenceSim, SixQnrNeedsUnifiedMemoryOn4080)
{
    XlaCache cache;
    InferenceSimOptions noUm;
    noUm.unifiedMemory = false;
    const auto fail = simulateInference(sys::desktopPlatform(),
                                        1395, cache, noUm);
    EXPECT_TRUE(fail.oom);

    XlaCache cache2;
    const auto ok =
        simulateInference(sys::desktopPlatform(), 1395, cache2);
    EXPECT_FALSE(ok.oom);
    EXPECT_TRUE(ok.usedUnifiedMemory);

    XlaCache cache3;
    const auto h100 =
        simulateInference(sys::serverPlatform(), 1395, cache3);
    EXPECT_FALSE(h100.usedUnifiedMemory);
}

TEST(InferenceSim, ThreadsBarelyHelp)
{
    // Fig 6: inference shows minimal gains with threads (single
    // dispatch thread).
    XlaCache c1, c2;
    InferenceSimOptions t1, t6;
    t1.threads = 1;
    t6.threads = 6;
    const auto r1 =
        simulateInference(sys::serverPlatform(), 881, c1, t1);
    const auto r6 =
        simulateInference(sys::serverPlatform(), 881, c2, t6);
    EXPECT_LT(r1.totalSeconds() / r6.totalSeconds(), 1.2);
}

TEST(InferenceSim, LayerBreakdownMatchesTableVIShapes)
{
    XlaCache c1, c2;
    const auto r484 =
        simulateInference(sys::serverPlatform(), 484, c1);
    const auto r857 =
        simulateInference(sys::serverPlatform(), 857, c2);

    // Triangle attention dominates Pairformer time.
    const double tri484 =
        r484.layerSeconds.at("triangle_attention_starting") +
        r484.layerSeconds.at("triangle_attention_ending");
    EXPECT_GT(tri484, 0.35 * r484.pairformerSeconds());

    // Global attention is the largest Diffusion slice.
    const double glob484 =
        r484.layerSeconds.at("global_attention");
    EXPECT_GT(glob484, 0.4 * r484.diffusionSeconds());

    // Table VI ratios (promo/2PV7): Pairformer ~3.35x, triangle
    // attention ~3.8x, Diffusion ~1.84x. Accept generous bands.
    const double pairRatio =
        r857.pairformerSeconds() / r484.pairformerSeconds();
    EXPECT_GT(pairRatio, 2.3);
    EXPECT_LT(pairRatio, 5.6);
    const double triRatio =
        (r857.layerSeconds.at("triangle_attention_starting") +
         r857.layerSeconds.at("triangle_attention_ending")) /
        tri484;
    EXPECT_GT(triRatio, 2.8);
    EXPECT_LT(triRatio, 5.6);
    const double diffRatio =
        r857.diffusionSeconds() / r484.diffusionSeconds();
    EXPECT_GT(diffRatio, 1.3);
    EXPECT_LT(diffRatio, 3.2);
}

TEST(InferenceSim, TimelineCoversAllPhases)
{
    XlaCache cache;
    const auto r =
        simulateInference(sys::desktopPlatform(), 484, cache);
    EXPECT_GT(r.timeline.spans().size(), 5u);
    EXPECT_NEAR(r.timeline.endTime(), r.totalSeconds(), 1e-6);
    EXPECT_GT(r.timeline.laneTotal(TimelineLane::GpuCompute), 0.0);
    EXPECT_FALSE(r.timeline.render().empty());
}

// --- Table V ------------------------------------------------------------

TEST(InitProfile, TableVSharesInPublishedBallpark)
{
    const auto rows2pv7 =
        profileInitPhase(sys::serverPlatform(), 484);
    const auto rowsPromo =
        profileInitPhase(sys::serverPlatform(), 857);
    const auto rows6qnr =
        profileInitPhase(sys::serverPlatform(), 1395);
    ASSERT_EQ(rows2pv7.size(), 3u);

    // Page faults via _M_fill_insert: 12.99% (2PV7), 16.83% (promo).
    EXPECT_NEAR(rows2pv7[0].overheadPct, 13.0, 4.0);
    EXPECT_NEAR(rowsPromo[0].overheadPct, 16.8, 4.0);
    EXPECT_GT(rowsPromo[0].overheadPct, rows2pv7[0].overheadPct);

    // dTLB via ByteSizeOf: 5.99% (2PV7), 3.89% (promo), falling.
    EXPECT_NEAR(rows2pv7[1].overheadPct, 6.0, 2.5);
    EXPECT_NEAR(rowsPromo[1].overheadPct, 3.9, 2.0);
    EXPECT_LT(rowsPromo[1].overheadPct, rows2pv7[1].overheadPct);

    // LLC via copy_to_iter: 6.90% (2PV7), 5.80% (6QNR).
    EXPECT_NEAR(rows2pv7[2].overheadPct, 6.9, 2.5);
    EXPECT_NEAR(rows6qnr[2].overheadPct, 5.8, 2.5);
    EXPECT_LT(rows6qnr[2].overheadPct, rows2pv7[2].overheadPct);
}

} // namespace
} // namespace afsb::gpusim
