/**
 * @file
 * Tests for the Nsight-like timeline.
 */

#include <gtest/gtest.h>

#include "gpusim/timeline.hh"

namespace afsb::gpusim {
namespace {

TEST(Timeline, SpansAppendPerLane)
{
    Timeline t;
    t.addSpan("a", TimelineLane::Host, 2.0);
    t.addSpan("b", TimelineLane::Host, 3.0);      // after a
    t.addSpan("k", TimelineLane::GpuCompute, 1.0); // own lane at 0
    ASSERT_EQ(t.spans().size(), 3u);
    EXPECT_DOUBLE_EQ(t.spans()[1].start, 2.0);
    EXPECT_DOUBLE_EQ(t.spans()[2].start, 0.0);
    EXPECT_DOUBLE_EQ(t.endTime(), 5.0);
    EXPECT_DOUBLE_EQ(t.laneTotal(TimelineLane::Host), 5.0);
    EXPECT_DOUBLE_EQ(t.laneTotal(TimelineLane::GpuCompute), 1.0);
    EXPECT_DOUBLE_EQ(t.laneTotal(TimelineLane::Transfer), 0.0);
}

TEST(Timeline, ExplicitStarts)
{
    Timeline t;
    t.addSpanAt("x", TimelineLane::Compile, 10.0, 5.0);
    EXPECT_DOUBLE_EQ(t.endTime(), 15.0);
    t.addSpan("y", TimelineLane::Compile, 1.0);  // appends at 15
    EXPECT_DOUBLE_EQ(t.spans()[1].start, 15.0);
}

TEST(Timeline, RenderContainsLanesAndNames)
{
    Timeline t;
    t.addSpan("gpu_init", TimelineLane::Host, 1.0);
    t.addSpan("kernel", TimelineLane::GpuCompute, 2.0);
    const auto out = t.render();
    EXPECT_NE(out.find("gpu_init"), std::string::npos);
    EXPECT_NE(out.find("kernel"), std::string::npos);
    EXPECT_NE(out.find("host"), std::string::npos);
    EXPECT_NE(out.find("gpu"), std::string::npos);
    EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(Timeline, EmptyRenderIsSafe)
{
    Timeline t;
    EXPECT_DOUBLE_EQ(t.endTime(), 0.0);
    EXPECT_FALSE(t.render().empty());
}

} // namespace
} // namespace afsb::gpusim
