/**
 * @file
 * Tests for the inference-serving simulator.
 */

#include <gtest/gtest.h>

#include "gpusim/serving.hh"

namespace afsb::gpusim {
namespace {

TEST(Serving, ColdServiceIsUniformPerRequest)
{
    const auto requests = batchRequests(4, 484);
    const auto result =
        simulateServing(sys::serverPlatform(), requests);
    ASSERT_EQ(result.requests.size(), 4u);
    for (const auto &r : result.requests) {
        EXPECT_NEAR(r.serviceSeconds,
                    result.requests[0].serviceSeconds, 1e-9);
        EXPECT_GT(r.compileSeconds, 0.0);
    }
}

TEST(Serving, PersistentStateSpeedsUpSteadyState)
{
    const auto requests = batchRequests(5, 484);
    ServingOptions warm;
    warm.persistentModelState = true;
    const auto cold =
        simulateServing(sys::serverPlatform(), requests);
    const auto persistent =
        simulateServing(sys::serverPlatform(), requests, warm);

    // First request pays the same compile either way.
    EXPECT_NEAR(persistent.firstRequestLatency,
                cold.firstRequestLatency, 1e-9);
    // Steady state loses the whole compile phase.
    EXPECT_LT(persistent.steadyLatency, cold.steadyLatency);
    EXPECT_GT(persistent.throughputPerHour,
              1.1 * cold.throughputPerHour);
    for (size_t i = 1; i < persistent.requests.size(); ++i)
        EXPECT_DOUBLE_EQ(persistent.requests[i].compileSeconds,
                         0.0);
}

TEST(Serving, MixedSizesRecompileOnNewShapesOnly)
{
    std::vector<ServingRequest> requests = {
        {484, 0.0}, {881, 0.0}, {484, 0.0}, {881, 0.0}};
    ServingOptions warm;
    warm.persistentModelState = true;
    const auto result =
        simulateServing(sys::serverPlatform(), requests, warm);
    EXPECT_GT(result.requests[0].compileSeconds, 0.0);  // new shape
    EXPECT_GT(result.requests[1].compileSeconds, 0.0);  // new shape
    EXPECT_DOUBLE_EQ(result.requests[2].compileSeconds, 0.0);
    EXPECT_DOUBLE_EQ(result.requests[3].compileSeconds, 0.0);
}

TEST(Serving, QueueingDelaysLaterArrivals)
{
    // Two requests arriving together: the second waits for the
    // first (single worker).
    const auto result = simulateServing(sys::serverPlatform(),
                                        batchRequests(2, 484));
    EXPECT_NEAR(result.requests[1].startSeconds,
                result.requests[0].finishSeconds, 1e-9);
    EXPECT_GT(result.requests[1].latencySeconds,
              result.requests[0].latencySeconds);
}

TEST(Serving, OpenLoopArrivalsRespectArrivalTimes)
{
    std::vector<ServingRequest> requests = {{484, 0.0},
                                            {484, 1e6}};
    const auto result =
        simulateServing(sys::serverPlatform(), requests);
    // The late request starts at its arrival, not immediately.
    EXPECT_NEAR(result.requests[1].startSeconds, 1e6, 1e-6);
    EXPECT_NEAR(result.requests[1].latencySeconds,
                result.requests[1].serviceSeconds, 1e-9);
}

TEST(Serving, EmptyRequestListIsSafe)
{
    const auto result =
        simulateServing(sys::serverPlatform(), {});
    EXPECT_EQ(result.requests.size(), 0u);
    EXPECT_DOUBLE_EQ(result.makespanSeconds, 0.0);
    // Every derived aggregate stays a well-defined zero — no 0/0.
    EXPECT_DOUBLE_EQ(result.throughputPerHour, 0.0);
    EXPECT_DOUBLE_EQ(result.meanLatency, 0.0);
    EXPECT_DOUBLE_EQ(result.firstRequestLatency, 0.0);
    EXPECT_DOUBLE_EQ(result.steadyLatency, 0.0);
}

TEST(Serving, SingleRequestDefinesItsOwnSteadyState)
{
    const auto result = simulateServing(sys::serverPlatform(),
                                        batchRequests(1, 484));
    ASSERT_EQ(result.requests.size(), 1u);
    EXPECT_GT(result.makespanSeconds, 0.0);
    EXPECT_GT(result.throughputPerHour, 0.0);
    // With no steady stream behind it, the lone request is its own
    // steady state; mean and first collapse onto it too.
    EXPECT_DOUBLE_EQ(result.steadyLatency,
                     result.firstRequestLatency);
    EXPECT_DOUBLE_EQ(result.meanLatency,
                     result.firstRequestLatency);
}

TEST(Serving, OpenLoopLatencyIsQueueingPlusService)
{
    // Staggered arrivals with some overlap: each request's latency
    // must decompose exactly into time-in-queue plus time-in-
    // service, with no unaccounted gaps.
    const std::vector<ServingRequest> requests = {
        {484, 0.0}, {881, 10.0}, {484, 20.0}, {484, 1e6}};
    const auto result =
        simulateServing(sys::serverPlatform(), requests);
    ASSERT_EQ(result.requests.size(), requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
        const auto &r = result.requests[i];
        const double queueing =
            r.startSeconds - requests[i].arrivalSeconds;
        EXPECT_GE(queueing, -1e-9);
        EXPECT_NEAR(r.latencySeconds, queueing + r.serviceSeconds,
                    1e-9);
        EXPECT_NEAR(r.finishSeconds,
                    r.startSeconds + r.serviceSeconds, 1e-9);
    }
}

TEST(Serving, WarmCacheStrictlyDominatesColdOnSameStream)
{
    // Identical request stream, cold vs persistent model state: the
    // warm run must finish every request no later, and sustain
    // strictly higher throughput.
    std::vector<ServingRequest> requests;
    for (int i = 0; i < 6; ++i)
        requests.push_back({i % 2 ? 881u : 484u, 0.0});
    ServingOptions warm;
    warm.persistentModelState = true;
    const auto cold =
        simulateServing(sys::serverPlatform(), requests);
    const auto persistent =
        simulateServing(sys::serverPlatform(), requests, warm);

    ASSERT_EQ(cold.requests.size(), persistent.requests.size());
    for (size_t i = 0; i < cold.requests.size(); ++i)
        EXPECT_LE(persistent.requests[i].finishSeconds,
                  cold.requests[i].finishSeconds + 1e-9);
    EXPECT_GT(persistent.throughputPerHour,
              cold.throughputPerHour);
    EXPECT_LT(persistent.makespanSeconds, cold.makespanSeconds);
}

} // namespace
} // namespace afsb::gpusim
