/**
 * @file
 * Tests for shape-bucket boundaries in the XLA compile cache and for
 * the batched-dispatch inference model (shared compile, padded
 * execution length, VRAM capacity gating, data-parallel fan-out).
 */

#include <gtest/gtest.h>

#include "gpusim/inference_sim.hh"

namespace afsb::gpusim {
namespace {

// --- Bucket boundaries ------------------------------------------

TEST(BatchingXla, TokensExactlyAtBucketEdge)
{
    XlaCache cache; // default width 64
    // 63 is the last token count in bucket 0; 64 opens bucket 1.
    EXPECT_EQ(cache.bucketOf(63), 0u);
    EXPECT_EQ(cache.bucketOf(64), 1u);
    EXPECT_EQ(cache.paddedTokens(63), 63u);
    EXPECT_EQ(cache.paddedTokens(64), 127u);
    // The padded length stays inside the member's own bucket, so
    // solo and batched dispatches share compile keys.
    EXPECT_EQ(cache.bucketOf(cache.paddedTokens(64)),
              cache.bucketOf(64));
    EXPECT_EQ(cache.paddedTokens(484), 511u);
}

TEST(BatchingXla, WidthOnePadsNothing)
{
    XlaCache cache(1);
    for (size_t t : {size_t(1), size_t(64), size_t(484)}) {
        EXPECT_EQ(cache.bucketOf(t), t);
        EXPECT_EQ(cache.paddedTokens(t), t);
    }
}

TEST(BatchingXla, ZeroWidthClampsToExactShapes)
{
    XlaCache cache(0);
    EXPECT_EQ(cache.bucketTokens(), 1u);
    EXPECT_EQ(cache.paddedTokens(484), 484u);
}

TEST(BatchingXla, MixedSizeStreamHitAccounting)
{
    XlaCache cache; // width 64
    const auto kind = model::LayerKind::SingleAttention;
    // 484, 500, and 511 all land in bucket 7: one compile covers
    // the stream. 512 opens bucket 8 and compiles again.
    EXPECT_FALSE(cache.lookupOrInsert(kind, 484));
    EXPECT_TRUE(cache.lookupOrInsert(kind, 500));
    EXPECT_TRUE(cache.lookupOrInsert(kind, 511));
    EXPECT_FALSE(cache.lookupOrInsert(kind, 512));
    EXPECT_TRUE(cache.lookupOrInsert(kind, 512));
    EXPECT_EQ(cache.size(), 2u);

    // Width 1 treats the same stream as three distinct shapes.
    XlaCache exact(1);
    EXPECT_FALSE(exact.lookupOrInsert(kind, 484));
    EXPECT_FALSE(exact.lookupOrInsert(kind, 500));
    EXPECT_FALSE(exact.lookupOrInsert(kind, 511));
    EXPECT_EQ(exact.size(), 3u);
}

// --- Batched dispatch -------------------------------------------

TEST(BatchingInference, EmptyBatchIsZeroed)
{
    XlaCache cache;
    const auto r = simulateBatchedInference(sys::serverPlatform(),
                                            {}, cache);
    EXPECT_EQ(r.batchSize, 0u);
    EXPECT_FALSE(r.oom);
    EXPECT_DOUBLE_EQ(r.totalSeconds(), 0.0);
    EXPECT_DOUBLE_EQ(r.usefulFlops + r.paddedFlops, 0.0);
}

TEST(BatchingInference, SingletonReproducesSoloBitIdentically)
{
    const auto platform = sys::serverPlatform();
    XlaCache soloCache, batchCache;
    const auto solo = simulateInference(platform, 484, soloCache);
    const auto batched =
        simulateBatchedInference(platform, {484}, batchCache);
    EXPECT_EQ(batched.batchSize, 1u);
    EXPECT_EQ(batched.execTokens, 484u); // native length, unpadded
    EXPECT_DOUBLE_EQ(batched.initSeconds, solo.initSeconds);
    EXPECT_DOUBLE_EQ(batched.compileSeconds, solo.compileSeconds);
    EXPECT_DOUBLE_EQ(batched.gpuComputeSeconds,
                     solo.gpuComputeSeconds);
    EXPECT_DOUBLE_EQ(batched.finalizeSeconds,
                     solo.finalizeSeconds);
    EXPECT_DOUBLE_EQ(batched.paddedFlops, 0.0);
    EXPECT_GT(batched.usefulFlops, 0.0);
}

TEST(BatchingInference, PaddingAccountedSeparately)
{
    const auto platform = sys::serverPlatform();
    XlaCache cache; // width 64: 450 and 484 share bucket 7
    const auto r =
        simulateBatchedInference(platform, {450, 484}, cache);
    EXPECT_EQ(r.batchSize, 2u);
    EXPECT_EQ(r.execTokens, 511u);
    EXPECT_GT(r.usefulFlops, 0.0);
    EXPECT_GT(r.paddedFlops, 0.0);
    EXPECT_GT(r.paddingWasteFraction(), 0.0);
    EXPECT_LT(r.paddingWasteFraction(), 1.0);

    // Width 1 pads nothing, so a uniform batch wastes nothing.
    XlaCache exact(1);
    const auto uniform =
        simulateBatchedInference(platform, {484, 484}, exact);
    EXPECT_EQ(uniform.execTokens, 484u);
    EXPECT_DOUBLE_EQ(uniform.paddedFlops, 0.0);
    EXPECT_DOUBLE_EQ(uniform.paddingWasteFraction(), 0.0);
}

TEST(BatchingInference, SharedCompilePaidOncePerBucket)
{
    const auto platform = sys::serverPlatform();
    XlaCache cache;
    const auto cold =
        simulateBatchedInference(platform, {484, 500}, cache);
    EXPECT_GT(cold.compileSeconds, 0.0);
    // The bucket's executable is now cached: a second batch (and a
    // solo request) in the same bucket compiles nothing.
    const auto warm =
        simulateBatchedInference(platform, {460, 511}, cache);
    EXPECT_DOUBLE_EQ(warm.compileSeconds, 0.0);
    const auto solo = simulateInference(platform, 490, cache);
    EXPECT_DOUBLE_EQ(solo.compileSeconds, 0.0);
}

TEST(BatchingInference, BatchBeatsSequentialSoloDispatches)
{
    const auto platform = sys::serverPlatform();
    InferenceSimOptions options;
    options.gpuAlreadyInitialized = true; // long-lived server

    XlaCache warm;
    (void)simulateInference(platform, 484, warm, options);
    const auto solo =
        simulateInference(platform, 484, warm, options);

    XlaCache batchCache;
    (void)simulateInference(platform, 484, batchCache, options);
    const auto batched = simulateBatchedInference(
        platform, {484, 484}, batchCache, options);
    // One finalize base and one launch ramp across two members.
    EXPECT_LT(batched.totalSeconds(), 2.0 * solo.totalSeconds());
    EXPECT_GT(batched.totalSeconds(), solo.totalSeconds());
}

TEST(BatchingInferenceDeathTest, MembersMustShareABucket)
{
    const auto platform = sys::serverPlatform();
    XlaCache cache; // width 64: 10 is bucket 0, 484 is bucket 7
    EXPECT_DEATH(
        (void)simulateBatchedInference(platform, {10, 484}, cache),
        "span token buckets");
}

TEST(BatchingInference, MaxBatchForVramIsAtLeastOne)
{
    const auto cfg = model::paperConfig();
    // Even an over-VRAM execution length admits one request (it
    // spills or OOMs exactly like the solo path).
    EXPECT_GE(maxBatchForVram(sys::desktopPlatform(), 5120, cfg),
              1u);
    // Shorter execution lengths never admit fewer requests.
    EXPECT_GE(maxBatchForVram(sys::serverPlatform(), 63, cfg),
              maxBatchForVram(sys::serverPlatform(), 511, cfg));
    EXPECT_GE(maxBatchForVram(sys::serverPlatform(), 511, cfg),
              1u);
}

TEST(BatchingInference, OverVramBatchSpillsOrFails)
{
    // 6QNR-scale members on the 16 GiB desktop: unified memory
    // spills, and with it disabled the dispatch is an OOM.
    const auto platform = sys::desktopPlatform();
    XlaCache cache;
    InferenceSimOptions spill;
    const auto spilled = simulateBatchedInference(
        platform, {1395, 1400}, cache, spill);
    EXPECT_FALSE(spilled.oom);
    EXPECT_TRUE(spilled.usedUnifiedMemory);

    InferenceSimOptions strict;
    strict.unifiedMemory = false;
    XlaCache cache2;
    const auto failed = simulateBatchedInference(
        platform, {1395, 1400}, cache2, strict);
    EXPECT_TRUE(failed.oom);
}

TEST(BatchingInference, DataParallelFanOutShrinksGpuPhaseOnly)
{
    const auto platform = sys::serverPlatform();
    XlaCache one, four;
    const std::vector<size_t> members = {484, 484, 484, 484};
    const auto g1 =
        simulateBatchedInference(platform, members, one, {}, 1);
    const auto g4 =
        simulateBatchedInference(platform, members, four, {}, 4);
    EXPECT_EQ(g1.gpus, 1u);
    EXPECT_EQ(g4.gpus, 4u);
    // The GPU phase is the slowest shard; host phases are shared.
    EXPECT_LT(g4.gpuComputeSeconds, g1.gpuComputeSeconds);
    EXPECT_DOUBLE_EQ(g4.compileSeconds, g1.compileSeconds);
    EXPECT_DOUBLE_EQ(g4.finalizeSeconds, g1.finalizeSeconds);
    EXPECT_DOUBLE_EQ(g4.usefulFlops, g1.usefulFlops);
}

} // namespace
} // namespace afsb::gpusim
