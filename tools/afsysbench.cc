/**
 * @file
 * The AFSysBench command-line driver — the C++ counterpart of the
 * paper's shell-script suite. Automates sequential execution of
 * input samples through the MSA and inference stages, thread-
 * scaling sweeps, run repetition with coefficient-of-variation
 * reporting (the paper's five-run methodology), and CSV export.
 *
 * Commands:
 *   afsysbench list
 *   afsysbench run       --sample promo --platform desktop
 *                        --threads 1,2,4,6,8 --repeats 3
 *                        [--preload] [--csv out.csv]
 *   afsysbench inference --sample 2PV7 --platform server
 *                        [--persistent] [--requests 3]
 *   afsysbench serve     --platform server --msa-workers 4
 *                        --gpu-workers 2 --rps 0.5 --duration 3600
 *                        --cache-mb 512 [--policy fifo|sjf]
 *                        [--csv out.csv]
 *   afsysbench estimate  --sample 6QNR --platform desktop
 *   afsysbench advise    --sample 1YY9 --platform server
 *   afsysbench opgraph   --sample 2PV7 [--tokens N]
 *                        [--module all|pairformer|diffusion]
 *                        [--dump] [--format text|json] [--out FILE]
 *                        [--platform P]
 *
 * --platform accepts a builtin name or a path to a *.json platform
 * config (see configs/platforms/).
 */

#include <cstdio>
#include <memory>

#include "cachesim/op_attribution.hh"
#include "core/adaptive_threads.hh"
#include "core/memory_estimator.hh"
#include "core/pipeline.hh"
#include "io/textfile.hh"
#include "opgraph/build.hh"
#include "prof/repetition.hh"
#include "serve/report.hh"
#include "sys/platform_config.hh"
#include "util/cli.hh"
#include "util/csv.hh"
#include "util/logging.hh"
#include "util/str.hh"
#include "util/table.hh"
#include "util/units.hh"

using namespace afsb;

namespace {

/** Builtin --platform names; the flag also accepts *.json paths
 *  (sys::resolvePlatform). Keep the usage text enumerating these. */
constexpr const char *kPlatformNames =
    "server, server-cxl, desktop, desktop-128, or a *.json config "
    "path";

sys::PlatformSpec
platformByName(const std::string &name)
{
    return sys::resolvePlatform(name);
}

int
cmdList()
{
    std::printf("Samples (paper Table II):\n");
    for (const auto &sample : bio::makeAllSamples())
        std::printf("  %-6s %-24s %5zu residues  %s\n",
                    sample.info.name.c_str(),
                    sample.info.structure.c_str(),
                    sample.complex.totalResidues(),
                    sample.info.target.c_str());
    std::printf("\nPlatforms (paper Table I):\n");
    for (const auto &p :
         {sys::serverPlatform(), sys::serverPlatformWithCxl(),
          sys::desktopPlatform(), sys::desktopPlatformUpgraded()})
        std::printf("  %-12s %s + %s, %s\n", p.name.c_str(),
                    p.cpu.name.c_str(), p.gpu.name.c_str(),
                    formatBytes(p.totalMemoryBytes()).c_str());
    return 0;
}

int
cmdRun(const CliArgs &args)
{
    const auto sample = bio::makeSample(args.get("sample", "2PV7"));
    const auto platform =
        platformByName(args.get("platform", "desktop"));
    const auto threads = args.getIntList("threads", {1, 2, 4, 8});
    const auto repeats =
        static_cast<size_t>(args.getInt("repeats", 1));

    CsvWriter csv;
    csv.setHeader({"sample", "platform", "threads", "msa_s",
                   "msa_cv", "inference_s", "total_s", "msa_share",
                   "peak_mem_bytes"});

    TextTable table(strformat("%s on %s",
                              sample.info.name.c_str(),
                              platform.name.c_str()));
    table.setHeader({"Threads", "MSA (s)", "CV", "Inference (s)",
                     "Total (s)", "MSA share"});

    for (uint32_t th : threads) {
        double inferenceSeconds = 0.0;
        uint64_t peak = 0;
        // Repetition with re-seeded databases (the paper's 5-run
        // stability methodology; CV stays within a few percent).
        const auto rep = prof::repeatMeasurement(
            repeats,
            [&](size_t run) {
                std::unique_ptr<core::Workspace> fresh;
                const core::Workspace *ws =
                    &core::Workspace::shared();
                if (run > 0) {
                    core::WorkspaceConfig wcfg;
                    wcfg.seed = 0xaf5b + run * 7919;
                    fresh = std::make_unique<core::Workspace>(
                        wcfg);
                    ws = fresh.get();
                }
                core::PipelineOptions opt;
                opt.msaThreads = th;
                opt.msa.traceStride = 16;
                opt.msa.preloadDatabases =
                    args.getSwitch("preload");
                const auto r = core::runPipeline(sample.complex,
                                                 platform, *ws, opt);
                if (r.oom)
                    fatal("run OOMed; use `estimate` first");
                inferenceSeconds = r.inference.totalSeconds();
                peak = r.msa.peakMemoryBytes;
                return r.msa.seconds;
            },
            0.05);

        const double msa = rep.mean();
        const double total = msa + inferenceSeconds;
        table.addRow({strformat("%u", th), strformat("%.1f", msa),
                      strformat("%.1f%%", 100.0 * rep.cv()),
                      strformat("%.1f", inferenceSeconds),
                      strformat("%.1f", total),
                      strformat("%.1f%%", 100.0 * msa / total)});
        csv.addRow({sample.info.name, platform.name,
                    strformat("%u", th), strformat("%.3f", msa),
                    strformat("%.4f", rep.cv()),
                    strformat("%.3f", inferenceSeconds),
                    strformat("%.3f", total),
                    strformat("%.4f", msa / total),
                    strformat("%llu",
                              static_cast<unsigned long long>(
                                  peak))});
        if (!rep.stable())
            warn(strformat("threads=%u: CV %.1f%% exceeds 5%%",
                           th, 100.0 * rep.cv()));
    }
    table.print();

    if (args.has("csv")) {
        csv.writeFile(args.get("csv"));
        std::printf("CSV written to %s\n",
                    args.get("csv").c_str());
    }
    return 0;
}

int
cmdInference(const CliArgs &args)
{
    const auto sample = bio::makeSample(args.get("sample", "2PV7"));
    const auto platform =
        platformByName(args.get("platform", "server"));
    const auto requests =
        static_cast<int>(args.getInt("requests", 3));
    const bool persistent = args.getSwitch("persistent");

    std::printf("%d inference requests for %s on %s "
                "(persistent model state: %s)\n\n",
                requests, sample.info.name.c_str(),
                platform.name.c_str(), persistent ? "on" : "off");

    gpusim::XlaCache persistentCache;
    TextTable t("Inference requests");
    t.setHeader({"Request", "init", "xla", "gpu", "final",
                 "total (s)"});
    for (int r = 1; r <= requests; ++r) {
        gpusim::XlaCache freshCache;
        gpusim::XlaCache &cache =
            persistent ? persistentCache : freshCache;
        const auto result = gpusim::simulateInference(
            platform, sample.complex.totalResidues(), cache);
        t.addRow({strformat("%d", r),
                  strformat("%.1f", result.initSeconds),
                  strformat("%.1f", result.compileSeconds),
                  strformat("%.1f", result.gpuComputeSeconds),
                  strformat("%.1f", result.finalizeSeconds),
                  strformat("%.1f", result.totalSeconds())});
    }
    t.print();
    return 0;
}

int
cmdServe(const CliArgs &args)
{
    const auto platform =
        platformByName(args.get("platform", "server"));

    // Validate flag combinations up front, on the signed parses,
    // so a bad value fails with one clear line instead of wrapping
    // through an unsigned cast into the simulator.
    if (args.getDouble("rps", 0.05) <= 0.0)
        fatal("serve: --rps must be > 0");
    if (args.getDouble("duration", 3600.0) <= 0.0)
        fatal("serve: --duration must be > 0");
    if (args.getInt("msa-workers", 4) < 1)
        fatal("serve: --msa-workers must be >= 1");
    if (args.getInt("gpu-workers", 2) < 1)
        fatal("serve: --gpu-workers must be >= 1");
    if (args.getInt("queue-cap", 64) < 1)
        fatal("serve: --queue-cap must be >= 1");
    if (args.getInt("batch-max", 1) < 1)
        fatal("serve: --batch-max must be >= 1");
    if (args.getDouble("batch-wait-ms", 0.0) < 0.0)
        fatal("serve: --batch-wait-ms must be >= 0");
    if (args.getInt("gpus-per-node", 1) < 1)
        fatal("serve: --gpus-per-node must be >= 1");
    if (args.getInt("bucket-tokens",
                    gpusim::XlaCache::kBucketTokens) < 1)
        fatal("serve: --bucket-tokens must be >= 1");
    if (args.has("sim-cache-threshold")) {
        const double t = args.getDouble("sim-cache-threshold", 0.0);
        if (t <= 0.0 || t > 1.0)
            fatal("serve: --sim-cache-threshold must be in (0, 1]");
    }
    {
        const double ret = args.getDouble("sim-cache-retention", 0.5);
        if (ret < 0.0 || ret > 1.0)
            fatal("serve: --sim-cache-retention must be in [0, 1]");
    }
    {
        const double mut = args.getDouble("mutation-rate", 0.0);
        if (mut < 0.0 || mut >= 1.0)
            fatal("serve: --mutation-rate must be in [0, 1)");
    }
    if (args.getInt("db-budget-mb", 8) < 1)
        fatal("serve: --db-budget-mb must be >= 1");
    if (args.has("kill-node")) {
        const int64_t nodes = args.getInt("nodes", 1);
        const int64_t kill = args.getInt("kill-node", 0);
        if (nodes < 2)
            fatal("serve: --kill-node needs a multi-node topology "
                  "(--nodes >= 2)");
        if (kill < 0 || kill >= nodes)
            fatal("serve: --kill-node " + std::to_string(kill) +
                  " is out of range for --nodes " +
                  std::to_string(nodes));
    }

    serve::WorkloadSpec workload;
    workload.requestsPerSecond = args.getDouble("rps", 0.05);
    workload.durationSeconds = args.getDouble("duration", 3600.0);
    workload.seed =
        static_cast<uint64_t>(args.getInt("seed", 0x5e7eaf3b));
    workload.variantsPerSample =
        static_cast<uint32_t>(args.getInt("unique", 4));
    if (args.has("mix"))
        workload.mix = serve::parseMix(args.get("mix"));
    workload.mutationRate = args.getDouble("mutation-rate", 0.0);
    workload.sketchQueries = args.has("sim-cache-threshold");

    serve::ClusterConfig cluster;
    cluster.msaWorkers =
        static_cast<uint32_t>(args.getInt("msa-workers", 4));
    cluster.gpuWorkers =
        static_cast<uint32_t>(args.getInt("gpu-workers", 2));
    cluster.admissionCapacity =
        static_cast<size_t>(args.getInt("queue-cap", 64));
    cluster.policy =
        serve::policyByName(args.get("policy", "fifo"));
    cluster.msaCacheBudgetBytes =
        static_cast<uint64_t>(args.getInt("cache-mb", 512)) << 20;
    cluster.msaThreadsPerWorker =
        static_cast<uint32_t>(args.getInt("msa-threads", 8));
    cluster.batchMax =
        static_cast<uint32_t>(args.getInt("batch-max", 1));
    cluster.batchWaitSeconds =
        args.getDouble("batch-wait-ms", 0.0) / 1000.0;
    cluster.gpusPerNode =
        static_cast<uint32_t>(args.getInt("gpus-per-node", 1));
    cluster.bucketTokens = static_cast<uint32_t>(args.getInt(
        "bucket-tokens", gpusim::XlaCache::kBucketTokens));
    cluster.simCacheThreshold =
        args.getDouble("sim-cache-threshold", 0.0);
    cluster.simCacheMinRetention =
        args.getDouble("sim-cache-retention", 0.5);

    cluster.topology.nodes =
        static_cast<uint32_t>(args.getInt("nodes", 1));
    if (args.has("link-gbps"))
        cluster.topology.link.bandwidthBytesPerSec =
            args.getDouble("link-gbps", 100.0) * 1e9 / 8.0;
    if (args.has("link-latency-us"))
        cluster.topology.link.latencySeconds =
            args.getDouble("link-latency-us", 5.0) * 1e-6;
    if (args.has("link-serialize-gbps"))
        cluster.topology.link.serializeBytesPerSec =
            args.getDouble("link-serialize-gbps", 0.0) * 1e9 / 8.0;

    fault::Plan &plan = cluster.faultPlan;
    if (args.has("fault-seed"))
        plan.seed =
            static_cast<uint64_t>(args.getInt("fault-seed", 0));
    plan.msaCrashProb = args.getDouble("fault-msa-crash", 0.0);
    plan.gpuCrashProb = args.getDouble("fault-gpu-crash", 0.0);
    plan.permanentProb = args.getDouble("fault-permanent", 0.0);
    plan.storageErrorProb =
        args.getDouble("fault-storage-err", 0.0);
    plan.storageSpikeProb =
        args.getDouble("fault-storage-spike", 0.0);
    plan.storageSpikeFactor =
        args.getDouble("fault-spike-factor", 8.0);
    plan.cacheCorruptProb =
        args.getDouble("fault-cache-corrupt", 0.0);
    if (args.has("kill-node")) {
        fault::NodeKill kill;
        kill.node =
            static_cast<uint32_t>(args.getInt("kill-node", 0));
        kill.atSeconds = args.getDouble("kill-at", 0.0);
        kill.rebuildSeconds =
            args.getDouble("kill-rebuild", -1.0);
        plan.nodeKills.push_back(kill);
    }

    serve::RecoveryPolicy &recovery = cluster.recovery;
    recovery.maxAttemptsPerStage =
        static_cast<uint32_t>(args.getInt("retry-max", 3));
    recovery.retryBudget =
        static_cast<uint64_t>(args.getInt("retry-budget", 1 << 20));
    recovery.backoffBaseSeconds = args.getDouble("backoff", 20.0);
    recovery.backoffMultiplier =
        args.getDouble("backoff-mult", 2.0);
    recovery.msaDeadlineSeconds =
        args.getDouble("deadline-msa", 0.0);
    recovery.gpuDeadlineSeconds =
        args.getDouble("deadline-gpu", 0.0);
    if (args.has("respawn-s"))
        recovery.gpuRespawnSeconds =
            args.getDouble("respawn-s", 0.0);
    recovery.degradeOnExhaustion = !args.getSwitch("no-degrade");

    std::printf(
        "Serving cluster on %s: %u MSA workers (%uT each), "
        "%u GPU workers, policy %s,\n"
        "admission cap %zu, MSA cache %s; open-loop %.3f req/s "
        "for %.0f s (seed %llu)\n\n",
        platform.name.c_str(), cluster.msaWorkers,
        cluster.msaThreadsPerWorker, cluster.gpuWorkers,
        serve::policyName(cluster.policy),
        cluster.admissionCapacity,
        formatBytes(cluster.msaCacheBudgetBytes).c_str(),
        workload.requestsPerSecond, workload.durationSeconds,
        static_cast<unsigned long long>(workload.seed));

    if (cluster.simCacheThreshold > 0.0)
        std::printf("Similarity cache tier: Jaccard threshold "
                    "%.2f, delta retention %.2f, workload "
                    "mutation rate %.3f%%\n\n",
                    cluster.simCacheThreshold,
                    cluster.simCacheMinRetention,
                    100.0 * workload.mutationRate);

    if (cluster.batchMax > 1)
        std::printf("Continuous batching: up to %u per dispatch, "
                    "wait %.0f ms, bucket %u tokens, "
                    "%u GPUs/node\n\n",
                    cluster.batchMax,
                    cluster.batchWaitSeconds * 1000.0,
                    cluster.bucketTokens, cluster.gpusPerNode);

    if (cluster.topology.nodes > 1)
        std::printf("Topology: %u nodes (worker pools per node), "
                    "links %.1f Gb/s, %.1f us latency\n\n",
                    cluster.topology.nodes,
                    cluster.topology.link.bandwidthBytesPerSec *
                        8.0 / 1e9,
                    cluster.topology.link.latencySeconds * 1e6);

    if (!plan.empty())
        std::printf("Fault plan (seed %llu): msa-crash %.3f, "
                    "gpu-crash %.3f, permanent %.3f,\n"
                    "  storage-err %.3f, storage-spike %.3f "
                    "(x%.1f), cache-corrupt %.3f; retries <= %u "
                    "per stage\n\n",
                    static_cast<unsigned long long>(plan.seed),
                    plan.msaCrashProb, plan.gpuCrashProb,
                    plan.permanentProb, plan.storageErrorProb,
                    plan.storageSpikeProb, plan.storageSpikeFactor,
                    plan.cacheCorruptProb,
                    recovery.maxAttemptsPerStage);

    const auto requests = serve::generateRequests(workload);
    const auto result = serve::simulateCluster(
        platform, core::Workspace::shared(), requests, cluster);
    const auto report = serve::buildSloReport(result);
    printSloReport(report, platform.name);

    TextTable samples("Per-sample MSA service time (memoized)");
    samples.setHeader({"Sample", "MSA (s)"});
    for (const auto &[name, secs] : result.msaSecondsBySample)
        samples.addRow({name, strformat("%.1f", secs)});
    if (samples.rowCount() > 0)
        samples.print();

    if (args.getSwitch("db-streaming")) {
        // Real-I/O streaming-database check: compress the RNA
        // collection into an AFBC container (private Vfs copy; the
        // shared workspace stays untouched), scan it through the
        // bounded decode cache, and report the residency the
        // paper-scale footprint would need.
        const uint64_t budget = static_cast<uint64_t>(
                                    args.getInt("db-budget-mb", 8))
                                << 20;
        io::Vfs vfs = core::Workspace::shared().vfs();
        io::StorageDevice dev;
        io::PageCache pcache(256ull << 20, &dev);
        const auto comp = msa::compressDatabase(
            vfs, "rfam_scaled.fasta", "rfam_scaled.afbc");
        auto sdb = msa::StreamingSequenceDatabase::open(
            vfs, pcache, "rfam_scaled.afbc", bio::MoleculeType::Rna,
            0.0, budget);
        sdb.setPaperScaleBytes(msa::paperdb::kRnaDbBytes);
        const auto query = sdb.materialize(0, 0.0);
        const auto prof = msa::ProfileHmm::fromSequence(
            query, msa::ScoreMatrix::nucleotide());
        const auto scan =
            msa::searchDatabaseStreaming(prof, sdb, {});

        TextTable st("Streaming compressed database (RNA "
                     "collection)");
        st.setHeader({"Metric", "Value"});
        st.addRow({"FASTA bytes", formatBytes(comp.rawBytes)});
        st.addRow({"AFBC bytes",
                   formatBytes(comp.compressedBytes)});
        st.addRow({"compression ratio",
                   strformat("%.2fx", comp.ratio())});
        st.addRow({"targets scanned",
                   strformat("%llu",
                             static_cast<unsigned long long>(
                                 scan.stats.targetsScanned))});
        st.addRow({"decode budget", formatBytes(budget)});
        st.addRow({"peak resident",
                   formatBytes(sdb.peakResidentBytes())});
        st.addRow({"paper-scale footprint",
                   formatBytes(sdb.info().paperScaleBytes)});
        st.print();
    }

    if (args.has("csv")) {
        serve::requestCsv(result).writeFile(args.get("csv"));
        std::printf("Per-request CSV written to %s\n",
                    args.get("csv").c_str());
    }
    if (args.has("report-out")) {
        io::writeTextFile(args.get("report-out"),
                          serve::canonicalSloText(report));
        std::printf("Canonical report written to %s\n",
                    args.get("report-out").c_str());
    }
    if (args.has("fault-log")) {
        io::writeTextFile(args.get("fault-log"), result.faultLog);
        std::printf("Fault log (%llu events) written to %s\n",
                    static_cast<unsigned long long>(
                        result.faultsInjected),
                    args.get("fault-log").c_str());
    }
    if (args.has("comm-trace")) {
        io::writeTextFile(args.get("comm-trace"),
                          result.commTrace);
        std::printf("Comm trace (%llu messages) written to %s\n",
                    static_cast<unsigned long long>(
                        result.comm.messages),
                    args.get("comm-trace").c_str());
    }
    return 0;
}

int
cmdEstimate(const CliArgs &args)
{
    const auto sample = bio::makeSample(args.get("sample", "6QNR"));
    const auto platform =
        platformByName(args.get("platform", "desktop"));
    const auto estimate = core::estimateMemory(
        sample.complex, platform,
        static_cast<uint32_t>(args.getInt("threads", 8)));
    std::printf("%s", estimate.render().c_str());
    return estimate.willOom() ? 1 : 0;
}

int
cmdOpgraph(const CliArgs &args)
{
    const model::ModelConfig cfg;
    size_t tokens = 0;
    if (args.has("tokens")) {
        const int64_t n = args.getInt("tokens", 0);
        if (n < 1)
            fatal("opgraph: --tokens must be >= 1");
        tokens = static_cast<size_t>(n);
    } else {
        tokens = bio::makeSample(args.get("sample", "2PV7"))
                     .complex.totalResidues();
    }

    const std::string module = args.get("module", "all");
    opgraph::OpGraph graph;
    if (module == "all")
        graph = opgraph::buildInferenceGraph(tokens, cfg);
    else if (module == "pairformer")
        graph = opgraph::buildPairformerGraph(tokens, cfg);
    else if (module == "diffusion")
        graph = opgraph::buildDiffusionGraph(tokens, cfg);
    else
        fatal("opgraph: --module must be all, pairformer, or "
              "diffusion");

    if (args.getSwitch("dump")) {
        const std::string format = args.get("format", "text");
        std::string out;
        if (format == "text")
            out = opgraph::render(graph);
        else if (format == "json")
            out = opgraph::toJson(graph).dumpPretty() + "\n";
        else
            fatal("opgraph: --format must be text or json");
        if (args.has("out")) {
            io::writeTextFile(args.get("out"), out);
            std::printf("Operator graph written to %s\n",
                        args.get("out").c_str());
        } else {
            std::printf("%s", out.c_str());
        }
        return 0;
    }

    const auto platform =
        platformByName(args.get("platform", "server"));
    const auto attr =
        cachesim::attributeOpGraph(graph, platform);

    std::printf("%s: %zu ops, %.3e FLOPs, %s traffic, %llu "
                "kernels\n",
                graph.label.c_str(), graph.ops.size(),
                graph.totalFlops(),
                formatBytes(static_cast<uint64_t>(
                                graph.totalTrafficBytes()))
                    .c_str(),
                static_cast<unsigned long long>(
                    graph.totalKernels()));
    std::printf("CPU roofline on %s: %.3e FLOP/s peak, %.3e B/s "
                "DRAM\n\n",
                platform.name.c_str(), attr.peakFlops,
                attr.memBandwidth);

    TextTable t(strformat("Operator attribution (%s, N=%zu)",
                          platform.name.c_str(), tokens));
    t.setHeader({"Op", "Layer", "FLOPs", "Bytes", "Bound",
                 "Time (s)", "Share"});
    for (const auto &a : attr.ops)
        t.addRow({strformat("%u", a.id), a.name,
                  strformat("%.2e", a.flops),
                  strformat("%.2e", a.trafficBytes),
                  a.memoryBound ? "memory" : "compute",
                  strformat("%.3f", a.boundSeconds),
                  strformat("%.1f%%", 100.0 * a.share)});
    t.print();
    std::printf("\nmemory-bound time: %.1f%% of %.3f s\n",
                attr.totalSeconds > 0.0
                    ? 100.0 * attr.memoryBoundSeconds /
                          attr.totalSeconds
                    : 0.0,
                attr.totalSeconds);
    return 0;
}

int
cmdAdvise(const CliArgs &args)
{
    const auto sample = bio::makeSample(args.get("sample", "2PV7"));
    const auto platform =
        platformByName(args.get("platform", "server"));
    const auto advice = core::recommendThreads(
        sample.complex, platform, core::Workspace::shared(),
        args.getIntList("threads", {1, 2, 4, 6, 8}));
    std::printf("recommended threads: %u (predicted %.1f s; "
                "fixed 8T default %.1f s)\n",
                advice.recommendedThreads, advice.predictedSeconds,
                advice.defaultSeconds);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    const std::string cmd = args.command("help");
    try {
        if (cmd == "list")
            return cmdList();
        if (cmd == "run")
            return cmdRun(args);
        if (cmd == "inference")
            return cmdInference(args);
        if (cmd == "serve")
            return cmdServe(args);
        if (cmd == "estimate")
            return cmdEstimate(args);
        if (cmd == "advise")
            return cmdAdvise(args);
        if (cmd == "opgraph")
            return cmdOpgraph(args);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    std::printf(
        "usage: afsysbench <list|run|inference|serve|estimate|"
        "advise|opgraph>\n"
        "  common: [--sample S] [--platform P] [--threads 1,2,4] "
        "[--repeats N]\n"
        "          [--preload] [--persistent] [--csv FILE]\n"
        "  serve:  [--msa-workers N] [--gpu-workers M] [--rps R] "
        "[--duration S]\n"
        "          [--cache-mb MB] [--policy fifo|sjf] "
        "[--queue-cap N] [--mix \"2PV7=2,promo=1\"]\n"
        "          [--unique K] [--seed N] [--msa-threads T]\n"
        "          batching: [--batch-max B] [--batch-wait-ms W] "
        "[--gpus-per-node G]\n"
        "          [--bucket-tokens T]\n"
        "          similarity: [--sim-cache-threshold J] "
        "[--sim-cache-retention R]\n"
        "          [--mutation-rate P] [--db-streaming] "
        "[--db-budget-mb MB]\n"
        "          faults: [--fault-seed N] [--fault-msa-crash P] "
        "[--fault-gpu-crash P]\n"
        "          [--fault-permanent P] [--fault-storage-err P] "
        "[--fault-storage-spike P]\n"
        "          [--fault-spike-factor F] "
        "[--fault-cache-corrupt P]\n"
        "          recovery: [--retry-max N] [--retry-budget N] "
        "[--backoff S] [--backoff-mult F]\n"
        "          [--deadline-msa S] [--deadline-gpu S] "
        "[--respawn-s S] [--no-degrade]\n"
        "          topology: [--nodes N] [--link-gbps G] "
        "[--link-latency-us U]\n"
        "          [--link-serialize-gbps G] "
        "[--kill-node N --kill-at S [--kill-rebuild S]]\n"
        "          output: [--report-out FILE] [--fault-log FILE] "
        "[--comm-trace FILE]\n"
        "  opgraph: [--sample S | --tokens N] "
        "[--module all|pairformer|diffusion]\n"
        "          [--dump] [--format text|json] [--out FILE] "
        "[--platform P]\n"
        "  platforms: %s\n",
        kPlatformNames);
    return cmd == "help" ? 0 : 1;
}
