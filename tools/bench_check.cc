/**
 * @file
 * Benchmark regression gate for CI.
 *
 * Compares a current benchmark JSON (bench_kernels --json,
 * bench_fig4_msa_scaling --json, bench_serving_cluster --json, or
 * bench_multinode_scaling --json; all emit the same
 * `{"benchmarks": [{"name", "ns_per_op", ...}]}` shape) against a
 * committed baseline and fails when any benchmark regresses beyond
 * the tolerance.
 *
 * CI runners and developer machines run at different speeds, so raw
 * ns comparisons would be meaningless for wall-clock benches.
 * Instead the per-benchmark ratio current/baseline is divided by the
 * *median* ratio across all shared benchmarks — the median absorbs
 * uniform machine-speed differences, leaving only relative
 * regressions: a benchmark that slowed down relative to its peers
 * sticks out even when the whole suite runs 2x slower on a cold CI
 * runner. Simulator benches (bench_serving_cluster,
 * bench_multinode_scaling) run on a virtual clock and are
 * seed-deterministic, so they skip the normalization via --absolute
 * and can be gated with a tight tolerance.
 *
 * --trend keeps a committed history file
 * (`{"entries": [{"label", "benchmarks": [...]}]}`, e.g. the
 * repo-root BENCH_serving.json): the newest entry is the baseline,
 * and --append records the current run as a new entry after the
 * gate passes.
 *
 * Usage:
 *   bench_check --baseline <json> --current <json>
 *               [--tolerance <ratio>] [--absolute]
 *   bench_check --trend <json> --current <json>
 *               [--tolerance <ratio>] [--absolute]
 *               [--append] [--label <text>]
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "util/json.hh"
#include "util/stats.hh"

using namespace afsb;

namespace {

/** Parse a JSON file; exit(2) with a message when unreadable. */
JsonValue
loadDoc(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "bench_check: cannot open %s\n",
                     path.c_str());
        std::exit(2);
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return parseJson(ss.str());
}

/** name -> ns_per_op from a `"benchmarks": [...]` array. */
std::map<std::string, double>
benchMap(const JsonValue &benches)
{
    std::map<std::string, double> out;
    for (size_t i = 0; i < benches.size(); ++i) {
        const JsonValue &b = benches.at(i);
        out[b.at("name").asString()] =
            b.at("ns_per_op").asNumber();
    }
    return out;
}

/**
 * Gate @p current against @p baseline.
 * @return the number of regressed benchmarks, or -1 when the two
 *         files share no benchmark names.
 */
int
compare(const std::map<std::string, double> &baseline,
        const std::map<std::string, double> &current,
        double tolerance, bool absolute)
{
    struct Row
    {
        std::string name;
        double ratio;  ///< current / baseline, raw
    };
    std::vector<Row> rows;
    std::vector<double> ratios;
    for (const auto &[name, ns] : current) {
        const auto it = baseline.find(name);
        if (it == baseline.end() || it->second <= 0.0)
            continue;
        rows.push_back({name, ns / it->second});
        ratios.push_back(rows.back().ratio);
    }
    if (rows.empty())
        return -1;

    // Machine-speed normalization: divide out the median ratio.
    // --absolute skips it — virtual-clock benches are
    // machine-independent, so the raw ratio is the signal.
    const double speed = absolute ? 1.0 : medianOf(ratios);
    std::printf("bench_check: %zu shared benchmarks, machine-speed "
                "factor %.3f%s, tolerance %.2fx\n",
                rows.size(), speed,
                absolute ? " (absolute)" : "", tolerance);

    int failures = 0;
    for (const auto &row : rows) {
        const double normalized =
            speed > 0.0 ? row.ratio / speed : row.ratio;
        const bool bad = normalized > tolerance;
        std::printf("  %-48s raw %.3fx  normalized %.3fx%s\n",
                    row.name.c_str(), row.ratio, normalized,
                    bad ? "  REGRESSION" : "");
        failures += bad ? 1 : 0;
    }
    return failures;
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: bench_check --baseline <json> --current <json>\n"
        "                   [--tolerance <ratio>] [--absolute]\n"
        "       bench_check --trend <json> --current <json>\n"
        "                   [--tolerance <ratio>] [--absolute]\n"
        "                   [--append] [--label <text>]\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string baselinePath, currentPath, trendPath, label;
    double tolerance = 1.30;
    bool absolute = false, append = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc)
            baselinePath = argv[++i];
        else if (std::strcmp(argv[i], "--current") == 0 &&
                 i + 1 < argc)
            currentPath = argv[++i];
        else if (std::strcmp(argv[i], "--trend") == 0 &&
                 i + 1 < argc)
            trendPath = argv[++i];
        else if (std::strcmp(argv[i], "--label") == 0 &&
                 i + 1 < argc)
            label = argv[++i];
        else if (std::strcmp(argv[i], "--tolerance") == 0 &&
                 i + 1 < argc)
            tolerance = std::atof(argv[++i]);
        else if (std::strcmp(argv[i], "--absolute") == 0)
            absolute = true;
        else if (std::strcmp(argv[i], "--append") == 0)
            append = true;
        else {
            usage();
            return 2;
        }
    }
    if (currentPath.empty() || tolerance <= 0.0 ||
        (baselinePath.empty() == trendPath.empty())) {
        usage();
        return 2;
    }

    const JsonValue currentDoc = loadDoc(currentPath);
    const JsonValue &currentBenches = currentDoc.at("benchmarks");
    const auto current = benchMap(currentBenches);

    // --- Classic two-file mode -----------------------------------
    if (!baselinePath.empty()) {
        const auto baseline =
            benchMap(loadDoc(baselinePath).at("benchmarks"));
        const int failures =
            compare(baseline, current, tolerance, absolute);
        if (failures < 0) {
            std::fprintf(stderr,
                         "bench_check: no shared benchmarks "
                         "between %s and %s\n",
                         baselinePath.c_str(), currentPath.c_str());
            return 2;
        }
        if (failures) {
            std::fprintf(stderr,
                         "bench_check: %d benchmark(s) regressed "
                         "more than %.2fx vs baseline\n",
                         failures, tolerance);
            return 1;
        }
        std::printf("bench_check: OK\n");
        return 0;
    }

    // --- Trend mode: newest entry is the baseline ----------------
    JsonValue trend = JsonValue::makeObject();
    trend["entries"] = JsonValue::makeArray();
    {
        std::ifstream probe(trendPath);
        if (probe)
            trend = loadDoc(trendPath);
        else if (!append) {
            std::fprintf(stderr,
                         "bench_check: trend file %s does not "
                         "exist (use --append to seed it)\n",
                         trendPath.c_str());
            return 2;
        }
    }
    const JsonValue &entries = trend.at("entries");
    if (entries.size() > 0) {
        const JsonValue &last = entries.at(entries.size() - 1);
        std::printf("bench_check: trend baseline '%s' (%zu "
                    "entries in %s)\n",
                    last.at("label").asString().c_str(),
                    entries.size(), trendPath.c_str());
        const int failures =
            compare(benchMap(last.at("benchmarks")), current,
                    tolerance, absolute);
        if (failures < 0) {
            std::fprintf(stderr,
                         "bench_check: no shared benchmarks "
                         "between %s and %s\n",
                         trendPath.c_str(), currentPath.c_str());
            return 2;
        }
        if (failures) {
            std::fprintf(stderr,
                         "bench_check: %d benchmark(s) regressed "
                         "more than %.2fx vs newest trend entry\n",
                         failures, tolerance);
            return 1;
        }
    } else {
        std::printf("bench_check: trend file empty — nothing to "
                    "gate against\n");
    }

    if (append) {
        JsonValue entry = JsonValue::makeObject();
        entry["label"] = label.empty() ? "unlabeled" : label;
        entry["benchmarks"] = currentBenches;
        trend["entries"].push(std::move(entry));
        std::ofstream out(trendPath);
        if (!out) {
            std::fprintf(stderr,
                         "bench_check: cannot write %s\n",
                         trendPath.c_str());
            return 2;
        }
        out << trend.dumpPretty() << "\n";
        std::printf("bench_check: appended entry '%s' to %s (%zu "
                    "entries)\n",
                    label.empty() ? "unlabeled" : label.c_str(),
                    trendPath.c_str(), trend.at("entries").size());
    }
    std::printf("bench_check: OK\n");
    return 0;
}
