/**
 * @file
 * Benchmark regression gate for CI.
 *
 * Compares a current benchmark JSON (bench_kernels --json or
 * bench_fig4_msa_scaling --json; both emit the same
 * `{"benchmarks": [{"name", "ns_per_op", ...}]}` shape) against a
 * committed baseline and fails when any benchmark regresses beyond
 * the tolerance.
 *
 * CI runners and developer machines run at different speeds, so raw
 * ns comparisons would be meaningless. Instead the per-benchmark
 * ratio current/baseline is divided by the *median* ratio across
 * all shared benchmarks — the median absorbs uniform machine-speed
 * differences, leaving only relative regressions: a benchmark that
 * slowed down relative to its peers sticks out even when the whole
 * suite runs 2x slower on a cold CI runner.
 *
 * Usage:
 *   bench_check --baseline <json> --current <json>
 *               [--tolerance <ratio>]      (default 1.30)
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "util/json.hh"
#include "util/stats.hh"

using namespace afsb;

namespace {

/** name -> ns_per_op from a bench JSON document. */
std::map<std::string, double>
loadBench(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "bench_check: cannot open %s\n",
                     path.c_str());
        std::exit(2);
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const JsonValue doc = parseJson(ss.str());
    std::map<std::string, double> out;
    const JsonValue &benches = doc.at("benchmarks");
    for (size_t i = 0; i < benches.size(); ++i) {
        const JsonValue &b = benches.at(i);
        out[b.at("name").asString()] =
            b.at("ns_per_op").asNumber();
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string baselinePath, currentPath;
    double tolerance = 1.30;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc)
            baselinePath = argv[++i];
        else if (std::strcmp(argv[i], "--current") == 0 &&
                 i + 1 < argc)
            currentPath = argv[++i];
        else if (std::strcmp(argv[i], "--tolerance") == 0 &&
                 i + 1 < argc)
            tolerance = std::atof(argv[++i]);
        else {
            std::fprintf(
                stderr,
                "usage: bench_check --baseline <json> --current "
                "<json> [--tolerance <ratio>]\n");
            return 2;
        }
    }
    if (baselinePath.empty() || currentPath.empty() ||
        tolerance <= 0.0) {
        std::fprintf(stderr,
                     "bench_check: --baseline and --current are "
                     "required\n");
        return 2;
    }

    const auto baseline = loadBench(baselinePath);
    const auto current = loadBench(currentPath);

    struct Row
    {
        std::string name;
        double ratio;  ///< current / baseline, raw
    };
    std::vector<Row> rows;
    std::vector<double> ratios;
    for (const auto &[name, ns] : current) {
        const auto it = baseline.find(name);
        if (it == baseline.end() || it->second <= 0.0)
            continue;
        rows.push_back({name, ns / it->second});
        ratios.push_back(rows.back().ratio);
    }
    if (rows.empty()) {
        std::fprintf(stderr,
                     "bench_check: no shared benchmarks between %s "
                     "and %s\n",
                     baselinePath.c_str(), currentPath.c_str());
        return 2;
    }

    // Machine-speed normalization: divide out the median ratio.
    const double speed = medianOf(ratios);
    std::printf("bench_check: %zu shared benchmarks, machine-speed "
                "factor %.3f, tolerance %.2fx\n",
                rows.size(), speed, tolerance);

    int failures = 0;
    for (const auto &row : rows) {
        const double normalized =
            speed > 0.0 ? row.ratio / speed : row.ratio;
        const bool bad = normalized > tolerance;
        std::printf("  %-48s raw %.3fx  normalized %.3fx%s\n",
                    row.name.c_str(), row.ratio, normalized,
                    bad ? "  REGRESSION" : "");
        failures += bad ? 1 : 0;
    }
    if (failures) {
        std::fprintf(stderr,
                     "bench_check: %d benchmark(s) regressed more "
                     "than %.2fx vs baseline\n",
                     failures, tolerance);
        return 1;
    }
    std::printf("bench_check: OK\n");
    return 0;
}
